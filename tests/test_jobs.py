"""Tests for the parallel experiment engine (:mod:`repro.harness.jobs`):
spec hashing, the result cache, determinism of parallel vs serial
execution, retry handling, and manifest-based resume."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.common.params import MachineParams, OMUParams
from repro.harness.jobs import (
    Engine,
    JobSpec,
    ResultCache,
    SweepManifest,
    execute_spec,
    resolve_factory,
    run_jobs,
)
from repro.harness.runner import RunResult
from repro.workloads.kernels import KERNELS

SPEC = dict(config="pthread", workload="canneal", cores=16, scale=0.25, seed=7)


def spec(**over):
    return JobSpec(**{**SPEC, **over})


# A module-level factory that always fails (picklable, so it exercises
# the pool's failure path too).
def _always_fail(n, scale=1.0):
    raise RuntimeError("synthetic workload failure")


class TestJobSpec:
    def test_key_is_deterministic(self):
        assert spec().key() == spec().key()

    def test_key_covers_every_grid_axis(self):
        base = spec().key()
        assert spec(config="msa-omu-2").key() != base
        assert spec(workload="swaptions").key() != base
        assert spec(cores=64).key() != base
        assert spec(scale=0.5).key() != base
        assert spec(seed=8).key() != base
        assert spec(max_events=1000).key() != base

    def test_key_covers_machine_param_overrides(self):
        base = spec(config="msa-omu-2")
        tweaked = spec(
            config="msa-omu-2", params={"omu": OMUParams(n_counters=2)}
        )
        assert base.key() != tweaked.key()

    def test_key_covers_machine_defaults(self):
        """The key hashes the *resolved* MachineParams, so editing a
        default in code invalidates cached results."""
        params, _ = spec().resolved_params()
        assert isinstance(params, MachineParams)
        assert params.stable_hash() != params.with_(seed=99).stable_hash()

    def test_resolve_factory_kernels_and_microbenches(self):
        assert resolve_factory("canneal") is KERNELS["canneal"]
        assert resolve_factory("LockAcquire") is not None
        with pytest.raises(ConfigError):
            resolve_factory("not-a-workload")

    def test_describe(self):
        assert spec().describe() == "canneal/pthread@16"


class TestExecuteSpec:
    def test_deterministic_rerun(self):
        a = execute_spec(spec())
        b = execute_spec(spec())
        assert a == b
        assert a.to_json() == b.to_json()

    def test_param_overrides_take_effect(self):
        plain = execute_spec(spec(config="msa-omu-2"))
        tweaked = execute_spec(
            spec(config="msa-omu-2", params={"omu": OMUParams(enabled=False)})
        )
        assert plain.cycles > 0 and tweaked.cycles > 0
        # Not asserting an ordering, only that the knob was actually
        # threaded through to the machine (different counters).
        assert (
            plain.msa_counters != tweaked.msa_counters
            or plain.cycles != tweaked.cycles
        )

    def test_microbench_spec(self):
        result = execute_spec(
            JobSpec(config="pthread", workload="LockAcquire", cores=4)
        )
        assert result.workload_metrics["lock_acquire_cycles"] > 0


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = spec().key()
        assert cache.get(key) is None
        result = execute_spec(spec())
        cache.put(key, spec(), result)
        hit = cache.get(key)
        assert hit == result
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = spec().key()
        cache.put(key, spec(), execute_spec(spec()))
        cache.path(key).write_text("{torn write")
        assert cache.get(key) is None


class TestEngineSerial:
    def test_runs_and_counts(self, tmp_path):
        engine = Engine(workers=1, cache_dir=tmp_path)
        jobs = engine.run([spec(), spec(workload="swaptions")])
        assert all(j.ok for j in jobs)
        assert engine.stats.executed == 2
        assert engine.stats.cache_hits == 0

    def test_second_run_fully_cached(self, tmp_path):
        Engine(workers=1, cache_dir=tmp_path).run([spec()])
        engine = Engine(workers=1, cache_dir=tmp_path)
        jobs = engine.run([spec()])
        assert engine.stats.cache_hits == 1 and engine.stats.executed == 0
        assert jobs[0].cached
        assert jobs[0].result == execute_spec(spec())

    def test_failure_reported_not_raised(self):
        engine = Engine(workers=1)
        bad = spec(workload="broken", factory=_always_fail)
        jobs = engine.run([bad, spec()])
        assert not jobs[0].ok
        assert "synthetic workload failure" in jobs[0].error
        assert jobs[0].attempts == 2  # one retry
        assert jobs[1].ok
        assert engine.stats.failed == 1 and engine.stats.retried == 1

    def test_retry_recovers_flaky_point(self, tmp_path):
        marker = tmp_path / "tried"

        def flaky(n, scale=1.0):
            if not marker.exists():
                marker.write_text("x")
                raise RuntimeError("first attempt dies")
            return KERNELS["canneal"](n, scale)

        engine = Engine(workers=1)
        jobs = engine.run([spec(workload="flaky", factory=flaky)])
        assert jobs[0].ok and jobs[0].attempts == 2
        assert engine.stats.retried == 1 and engine.stats.failed == 0


class TestEngineParallel:
    GRID = [
        dict(workload=w, config=c)
        for w in ("canneal", "swaptions")
        for c in ("pthread", "msa-omu-2")
    ]

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        serial = [execute_spec(spec(**g)) for g in self.GRID]
        engine = Engine(workers=4, cache_dir=tmp_path / "cache")
        jobs = engine.run([spec(**g) for g in self.GRID])
        assert engine.stats.executed == len(self.GRID)
        assert [j.result.to_json() for j in jobs] == [
            r.to_json() for r in serial
        ]

    def test_unpicklable_factory_falls_back_in_process(self):
        captured = []

        def local_factory(n, scale=1.0):  # closure: not picklable
            captured.append(n)
            return KERNELS["canneal"](n, scale)

        engine = Engine(workers=2)
        jobs = engine.run(
            [spec(workload="closure", factory=local_factory), spec()]
        )
        assert all(j.ok for j in jobs)
        assert captured == [16]  # ran in this process

    def test_parallel_failure_still_reported(self):
        engine = Engine(workers=2)
        jobs = engine.run(
            [spec(workload="broken", factory=_always_fail), spec()]
        )
        assert not jobs[0].ok and jobs[0].attempts == 2
        assert jobs[1].ok


class TestManifestResume:
    def test_manifest_records_every_completion(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        Engine(workers=1, cache_dir=tmp_path / "c", manifest=manifest).run(
            [spec(), spec(workload="broken", factory=_always_fail)]
        )
        # Append-only JSONL: one self-contained record per line.
        entries = [
            json.loads(line)
            for line in manifest.read_text().splitlines()
            if line.strip()
        ]
        by_key = {e["key"]: e for e in entries}
        statuses = sorted(e["status"] for e in by_key.values())
        assert statuses == ["done", "failed"]
        assert SweepManifest(manifest).counts() == {"done": 1, "failed": 1}

    def test_resume_after_kill_runs_only_missing_points(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        cache = tmp_path / "cache"
        grid = [spec(**g) for g in TestEngineParallel.GRID]
        # A sweep that dies after two points: only they reach the
        # manifest (it is rewritten after every completion).
        first = Engine(workers=1, cache_dir=cache, manifest=manifest)
        first.run(grid[:2])
        assert first.stats.executed == 2

        resumed = Engine(workers=1, cache_dir=cache, manifest=manifest)
        jobs = resumed.run(grid)
        assert resumed.stats.resumed == 2
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.executed == 2
        assert all(j.ok for j in jobs)
        statuses = [
            e["status"] for e in SweepManifest(manifest).entries.values()
        ]
        assert statuses == ["done"] * 4

    def test_failed_points_are_rerun_on_resume(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        cache = tmp_path / "cache"
        marker = tmp_path / "now-works"

        def flaky_twice(n, scale=1.0):
            if not marker.exists():
                raise RuntimeError("still broken")
            return KERNELS["canneal"](n, scale)

        bad = spec(workload="flaky2", factory=flaky_twice)
        first = Engine(workers=1, cache_dir=cache, manifest=manifest)
        assert not first.run([bad])[0].ok

        marker.write_text("fixed")
        second = Engine(workers=1, cache_dir=cache, manifest=manifest)
        jobs = second.run([bad])
        assert jobs[0].ok
        assert SweepManifest(manifest).status(bad.key()) == "done"


class TestRunJobsWrapper:
    def test_one_shot(self, tmp_path):
        jobs = run_jobs([spec()], workers=1, cache_dir=tmp_path)
        assert jobs[0].ok and isinstance(jobs[0].result, RunResult)


class TestProgressReporting:
    def test_reporter_lines(self):
        from repro.harness.report import ProgressReporter

        fake_now = [0.0]
        reporter = ProgressReporter(
            3, stream=None, label="grid", clock=lambda: fake_now[0]
        )
        fake_now[0] = 2.0
        line = reporter.update("a/pthread@16")
        assert "[grid 1/3]" in line and "ran" in line and "eta 4s" in line
        line = reporter.update("b/pthread@16", cached=True)
        assert "cached" in line
        fake_now[0] = 4.0
        line = reporter.update("c/pthread@16", failed=True)
        assert "FAIL" in line and "done in 4s" in line

    def test_engine_accepts_reporter(self, capsys):
        import sys

        from repro.harness.report import ProgressReporter

        engine = Engine(
            workers=1, progress=ProgressReporter(1, stream=sys.stdout)
        )
        engine.run([spec()])
        assert "canneal/pthread@16" in capsys.readouterr().out
