"""Unit and property tests for the 2D-mesh NoC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.common.params import NocParams
from repro.noc.message import Message
from repro.noc.network import Network
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator


class TestTopology:
    def test_requires_square_tile_count(self):
        with pytest.raises(ConfigError):
            MeshTopology(10)

    def test_coords_row_major(self):
        mesh = MeshTopology(16)
        assert (mesh.coord(0).x, mesh.coord(0).y) == (0, 0)
        assert (mesh.coord(5).x, mesh.coord(5).y) == (1, 1)
        assert (mesh.coord(15).x, mesh.coord(15).y) == (3, 3)

    def test_coord_roundtrip(self):
        mesh = MeshTopology(64)
        for tile in range(64):
            assert mesh.tile_at(mesh.coord(tile)) == tile

    def test_hops_manhattan(self):
        mesh = MeshTopology(16)
        assert mesh.hops(0, 15) == 6
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3

    def test_route_is_xy(self):
        mesh = MeshTopology(16)
        # From (0,0) to (2,1): x first, then y.
        assert mesh.route(0, 6) == [0, 1, 2, 6]

    def test_route_endpoints_and_length(self):
        mesh = MeshTopology(64)
        for src, dst in [(0, 63), (17, 42), (5, 5), (63, 0)]:
            path = mesh.route(src, dst)
            assert path[0] == src and path[-1] == dst
            assert len(path) == mesh.hops(src, dst) + 1

    def test_neighbors_corner_edge_center(self):
        mesh = MeshTopology(16)
        assert sorted(mesh.neighbors(0)) == [1, 4]
        assert sorted(mesh.neighbors(1)) == [0, 2, 5]
        assert sorted(mesh.neighbors(5)) == [1, 4, 6, 9]

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_route_hops_symmetric_count(self, src, dst):
        mesh = MeshTopology(64)
        assert mesh.hops(src, dst) == mesh.hops(dst, src)


def _make_network(n_tiles=16, **noc_kwargs):
    sim = Simulator()
    network = Network(sim, n_tiles, NocParams(**noc_kwargs))
    return sim, network


class TestNetworkDelivery:
    def test_message_delivered_to_registered_handler(self):
        sim, net = _make_network()
        got = []
        net.register(5, "test", got.append)
        net.send(Message(src=0, dst=5, kind="test.ping", payload={"x": 1}))
        sim.run()
        assert len(got) == 1 and got[0].payload == {"x": 1}

    def test_unregistered_destination_raises(self):
        sim, net = _make_network()
        net.send(Message(src=0, dst=3, kind="test.ping"))
        with pytest.raises(Exception):
            sim.run()

    def test_local_delivery_pays_injection_latency(self):
        sim, net = _make_network()
        seen = []
        net.register(2, "t", lambda m: seen.append(sim.now))
        net.send(Message(src=2, dst=2, kind="t.x"))
        sim.run()
        assert seen == [net.params.injection_latency]

    def test_latency_proportional_to_hops(self):
        sim, net = _make_network()
        seen = {}
        net.register(1, "t", lambda m: seen.setdefault(1, sim.now))
        net.register(15, "t", lambda m: seen.setdefault(15, sim.now))
        net.send(Message(src=0, dst=1, kind="t.x"))
        net.send(Message(src=0, dst=15, kind="t.x"))
        sim.run()
        assert seen[15] > seen[1]

    def test_fifo_order_same_source_destination(self):
        """Messages from one source to one destination arrive in send
        order -- the property the MSA's silent/revoke protocols rely on."""
        sim, net = _make_network()
        got = []
        net.register(12, "t", lambda m: got.append(m.payload["seq"]))
        for seq in range(20):
            net.send(Message(src=3, dst=12, kind="t.x", payload={"seq": seq}))
        sim.run()
        assert got == list(range(20))

    def test_fifo_order_holds_with_staggered_injection(self):
        sim, net = _make_network()
        got = []
        net.register(15, "t", lambda m: got.append(m.payload["seq"]))

        def inject(seq):
            net.send(Message(src=0, dst=15, kind="t.x", payload={"seq": seq}))

        for seq in range(10):
            sim.schedule(seq * 2, lambda s=seq: inject(s))
        sim.run()
        assert got == list(range(10))

    def test_exactly_once_delivery_under_load(self):
        sim, net = _make_network(n_tiles=16)
        received = []
        for tile in range(16):
            net.register(tile, "t", lambda m: received.append(m.msg_id))
        sent = []
        for src in range(16):
            for dst in range(16):
                msg = Message(src=src, dst=dst, kind="t.x")
                sent.append(msg.msg_id)
                net.send(msg)
        sim.run()
        assert sorted(received) == sorted(sent)

    def test_contention_delays_hotspot_traffic(self):
        """Many senders to one destination must see queuing delay."""
        sim1, quiet = _make_network()
        done = {}
        quiet.register(0, "t", lambda m: done.setdefault("quiet", sim1.now))
        quiet.send(Message(src=15, dst=0, kind="t.x"))
        sim1.run()

        sim2, busy = _make_network()
        arrivals = []
        busy.register(0, "t", lambda m: arrivals.append(sim2.now))
        for src in range(1, 16):
            busy.send(Message(src=src, dst=0, kind="t.x"))
        busy.send(Message(src=15, dst=0, kind="t.y"))
        sim2.run()
        assert max(arrivals) > done["quiet"]
        assert busy.stats.counter("link_stall_cycles").value > 0


class TestNetworkStats:
    def test_counters_track_sends_and_deliveries(self):
        sim, net = _make_network()
        net.register(1, "coh", lambda m: None)
        net.register(1, "msa", lambda m: None)
        net.send(Message(src=0, dst=1, kind="coh.gets"))
        net.send(Message(src=0, dst=1, kind="msa.req"))
        sim.run()
        assert net.stats.counter("messages_sent").value == 2
        assert net.stats.counter("messages_delivered").value == 2
        assert net.stats.counter("sent.coh").value == 1
        assert net.stats.counter("sent.msa").value == 1

    def test_round_trip_estimate_monotonic_in_distance(self):
        _, net = _make_network(n_tiles=64)
        estimates = [net.round_trip_estimate(0, d) for d in (0, 1, 9, 63)]
        assert estimates == sorted(estimates)
        assert estimates[0] < estimates[-1]


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15), st.integers(0, 50)),
        min_size=1,
        max_size=40,
    )
)
def test_property_all_messages_delivered_exactly_once(pairs):
    sim = Simulator()
    net = Network(sim, 16)
    delivered = []
    for tile in range(16):
        net.register(tile, "t", lambda m: delivered.append(m.msg_id))
    ids = []
    for src, dst, when in pairs:
        def send(s=src, d=dst):
            msg = Message(src=s, dst=d, kind="t.x")
            ids.append(msg.msg_id)
            net.send(msg)
        sim.schedule(when, send)
    sim.run()
    assert sorted(delivered) == sorted(ids)
