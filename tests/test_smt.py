"""Tests for hardware multithreading (SMT) support: the paper's
HWQueue-bit-per-hardware-thread extension (section 3)."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.common.params import CoreParams, MachineParams
from repro.harness.configs import machine_params
from repro.machine import Machine


def smt_machine(config="msa-omu-2", n_cores=4, hw_threads=2, seed=2015):
    params, library = machine_params(config, n_cores=n_cores, seed=seed)
    params = params.with_(core=CoreParams(hw_threads=hw_threads))
    return Machine(params, library=library)


def run(machine, max_events=5_000_000):
    cycles = machine.run(max_events=max_events)
    machine.check_invariants()
    return cycles


class TestPlacement:
    def test_default_placement_fills_cores_then_slots(self):
        m = smt_machine(n_cores=4, hw_threads=2)

        def body(th):
            yield from th.compute(10)

        threads = [m.scheduler.spawn(body) for _ in range(8)]
        placements = [(t.core, t.slot) for t in threads]
        assert placements[:4] == [(0, 0), (1, 0), (2, 0), (3, 0)]
        assert placements[4:] == [(0, 1), (1, 1), (2, 1), (3, 1)]
        run(m)

    def test_slot_overflow_rejected(self):
        m = smt_machine(n_cores=4, hw_threads=2)

        def body(th):
            yield from th.compute(10)

        for _ in range(8):
            m.scheduler.spawn(body)
        with pytest.raises(SimulationError):
            m.scheduler.spawn(body)

    def test_invalid_hw_threads_rejected(self):
        with pytest.raises(ConfigError):
            MachineParams(n_cores=4, core=CoreParams(hw_threads=0)).validate()


class TestSmtSynchronization:
    def test_two_threads_one_core_contend_one_lock(self):
        """Both hardware threads of one core wait on the same lock: the
        HWQueue must keep them apart (one bit per hardware thread)."""
        m = smt_machine(n_cores=4, hw_threads=2)
        lock = m.allocator.sync_var()
        counter = m.allocator.line()

        def body(th):
            for _ in range(6):
                yield from th.lock(lock)
                value = yield from th.load(counter)
                yield from th.compute(7)
                yield from th.store(counter, value + 1)
                yield from th.unlock(lock)

        m.scheduler.spawn(body, core=0, slot=0)
        m.scheduler.spawn(body, core=0, slot=1)
        run(m)
        assert m.memory.peek(counter) == 12
        assert m.omu_totals() == 0

    def test_full_smt_machine_mutual_exclusion(self):
        m = smt_machine(n_cores=4, hw_threads=2)
        lock = m.allocator.sync_var()
        counter = m.allocator.line()
        in_cs = [0]
        max_cs = [0]

        def body(th):
            for _ in range(4):
                yield from th.lock(lock)
                in_cs[0] += 1
                max_cs[0] = max(max_cs[0], in_cs[0])
                value = yield from th.load(counter)
                yield from th.store(counter, value + 1)
                in_cs[0] -= 1
                yield from th.unlock(lock)
                yield from th.compute(30)

        for _ in range(8):
            m.scheduler.spawn(body)
        run(m)
        assert max_cs[0] == 1
        assert m.memory.peek(counter) == 32

    def test_barrier_across_smt_contexts(self):
        m = smt_machine(n_cores=4, hw_threads=2)
        barrier = m.allocator.sync_var()
        passed = []

        def make_body(i):
            def body(th):
                for episode in range(3):
                    yield from th.compute(13 * (i + 1))
                    yield from th.barrier(barrier, 8)
                    passed.append((episode, i))
            return body

        for i in range(8):
            m.scheduler.spawn(make_body(i))
        run(m)
        assert len(passed) == 24

    def test_same_core_threads_share_hwsync_bit(self):
        """The HWSync bit is per-line per-*core*: a silent acquire by
        the sibling hardware thread is legal (shared L1)."""
        m = smt_machine(n_cores=4, hw_threads=2)
        lock = m.allocator.sync_var()
        order = []

        def make_body(i):
            def body(th):
                for _ in range(4):
                    yield from th.lock(lock)
                    order.append((i, th.sim.now))
                    yield from th.unlock(lock)
                    yield from th.compute(120)
            return body

        m.scheduler.spawn(make_body(0), core=0, slot=0)
        m.scheduler.spawn(make_body(1), core=0, slot=1)
        run(m)
        assert len(order) == 8
        # All grants stayed on core 0; any silent hits came from the
        # shared bit, which the MSA tracked consistently.
        assert m.omu_totals() == 0

    def test_condvars_with_smt(self):
        m = smt_machine(n_cores=4, hw_threads=2)
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        woke = []

        def waiter(th):
            yield from th.lock(lock)
            while True:
                value = yield from th.load(flag)
                if value:
                    break
                yield from th.cond_wait(cond, lock)
            woke.append(th.tid)
            yield from th.unlock(lock)

        def caster(th):
            yield from th.compute(2500)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from th.cond_broadcast(cond)
            yield from th.unlock(lock)

        for _ in range(6):
            m.scheduler.spawn(waiter)
        m.scheduler.spawn(caster)
        run(m)
        assert sorted(woke) == [0, 1, 2, 3, 4, 5]

    def test_suspension_targets_the_right_slot(self):
        m = smt_machine(n_cores=4, hw_threads=2)
        lock = m.allocator.sync_var()
        got = []

        def holder(th):
            yield from th.lock(lock)
            yield from th.compute(3000)
            yield from th.unlock(lock)

        def waiter(th):
            yield from th.compute(100)
            yield from th.lock(lock)
            got.append((th.core, th.thread.slot, th.sim.now))
            yield from th.unlock(lock)

        m.scheduler.spawn(holder, core=0, slot=0)
        t_waiter = m.scheduler.spawn(waiter, core=0, slot=1)
        m.sim.schedule(800, lambda: m.scheduler.suspend(t_waiter))
        m.sim.schedule(5000, lambda: m.scheduler.resume(t_waiter))
        run(m)
        assert got and got[0][2] >= 5000
        assert m.msa_counters().get("lock_suspends", 0) == 1


class TestKernelsUnderSmt:
    def test_kernel_suite_sample_runs_with_smt(self):
        from repro.harness.runner import run_workload
        from repro.workloads.kernels import KERNELS

        for app in ("streamcluster", "radiosity", "volrend"):
            m = smt_machine(n_cores=16, hw_threads=2)
            result = run_workload(m, KERNELS[app](32, 0.25))
            assert result.cycles > 0
