"""Tests for :mod:`repro.traffic` -- open-loop traffic with SLOs.

Covers the arrival processes (seed determinism, long-run rate accuracy,
well-formed gap sequences), the open-loop workload itself (request
conservation, byte-identical determinism, shedding and deadline
behaviour under overload), the golden latency-fingerprint pin, the
harness integration (registry resolution, CSV extras, sweep), the SLO
sections of the HTML reports, and the request spans surfaced through
repro.obs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import DeterministicRng
from repro.harness.configs import build_machine
from repro.harness.runner import run_workload
from repro.traffic import (
    ARRIVALS,
    TRAFFIC,
    TrafficConfig,
    build_schedule,
    load_sweep,
    make_arrivals,
    make_traffic,
)

SEED = 2015


def run_traffic(config: str, scale: float = 1.0, cfg: TrafficConfig = None,
                seed: int = SEED, cores: int = 16):
    machine = build_machine(config, n_cores=cores, seed=seed)
    return run_workload(machine, make_traffic(cores, scale=scale, cfg=cfg))


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

arrival_names = st.sampled_from(sorted(ARRIVALS))


class TestArrivals:
    @given(name=arrival_names, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_seed_deterministic(self, name, seed):
        seqs = []
        for _ in range(2):
            rng = DeterministicRng(seed, stream=f"arr.{name}")
            proc = make_arrivals(name, rng, rate_rpk=4.0)
            seqs.append(proc.sequence(horizon=20_000))
        assert seqs[0] == seqs[1]

    @given(name=arrival_names, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_gaps_and_ordering(self, name, seed):
        rng = DeterministicRng(seed, stream="arr")
        proc = make_arrivals(name, rng, rate_rpk=5.0)
        seq = proc.sequence(horizon=10_000)
        assert all(1 <= t <= 10_000 for t in seq)
        # Gaps are integer cycles >= 1, so arrivals strictly increase.
        assert all(b > a for a, b in zip(seq, seq[1:]))

    @given(name=arrival_names, seed=st.integers(0, 1000),
           rate=st.sampled_from([1.0, 2.0, 8.0]))
    @settings(max_examples=30, deadline=None)
    def test_long_run_rate_accuracy(self, name, seed, rate):
        """Empirical rate within 20% of nominal over a long horizon."""
        rng = DeterministicRng(seed, stream="rate")
        proc = make_arrivals(name, rng, rate_rpk=rate)
        horizon = 500_000
        n = len(proc.sequence(horizon=horizon))
        empirical = n * 1000.0 / horizon
        assert empirical == pytest.approx(rate, rel=0.20)

    def test_unknown_arrival_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            make_arrivals("lognormal", DeterministicRng(1), rate_rpk=1.0)

    def test_nonpositive_rate_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            make_arrivals("poisson", DeterministicRng(1), rate_rpk=0.0)


class TestSchedule:
    def test_schedule_deterministic_and_well_formed(self):
        cfg = TrafficConfig()
        reqs1 = build_schedule(cfg, DeterministicRng(SEED, stream="t"), 1.0)
        reqs2 = build_schedule(cfg, DeterministicRng(SEED, stream="t"), 1.0)
        assert reqs1 == reqs2
        assert len(reqs1) > 0
        assert [r.rid for r in reqs1] == list(range(len(reqs1)))
        for r in reqs1:
            assert r.shape in ("read", "write", "fanout")
            assert all(0 <= s < cfg.n_stripes for s in r.stripes)

    def test_scale_multiplies_offered_load(self):
        cfg = TrafficConfig()
        low = build_schedule(cfg, DeterministicRng(SEED, stream="t"), 0.5)
        high = build_schedule(cfg, DeterministicRng(SEED, stream="t"), 2.0)
        assert len(high) > 2 * len(low)


# ---------------------------------------------------------------------------
# Workload behaviour
# ---------------------------------------------------------------------------


class TestTrafficWorkload:
    @pytest.mark.parametrize("config", ["pthread", "msa-omu-2"])
    def test_conservation_and_smoke(self, config):
        result = run_traffic(config, scale=0.5)
        wm = result.workload_metrics
        offered = wm["traffic.offered"]
        assert offered > 0
        assert wm["traffic.done"] + wm["traffic.shed"] + wm["traffic.timeout"] == offered
        assert wm["traffic.p50"] <= wm["traffic.p99"] <= wm["traffic.p999"]
        assert wm["traffic.goodput_rpk"] > 0

    @pytest.mark.parametrize("config", ["pthread", "msa-omu-2"])
    def test_run_deterministic(self, config):
        a = run_traffic(config, scale=1.0)
        b = run_traffic(config, scale=1.0)
        assert a.cycles == b.cycles
        assert (a.workload_metrics["traffic.latency_fp"]
                == b.workload_metrics["traffic.latency_fp"])

    def test_overload_sheds(self):
        """Even the ideal backend sheds at 4x the calibrated load."""
        result = run_traffic("ideal", scale=4.0)
        wm = result.workload_metrics
        assert wm["traffic.shed"] > 0
        assert wm["traffic.done"] > 0  # still makes forward progress

    def test_tight_deadline_times_out(self):
        cfg = TrafficConfig(deadline=50, shed_lag=100_000)
        result = run_traffic("pthread", scale=1.0, cfg=cfg)
        assert result.workload_metrics["traffic.timeout"] > 0

    def test_all_scenarios_registered_and_runnable(self):
        assert set(TRAFFIC) == {
            "traffic.poisson", "traffic.bursty",
            "traffic.diurnal", "traffic.pareto",
        }
        for name, factory in TRAFFIC.items():
            wl = factory(4)
            assert wl.name == name
            assert "traffic" in wl.tags

    def test_rejects_single_core(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            make_traffic(1)


class TestGoldenTraffic:
    """Exact pins: same seed + config => byte-identical latency results.

    Regenerate after an *intentional* timing-model change with::

        PYTHONPATH=src python -m pytest tests/test_traffic.py \
            -k regeneration -s
    """

    GOLDEN = {
        "pthread": {"cycles": 67196, "latency_fp": 160696296403135.0},
        "msa-omu-2": {"cycles": 64019, "latency_fp": 225033319110578.0},
    }

    @pytest.mark.parametrize("config", sorted(GOLDEN))
    def test_golden_pin(self, config):
        result = run_traffic(config, scale=1.0)
        assert result.cycles == self.GOLDEN[config]["cycles"]
        assert (result.workload_metrics["traffic.latency_fp"]
                == self.GOLDEN[config]["latency_fp"])

    @pytest.mark.skip(reason="run with -k regeneration -s to print a new table")
    def test_regeneration(self):
        for config in sorted(self.GOLDEN):
            r = run_traffic(config, scale=1.0)
            print(f'"{config}": {{"cycles": {r.cycles}, '
                  f'"latency_fp": {r.workload_metrics["traffic.latency_fp"]}}},')


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------


class TestHarnessIntegration:
    def test_resolve_factory_finds_traffic(self):
        from repro.harness.jobs import resolve_factory

        factory = resolve_factory("traffic.poisson")
        assert factory(4).name == "traffic.poisson"

    def test_resolve_factory_error_lists_traffic(self):
        from repro.common.errors import ConfigError
        from repro.harness.jobs import resolve_factory

        with pytest.raises(ConfigError, match="traffic.poisson"):
            resolve_factory("nope.nope")

    def test_load_sweep_and_csv_extras(self, tmp_path):
        from repro.harness.sweep import from_csv, to_csv

        points = load_sweep(
            configs=("pthread", "msa-omu-2"),
            loads=(0.5, 1.0),
            cores=4,
            seed=SEED,
            cache_dir=str(tmp_path / "cache"),
        )
        assert len(points) == 4
        text = to_csv(points)
        header = text.splitlines()[0].split(",")
        for col in ("p50", "p99", "p999", "goodput_rpk", "offered_rpk",
                    "shed", "timeout"):
            assert col in header
        rows = from_csv(text)
        assert all(float(r["p99"]) >= float(r["p50"]) >= 0 for r in rows)

    def test_load_sweep_rejects_unknown_scenario(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            load_sweep(scenario="traffic.weibull")

    def test_add_request_metrics_noop_for_non_traffic(self):
        from repro.harness.sweep import add_request_metrics, sweep
        from repro.workloads.kernels import KERNELS

        points = sweep(
            configs=("pthread",),
            workload_factories={"streamcluster": KERNELS["streamcluster"]},
            cores=(4,), scale=0.1)
        add_request_metrics(points)
        assert all("p99" not in p.extras for p in points)


class TestQuantilesHelper:
    def test_quantiles_match_percentile(self):
        from repro.common.stats import Histogram

        h = Histogram("lat")
        for v in range(1, 1001):
            h.add(v)
        q50, q99, q999 = h.quantiles([0.5, 0.99, 0.999])
        assert q50 == h.percentile(50)
        assert q99 == h.percentile(99)
        # Nearest rank: ceil(0.999 * 1000) - 1 = index 998 -> value 999.
        assert q999 == 999

    def test_quantiles_empty_and_bounds(self):
        from repro.common.stats import Histogram

        h = Histogram("lat")
        assert h.quantiles([0.5, 0.99]) == [0.0, 0.0]
        h.add(3.0)
        with pytest.raises(ValueError):
            h.quantiles([1.5])
        with pytest.raises(ValueError):
            h.quantiles([-0.1])
        assert h.quantiles([0.0, 1.0]) == [3.0, 3.0]


# ---------------------------------------------------------------------------
# Reports and CLI
# ---------------------------------------------------------------------------


class TestReports:
    def test_run_report_has_slo_section(self):
        from repro.obs.html import render_run_report

        result = run_traffic("msa-omu-2", scale=1.0, cores=4)
        html = render_run_report(result)
        assert "Request latency SLOs" in html
        assert "p99" in html

    def test_run_report_no_slo_section_for_kernels(self):
        from repro.obs.html import render_run_report
        from repro.workloads.kernels import KERNELS

        machine = build_machine("pthread", n_cores=4, seed=SEED)
        result = run_workload(machine, KERNELS["streamcluster"](4, 0.1))
        assert "Request latency SLOs" not in render_run_report(result)

    def test_sweep_report_has_latency_curve(self, tmp_path):
        from repro.obs.html import render_sweep_report

        points = load_sweep(configs=("pthread", "ideal"), loads=(0.5, 1.0),
                            cores=4, seed=SEED,
                            cache_dir=str(tmp_path / "cache"))
        html = render_sweep_report(points)
        assert "Tail latency under offered load" in html
        assert "<polyline" in html


class TestCli:
    def test_describe_lists_everything(self, capsys):
        from repro.__main__ import main

        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "traffic.poisson" in out
        assert "poisson" in out and "pareto" in out
        assert "msa-omu-2" in out
        assert "streamcluster" in out

    def test_traffic_single_run(self, capsys):
        from repro.__main__ import main

        assert main(["traffic", "--scenario", "poisson",
                     "--config", "msa-omu-2", "--cores", "4",
                     "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "p99" in out

    def test_traffic_unknown_scenario_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["traffic", "--scenario", "weibull"]) == 2

    def test_traffic_sweep_csv_html(self, tmp_path, capsys):
        from repro.__main__ import main

        csv_path = tmp_path / "traffic.csv"
        html_path = tmp_path / "traffic.html"
        rc = main(["traffic", "--sweep",
                   "--configs", "pthread", "ideal",
                   "--loads", "0.5", "1.0",
                   "--cores", "4",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--csv", str(csv_path),
                   "--html", str(html_path)])
        assert rc == 0
        assert "p99" in csv_path.read_text().splitlines()[0]
        assert "Tail latency under offered load" in html_path.read_text()


# ---------------------------------------------------------------------------
# Observability: request spans
# ---------------------------------------------------------------------------


class TestRequestSpans:
    def test_observe_collects_request_spans(self):
        import repro

        result, obs = repro.observe(
            "msa-omu-2", make_traffic(4, scale=0.5), cores=4, seed=SEED)
        attribution = obs.attribution()
        assert "request.ok" in attribution
        wm = result.workload_metrics
        assert attribution["request.ok"]["count"] == wm["traffic.done"]

    def test_observe_collects_shed_spans_under_overload(self):
        import repro

        result, obs = repro.observe(
            "pthread", make_traffic(4, scale=4.0), cores=4, seed=SEED)
        attribution = obs.attribution()
        assert result.workload_metrics["traffic.shed"] > 0
        assert attribution["request.shed"]["count"] == result.workload_metrics["traffic.shed"]
