"""Tests for the Figure-5 microbenchmark workloads."""

import pytest

from repro.harness.configs import build_machine
from repro.harness.runner import run_workload
from repro.workloads import microbench


def run_micro(factory, config="msa-omu-2", n=16, **kwargs):
    machine = build_machine(config, n_cores=n)
    workload = factory(n, **kwargs) if kwargs else factory(n)
    return run_workload(machine, workload, config=config)


class TestLockAcquireProbe:
    def test_reports_metric(self):
        result = run_micro(microbench.lock_acquire)
        assert result.workload_metrics["lock_acquire_cycles"] > 0

    def test_msa_silent_path_much_faster(self):
        msa = run_micro(microbench.lock_acquire, "msa-omu-2")
        sw = run_micro(microbench.lock_acquire, "pthread")
        assert (
            msa.workload_metrics["lock_acquire_cycles"]
            < sw.workload_metrics["lock_acquire_cycles"]
        )

    def test_sample_count_matches_iters(self):
        machine = build_machine("pthread", n_cores=16)
        wl = microbench.lock_acquire(16, iters=7)
        run_workload(machine, wl)  # validate_fn checks sample count


class TestLockHandoffProbe:
    def test_handoff_increases_with_contention_cost(self):
        spin = run_micro(microbench.lock_handoff, "spinlock")
        msa = run_micro(microbench.lock_handoff, "msa-omu-2")
        assert (
            msa.workload_metrics["lock_handoff_cycles"]
            < spin.workload_metrics["lock_handoff_cycles"]
        )

    def test_all_acquires_counted(self):
        machine = build_machine("mcs-tour", n_cores=16)
        wl = microbench.lock_handoff(16, iters=4)
        result = run_workload(machine, wl)
        assert result.workload_metrics["lock_handoff_cycles"] > 0


class TestBarrierHandoffProbe:
    @pytest.mark.parametrize("config", ["pthread", "mcs-tour", "msa-omu-2"])
    def test_probe_runs_everywhere(self, config):
        result = run_micro(microbench.barrier_handoff, config)
        assert result.workload_metrics["barrier_handoff_cycles"] > 0

    def test_msa_beats_tournament(self):
        msa = run_micro(microbench.barrier_handoff, "msa-omu-2")
        tour = run_micro(microbench.barrier_handoff, "mcs-tour")
        assert (
            msa.workload_metrics["barrier_handoff_cycles"] * 4
            < tour.workload_metrics["barrier_handoff_cycles"]
        )


class TestCondProbes:
    @pytest.mark.parametrize("config", ["pthread", "msa-omu-2"])
    def test_signal_probe(self, config):
        machine = build_machine(config, n_cores=16)
        result = run_workload(machine, microbench.cond_signal_latency())
        assert result.workload_metrics["cond_signal_cycles"] > 0

    @pytest.mark.parametrize("config", ["pthread", "msa-omu-2"])
    def test_broadcast_probe(self, config):
        machine = build_machine(config, n_cores=16)
        result = run_workload(machine, microbench.cond_broadcast_latency(8))
        assert result.workload_metrics["cond_broadcast_cycles"] > 0

    def test_msa_signal_faster(self):
        def probe(config):
            machine = build_machine(config, n_cores=16)
            result = run_workload(machine, microbench.cond_signal_latency())
            return result.workload_metrics["cond_signal_cycles"]

        assert probe("msa-omu-2") < probe("pthread")


class TestRegistry:
    def test_all_probes_registered(self):
        assert set(microbench.MICROBENCHES) == set(microbench.METRIC_KEYS)
        assert len(microbench.MICROBENCHES) == 5
