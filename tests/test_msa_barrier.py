"""Integration tests: MSA barrier protocol (paper section 4.2)."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.types import SyncOp, SyncResult
from repro.harness.configs import build_machine
from tests.conftest import run_threads


class TestBarrierBasics:
    def test_all_threads_released_once(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        released = []

        def make_body(i):
            def body(th):
                yield from th.compute(i * 17)
                yield from th.barrier(addr, 8)
                released.append((i, th.sim.now))
            return body

        run_threads(m, [make_body(i) for i in range(8)])
        assert len(released) == 8

    def test_nobody_released_before_last_arrival(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        last_arrival = [0]
        releases = []

        def make_body(i):
            def body(th):
                delay = 200 * i
                yield from th.compute(delay)
                last_arrival[0] = max(last_arrival[0], th.sim.now)
                yield from th.barrier(addr, 4)
                releases.append(th.sim.now)
            return body

        run_threads(m, [make_body(i) for i in range(4)])
        assert min(releases) >= last_arrival[0]

    def test_barrier_reusable_across_episodes(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        log = []

        def make_body(i):
            def body(th):
                for episode in range(5):
                    yield from th.compute((i * 7 + episode * 13) % 50)
                    yield from th.barrier(addr, 6)
                    log.append((episode, i))
            return body

        run_threads(m, [make_body(i) for i in range(6)])
        # Within each episode all threads pass before any thread of the
        # next episode (barrier semantics).
        for episode in range(5):
            entries = [k for k, (e, _) in enumerate(log) if e == episode]
            assert len(entries) == 6

    def test_barrier_entry_freed_after_release(self, machine16):
        m = machine16
        addr = m.allocator.sync_var(home=5)

        def body(th):
            yield from th.barrier(addr, 4)

        run_threads(m, [body] * 4)
        assert m.msa_slice(5).entry_for(addr) is None

    def test_mismatched_goal_raises(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()

        def body_a(th):
            yield from th.sync(SyncOp.BARRIER, addr, aux=3)

        def body_b(th):
            yield from th.compute(50)
            yield from th.sync(SyncOp.BARRIER, addr, aux=4)

        m.scheduler.spawn(body_a)
        m.scheduler.spawn(body_b)
        with pytest.raises(ProtocolError):
            m.run(max_events=1_000_000)


class TestBarrierOverflow:
    def test_overflow_falls_back_to_software_consistently(self):
        """When some arrivals FAIL (capacity), the whole episode must
        complete in software -- no HW/SW split (deadlock risk the paper
        describes in 4.2)."""
        m = build_machine("msa-omu-1", n_cores=16)
        # Occupy the single entry at home tile with a lock first.
        barrier_addr = m.allocator.sync_var(home=3)
        blocker = m.allocator.sync_var(home=3)
        results = []

        def hog(th):
            yield from th.sync(SyncOp.LOCK, blocker)
            yield from th.compute(4000)
            yield from th.sync(SyncOp.UNLOCK, blocker)
            yield from th.barrier(barrier_addr, 8)

        def make_body(i):
            def body(th):
                # Arrive well after the hog owns the slice's only entry
                # and well before it releases (cycle ~4000).
                yield from th.compute(500 + 10 * i)
                r = yield from th.sync(SyncOp.BARRIER, barrier_addr, aux=8)
                results.append(r)
                if r is not SyncResult.SUCCESS:
                    yield from m.sync_library.fallback.barrier(th, barrier_addr, 8)
                    yield from th.sync(SyncOp.FINISH, barrier_addr)
            return body

        bodies = [hog] + [make_body(i) for i in range(7)]
        run_threads(m, bodies)
        assert all(r is SyncResult.FAIL for r in results)
        assert m.omu_totals() == 0

    def test_mixed_capacity_episodes_still_correct(self):
        """Alternating barrier/lock pressure on a 1-entry slice: every
        episode completes, whichever implementation serves it."""
        m = build_machine("msa-omu-1", n_cores=16)
        barrier_addr = m.allocator.sync_var(home=0)
        lock_addr = m.allocator.sync_var(home=0)
        shared = m.allocator.line()

        def make_body(i):
            def body(th):
                for k in range(4):
                    yield from th.lock(lock_addr)
                    v = yield from th.load(shared)
                    yield from th.store(shared, v + 1)
                    yield from th.unlock(lock_addr)
                    yield from th.barrier(barrier_addr, 8)
            return body

        run_threads(m, [make_body(i) for i in range(8)])
        assert m.memory.peek(shared) == 32
        assert m.omu_totals() == 0

    def test_barrieronly_config_rejects_locks(self):
        m = build_machine("msa-barrieronly-2", n_cores=16)
        lock_addr = m.allocator.sync_var()
        barrier_addr = m.allocator.sync_var()
        results = {}

        def body(th):
            r = yield from th.sync(SyncOp.LOCK, lock_addr)
            results.setdefault("lock", r)
            if r is SyncResult.FAIL:
                yield from th.sync(SyncOp.UNLOCK, lock_addr)
            r = yield from th.sync(SyncOp.BARRIER, barrier_addr, aux=2)
            results.setdefault("barrier", r)

        run_threads(m, [body] * 2)
        assert results["lock"] is SyncResult.FAIL
        assert results["barrier"] is SyncResult.SUCCESS

    def test_lockonly_config_rejects_barriers(self):
        m = build_machine("msa-lockonly-2", n_cores=16)
        barrier_addr = m.allocator.sync_var()
        results = []

        def body(th):
            r = yield from th.sync(SyncOp.BARRIER, barrier_addr, aux=2)
            results.append(r)
            if r is SyncResult.FAIL:
                yield from m.sync_library.fallback.barrier(th, barrier_addr, 2)
                yield from th.sync(SyncOp.FINISH, barrier_addr)

        run_threads(m, [body] * 2)
        assert all(r is SyncResult.FAIL for r in results)


class TestSoftwareBarriers:
    @pytest.mark.parametrize("config", ["pthread", "spinlock", "mcs-tour"])
    def test_software_barrier_correctness(self, config):
        m = build_machine(config, n_cores=16)
        addr = m.allocator.sync_var()
        phase_counts = []
        arrived = [0]

        def make_body(i):
            def body(th):
                for phase in range(4):
                    yield from th.compute((i * 31 + phase * 11) % 60)
                    arrived[0] += 1
                    yield from th.barrier(addr, 8)
                    phase_counts.append(arrived[0])
                    yield from th.barrier(addr, 8)
            return body

        run_threads(m, [make_body(i) for i in range(8)])
        # At each release, all 8 arrivals of that phase had happened.
        assert all(count % 8 == 0 for count in phase_counts[::8])

    def test_tournament_matches_central_barrier_semantics(self):
        results = {}
        for config in ("pthread", "mcs-tour"):
            m = build_machine(config, n_cores=16)
            addr = m.allocator.sync_var()
            order = []

            def make_body(i):
                def body(th):
                    for phase in range(3):
                        yield from th.compute(i * 23)
                        yield from th.barrier(addr, 8)
                        order.append((phase, i))
                return body

            run_threads(m, [make_body(i) for i in range(8)])
            results[config] = [e for e, _ in order]
        assert results["pthread"] == results["mcs-tour"]
