"""Tests for the thread runtime: ThreadCtx primitives, spin helper,
and the interaction between memory ops and suspension checkpoints."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import SyncOp, SyncResult
from repro.harness.configs import build_machine
from tests.conftest import run_threads


class TestPrimitives:
    def test_compute_advances_clock(self):
        m = build_machine("pthread", n_cores=4)
        marks = []

        def body(th):
            t0 = th.sim.now
            yield from th.compute(123)
            marks.append(th.sim.now - t0)

        run_threads(m, [body])
        assert marks == [123]

    def test_compute_zero_is_free(self):
        m = build_machine("pthread", n_cores=4)
        marks = []

        def body(th):
            t0 = th.sim.now
            yield from th.compute(0)
            marks.append(th.sim.now - t0)

        run_threads(m, [body])
        assert marks == [0]

    def test_rmw_helpers(self):
        m = build_machine("pthread", n_cores=4)
        got = []

        def body(th):
            addr = 1 << 22
            got.append((yield from th.fetch_add(addr, 5)))
            got.append((yield from th.swap(addr, 100)))
            got.append((yield from th.compare_and_swap(addr, 100, 7)))
            got.append((yield from th.compare_and_swap(addr, 999, 0)))
            got.append((yield from th.load(addr)))
            got.append((yield from th.test_and_set(addr + 64)))

        run_threads(m, [body])
        assert got == [0, 5, 100, 7, 7, 0]

    def test_spin_until_returns_matching_value(self):
        m = build_machine("pthread", n_cores=4)
        results = []

        def setter(th):
            yield from th.compute(900)
            yield from th.store(1 << 22, 42)

        def spinner(th):
            value = yield from th.spin_until(1 << 22, lambda v: v == 42)
            results.append((value, th.sim.now))

        run_threads(m, [setter, spinner])
        assert results[0][0] == 42
        assert results[0][1] >= 900

    def test_spin_backoff_bounds_poll_count(self):
        m = build_machine("pthread", n_cores=4)

        def setter(th):
            yield from th.compute(5000)
            yield from th.store(1 << 22, 1)

        def spinner(th):
            yield from th.spin_until(1 << 22, lambda v: v == 1, max_backoff=64)

        m.scheduler.spawn(setter, core=0)
        m.scheduler.spawn(spinner, core=1)
        m.run()
        ctx = m.scheduler.contexts[1]
        # 5000 cycles at >= 64-cycle cap: well under 120 polls.
        assert ctx.stats.counter("spin_polls").value < 120

    def test_core_property_requires_scheduling(self):
        m = build_machine("pthread", n_cores=4)
        from repro.runtime.thread import SimThread, ThreadCtx

        ctx = ThreadCtx(m, SimThread(99))
        with pytest.raises(SimulationError):
            _ = ctx.core


class TestSyncStatsAndResults:
    def test_sync_stats_recorded(self):
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()

        def body(th):
            yield from th.sync(SyncOp.LOCK, addr)
            yield from th.sync(SyncOp.UNLOCK, addr)

        m.scheduler.spawn(body)
        m.run()
        ctx = m.scheduler.contexts[0]
        assert ctx.stats.counter("sync.lock.success").value == 1

    def test_msa0_sync_returns_fail_fast(self):
        m = build_machine("msa0", n_cores=16)
        addr = m.allocator.sync_var()
        spans = []

        def body(th):
            t0 = th.sim.now
            result = yield from th.sync(SyncOp.LOCK, addr)
            spans.append((result, th.sim.now - t0))
            yield from th.sync(SyncOp.UNLOCK, addr)

        run_threads(m, [body])
        result, span = spans[0]
        assert result is SyncResult.FAIL
        # Locally failed: no NoC round trip.
        assert span <= 2 * m.params.core.sync_fence_latency

    def test_finish_completes_quickly(self):
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        spans = []

        def body(th):
            t0 = th.sim.now
            yield from th.sync(SyncOp.FINISH, addr)
            spans.append(th.sim.now - t0)

        run_threads(m, [body])
        # Fire-and-forget: completes at injection, no round trip.
        assert spans[0] <= m.params.core.sync_fence_latency + 2


class TestHighLevelApi:
    def test_ctx_lock_unlock_roundtrip(self):
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        order = []

        def body(th):
            yield from th.lock(addr)
            order.append(("locked", th.tid))
            yield from th.unlock(addr)
            order.append(("unlocked", th.tid))

        run_threads(m, [body])
        assert order == [("locked", 0), ("unlocked", 0)]

    def test_barrier_api(self):
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        done = []

        def body(th):
            yield from th.barrier(addr, 3)
            done.append(th.tid)

        run_threads(m, [body] * 3)
        assert sorted(done) == [0, 1, 2]
