"""The experiment service: HTTP endpoints, dedup, crash recovery.

An embedded :class:`repro.serve.Server` on ``port=0`` backs most tests
(one real point: canneal/pthread/4 cores at 0.1 scale, ~a second); the
crash test SIGKILLs a real ``python -m repro serve`` subprocess
mid-sweep and proves a restarted server converges on the same cache
directory with a clean fsck.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.common.schema import SERVE_SCHEMA
from repro.resilience.store import JobStore, default_store_path
from repro.serve import Server, sweep_id
from repro.serve.wire import expand_sweep_request

POINT = {
    "configs": ["pthread"],
    "workloads": ["canneal"],
    "cores": [4],
    "scale": 0.1,
    "seed": 7,
}


def _post(url, path, doc):
    req = urllib.request.Request(
        url + path,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return resp.status, json.loads(resp.read().decode())


def _get(url, path, timeout=120):
    with urllib.request.urlopen(url + path, timeout=timeout) as resp:
        return resp.status, resp.read()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    srv = Server(
        cache_dir=tmp_path_factory.mktemp("serve-cache"), port=0, lease_s=5.0
    ).start()
    yield srv
    srv.stop()


@pytest.fixture(scope="module")
def finished_sweep(server):
    """POINT submitted and run to completion; returns (sid, submit doc)."""
    status, doc = _post(
        server.url, "/v1/sweeps", dict(POINT, schema=SERVE_SCHEMA)
    )
    assert status == 202
    _get(server.url, f"/v1/sweeps/{doc['id']}?wait=120")
    return doc["id"], doc


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server.url, "/v1/healthz")
        doc = json.loads(body)
        assert status == 200
        assert doc["ok"] is True
        assert doc["schema"] == SERVE_SCHEMA
        assert doc["workers"] == 1

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server.url, "/v1/nope")
        assert exc.value.code == 404
        assert "error" in json.loads(exc.value.read())

    def test_submit_runs_point(self, server, finished_sweep):
        sid, doc = finished_sweep
        assert doc["created_jobs"] + doc["deduped_jobs"] == 1
        _, body = _get(server.url, f"/v1/sweeps/{sid}?wait=120")
        status_doc = json.loads(body)
        assert status_doc["done"] and status_doc["ok"]
        assert status_doc["counts"] == {"done": 1}

    def test_job_doc_carries_result(self, server, finished_sweep):
        sid, _ = finished_sweep
        _, body = _get(server.url, f"/v1/sweeps/{sid}")
        key = json.loads(body)["jobs"][0]["key"]
        _, body = _get(server.url, f"/v1/jobs/{key}")
        doc = json.loads(body)
        assert doc["status"] == "done"
        assert doc["result"]["cycles"] > 0
        assert doc["result"]["schema"] == "repro.result/1"

    def test_unknown_job_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server.url, "/v1/jobs/" + "0" * 64)
        assert exc.value.code == 404

    def test_resubmission_dedups_entirely(self, server, finished_sweep):
        """The >=90% cache-hit acceptance bar: resubmitting a finished
        sweep creates zero new executions (a 100% hit rate)."""
        sid, _ = finished_sweep
        status, doc = _post(
            server.url, "/v1/sweeps", dict(POINT, schema=SERVE_SCHEMA)
        )
        assert status == 202
        assert doc["id"] == sid
        assert doc["created_jobs"] == 0
        assert doc["deduped_jobs"] == 1

    def test_sweep_list(self, server, finished_sweep):
        sid, _ = finished_sweep
        _, body = _get(server.url, "/v1/sweeps")
        sweeps = json.loads(body)["sweeps"]
        assert any(s["id"] == sid and s["done"] for s in sweeps)

    def test_metrics_prometheus(self, server, finished_sweep):
        _, body = _get(server.url, "/v1/metrics")
        text = body.decode()
        assert "# TYPE repro_serve_http_requests counter" in text
        assert "repro_store_enqueued" in text
        assert "repro_serve_workers 1" in text

    def test_report_html(self, server, finished_sweep):
        _, body = _get(server.url, "/v1/report?baseline=pthread")
        assert b"<html" in body.lower()
        assert b"canneal" in body

    def test_sse_stream(self, server, finished_sweep):
        sid, _ = finished_sweep
        _, body = _get(server.url, f"/v1/sweeps/{sid}?stream=sse")
        text = body.decode()
        assert "event: progress" in text
        assert "event: done" in text


class TestValidation:
    def test_malformed_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/sweeps", data=b"not json"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=30)
        assert exc.value.code == 400

    def test_unknown_schema_major_400(self, server):
        """The wire-compat pin: a future-major envelope is refused with
        a clear error, never half-parsed."""
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(server.url, "/v1/sweeps", dict(POINT, schema="repro.serve/9"))
        assert exc.value.code == 400
        assert "repro.serve/9" in json.loads(exc.value.read())["error"]

    def test_unknown_config_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(
                server.url,
                "/v1/sweeps",
                dict(POINT, schema=SERVE_SCHEMA, configs=["no-such"]),
            )
        assert exc.value.code == 400
        assert "no-such" in json.loads(exc.value.read())["error"]

    def test_unknown_workload_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(
                server.url,
                "/v1/sweeps",
                dict(POINT, schema=SERVE_SCHEMA, workloads=["no-such"]),
            )
        assert exc.value.code == 400

    def test_unknown_sweep_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server.url, "/v1/sweeps/feedfacefeedface")
        assert exc.value.code == 404


class TestWire:
    def test_grid_expansion_matches_local_walk(self):
        specs = expand_sweep_request(
            {
                "schema": SERVE_SCHEMA,
                "configs": ["pthread", "msa-omu-2"],
                "workloads": ["canneal", "swaptions"],
                "cores": [4, 8],
                "scale": 0.1,
            }
        )
        walk = [(s.cores, s.workload, s.config) for s in specs]
        assert walk == [
            (n, w, c)
            for n in (4, 8)
            for w in ("canneal", "swaptions")
            for c in ("pthread", "msa-omu-2")
        ]

    def test_sweep_id_is_order_independent(self):
        assert sweep_id(["b", "a"]) == sweep_id(["a", "b"])
        assert sweep_id(["a"]) != sweep_id(["a", "b"])

    def test_specs_key_like_local_sweeps(self):
        """Server-side keys must match local ``api.sweep`` keys (the
        shared-cache-namespace contract)."""
        from repro.harness.jobs import JobSpec, resolve_factory

        [spec] = expand_sweep_request(dict(POINT, schema=SERVE_SCHEMA))
        local = JobSpec(
            config="pthread",
            workload="canneal",
            cores=4,
            scale=0.1,
            seed=7,
            factory=resolve_factory("canneal"),
        )
        assert spec.key() == local.key()


class TestConcurrentDedup:
    def test_two_clients_one_execution_per_point(self, tmp_path):
        """The single-execution acceptance bar: two clients racing the
        same two-point sweep produce exactly one store row and one
        execution per point -- proved by the store's lifetime counters,
        not by timing."""
        srv = Server(cache_dir=tmp_path, port=0).start()
        try:
            body = {
                "schema": SERVE_SCHEMA,
                "configs": ["pthread", "msa-omu-2"],
                "workloads": ["canneal"],
                "cores": [4],
                "scale": 0.1,
                "seed": 7,
            }
            docs, errors = [], []

            def client():
                try:
                    docs.append(_post(srv.url, "/v1/sweeps", body)[1])
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert docs[0]["id"] == docs[1]["id"]
            # Between the two submissions: every point created once.
            created = sum(d["created_jobs"] for d in docs)
            deduped = sum(d["deduped_jobs"] for d in docs)
            assert created == 2 and deduped == 2

            _get(srv.url, f"/v1/sweeps/{docs[0]['id']}?wait=120")
            store = JobStore(default_store_path(tmp_path))
            try:
                counters = store.counters()
            finally:
                store.close()
            assert counters["enqueued"] == 2
            assert counters["done"] == 2
            assert counters.get("retries", 0) == 0
        finally:
            srv.stop()


@pytest.mark.slow
class TestCrashRecovery:
    def test_sigkill_server_restart_converges(self, tmp_path):
        """SIGKILL ``python -m repro serve`` mid-sweep; a fresh server
        on the same cache directory finishes the sweep (expired leases
        are reclaimed) and fsck finds nothing to repair."""
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--cache-dir", str(tmp_path), "--port", "0", "--lease", "2",
            ],
            cwd=Path(__file__).resolve().parents[1],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            discovery = tmp_path / "serve.json"
            deadline = time.time() + 30
            while not discovery.exists() and time.time() < deadline:
                time.sleep(0.1)
            url = json.loads(discovery.read_text())["url"]
            body = {
                "schema": SERVE_SCHEMA,
                "configs": ["pthread", "msa-omu-2", "msa-omu-4"],
                "workloads": ["canneal"],
                "cores": [4],
                "scale": 0.1,
                "seed": 7,
            }
            status, doc = _post(url, "/v1/sweeps", body)
            assert status == 202 and doc["created_jobs"] == 3
        finally:
            proc.kill()
            proc.wait(timeout=30)

        srv = Server(cache_dir=tmp_path, port=0, lease_s=2.0).start()
        try:
            _, raw = _get(srv.url, f"/v1/sweeps/{doc['id']}?wait=120")
            final = json.loads(raw)
            while not final["done"]:
                _, raw = _get(srv.url, f"/v1/sweeps/{doc['id']}?wait=60")
                final = json.loads(raw)
            assert final["ok"], final["jobs"]
        finally:
            srv.stop()

        from repro.resilience import fsck

        report = fsck(tmp_path)
        assert report.ok
        assert report.healthy_entries == 3
