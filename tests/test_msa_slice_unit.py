"""Fine-grained unit tests for MSA slice internals: NBTC selection,
entry lifecycle predicates, type checking, and the stats surface."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.params import MSAParams, OMUParams
from repro.common.stats import StatSet
from repro.common.types import SyncOp, SyncResult, SyncType
from repro.harness.configs import build_machine
from repro.msa.entry import MSAEntry
from tests.conftest import run_threads


class TestEntryPredicates:
    def test_fresh_lock_entry_evictable(self):
        entry = MSAEntry(addr=0x100, sync_type=SyncType.LOCK)
        assert entry.hwqueue_empty()
        assert entry.evictable()
        assert not entry.idle_cached()

    def test_owner_blocks_eviction(self):
        entry = MSAEntry(addr=0x100, sync_type=SyncType.LOCK, owner=3)
        assert not entry.hwqueue_empty()
        assert not entry.evictable()

    def test_waiters_block_eviction(self):
        entry = MSAEntry(addr=0x100, sync_type=SyncType.LOCK)
        entry.waiters[5] = 17
        assert not entry.evictable()

    def test_pin_blocks_eviction(self):
        entry = MSAEntry(addr=0x100, sync_type=SyncType.LOCK, pin_count=1)
        assert not entry.evictable()

    def test_hwsync_makes_idle_cached(self):
        entry = MSAEntry(addr=0x100, sync_type=SyncType.LOCK, hwsync_core=2)
        assert not entry.evictable()
        assert entry.idle_cached()

    def test_revoking_blocks_both(self):
        entry = MSAEntry(
            addr=0x100, sync_type=SyncType.LOCK, hwsync_core=2, revoking=True
        )
        assert not entry.evictable()
        assert not entry.idle_cached()

    def test_reserved_blocks_eviction(self):
        entry = MSAEntry(addr=0x100, sync_type=SyncType.CONDVAR, reserved=True)
        assert not entry.evictable()

    def test_repr_is_informative(self):
        entry = MSAEntry(addr=0x200, sync_type=SyncType.BARRIER)
        assert "barrier" in repr(entry)
        assert "0x200" in repr(entry)


class TestNBTCSelection:
    def _slice(self, machine):
        return machine.msa_slice(0)

    def test_round_robin_advances(self, machine16):
        s = self._slice(machine16)
        entry = MSAEntry(addr=0x100, sync_type=SyncType.LOCK)
        entry.waiters = {3: 1, 7: 2, 12: 3}
        s.nbtc = 0
        assert s._select_waiter(entry) == 3
        assert s.nbtc == 4
        assert s._select_waiter(entry) == 7
        assert s.nbtc == 8
        assert s._select_waiter(entry) == 12
        assert s.nbtc == 13

    def test_wraps_around(self, machine16):
        s = self._slice(machine16)
        entry = MSAEntry(addr=0x100, sync_type=SyncType.LOCK)
        entry.waiters = {2: 1}
        s.nbtc = 10
        assert s._select_waiter(entry) == 2
        assert s.nbtc == 3

    def test_empty_queue_raises(self, machine16):
        s = self._slice(machine16)
        entry = MSAEntry(addr=0x100, sync_type=SyncType.LOCK)
        with pytest.raises(ProtocolError):
            s._select_waiter(entry)

    def test_nbtc_shared_across_entries(self, machine16):
        """One NBTC register per slice, not per entry (paper 4.1)."""
        s = self._slice(machine16)
        a = MSAEntry(addr=0x100, sync_type=SyncType.LOCK)
        a.waiters = {1: 1, 9: 2}
        b = MSAEntry(addr=0x200, sync_type=SyncType.LOCK)
        b.waiters = {1: 3, 9: 4}
        s.nbtc = 0
        assert s._select_waiter(a) == 1  # nbtc -> 2
        assert s._select_waiter(b) == 9  # continues from 2


class TestTypeChecking:
    def test_mixed_type_use_raises(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()

        def body(th):
            yield from th.sync(SyncOp.LOCK, addr)
            yield from th.sync(SyncOp.BARRIER, addr, aux=2)

        m.scheduler.spawn(body)
        with pytest.raises(ProtocolError):
            m.run(max_events=500_000)

    def test_capacity_invariant_checked(self):
        m = build_machine("msa-omu-1", n_cores=4)
        slice_ = m.msa_slice(0)
        slice_.entries[0x1] = MSAEntry(addr=0x1, sync_type=SyncType.LOCK)
        slice_.entries[0x2] = MSAEntry(addr=0x2, sync_type=SyncType.LOCK)
        with pytest.raises(ProtocolError):
            slice_.check_invariants()


class TestSliceStats:
    def test_coverage_counters_balance(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()

        def body(th):
            for _ in range(3):
                yield from th.lock(addr)
                yield from th.unlock(addr)
                yield from th.compute(60)

        run_threads(m, [body] * 4)
        counters = m.msa_counters()
        issued = m.sync_unit_counters()
        total_hw_sw = (
            counters.get("ops_hw", 0)
            + counters.get("ops_sw", 0)
            + counters.get("ops_aborted", 0)
        )
        total_issued = (
            issued.get("issued.lock", 0) + issued.get("issued.unlock", 0)
        )
        # Every issued op is accounted once (silent ops count at the
        # slice when the notification arrives).
        assert total_hw_sw == total_issued

    def test_ops_by_kind_recorded(self, machine16):
        m = machine16
        lock = m.allocator.sync_var()
        barrier = m.allocator.sync_var()

        def body(th):
            yield from th.lock(lock)
            yield from th.unlock(lock)
            yield from th.barrier(barrier, 2)

        run_threads(m, [body] * 2)
        counters = m.msa_counters()
        assert counters.get("req.lock", 0) >= 1
        assert counters.get("req.barrier", 0) == 2
