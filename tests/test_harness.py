"""Tests for the experiment harness: runner, report rendering, related
work registry, and the experiment drivers on tiny grids."""

import pytest

from repro.harness.configs import build_machine
from repro.harness.related_work import RELATED_WORK, supports_all_three, table1_rows
from repro.harness.report import render_table
from repro.harness.runner import RunResult, run_workload
from repro.workloads.kernels import KERNELS


class TestReport:
    def test_render_basic_table(self):
        out = render_table(
            ["a", "bb"], [[1, 2.5], ["xxx", "y"]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in out and "xxx" in out

    def test_column_widths_fit_content(self):
        out = render_table(["h"], [["wide-cell-content"]])
        header, divider, row = out.splitlines()
        assert len(divider) >= len("wide-cell-content")


class TestRelatedWork:
    def test_thirteen_schemes(self):
        assert len(RELATED_WORK) == 13
        assert len(table1_rows()) == 13

    def test_only_misar_supports_all_three(self):
        all_three = [s for s in RELATED_WORK if supports_all_three(s)]
        assert len(all_three) == 1
        assert "MSA/OMU" in all_three[0].name

    def test_direct_barrier_schemes_use_dedicated_networks(self):
        """The paper's observation: direct-notification barrier
        proposals mostly rely on dedicated networks -- except MiSAR."""
        for s in RELATED_WORK:
            if (
                s.primitives == ("barrier",)
                and s.notification == "direct"
            ):
                assert s.dedicated_network

    def test_row_format(self):
        for row in table1_rows():
            assert len(row) == 6
            assert row[2] in ("Direct", "Indirect")
            assert row[4] in ("Yes", "No")


class TestRunner:
    def test_run_result_fields(self):
        machine = build_machine("msa-omu-2", n_cores=16)
        result = run_workload(machine, KERNELS["barnes"](16, 0.25), config="x")
        assert isinstance(result, RunResult)
        assert result.config == "x"
        assert result.workload == "barnes"
        assert result.n_cores == 16
        assert result.cycles > 0
        assert result.noc_counters["messages_sent"] > 0

    def test_speedup_over(self):
        a = RunResult("a", "w", 16, cycles=100, msa_coverage=None)
        b = RunResult("b", "w", 16, cycles=50, msa_coverage=None)
        assert b.speedup_over(a) == 2.0

    def test_check_flag_validates(self):
        machine = build_machine("msa-omu-2", n_cores=16)
        run_workload(machine, KERNELS["volrend"](16, 0.25), check=True)

    def test_workload_thread_count_enforced(self):
        from repro.common.errors import WorkloadError

        machine = build_machine("pthread", n_cores=4)
        with pytest.raises(WorkloadError):
            run_workload(machine, KERNELS["barnes"](16, 0.25))


class TestExperimentDrivers:
    def test_fig5_tiny_grid(self):
        from repro.harness.experiments import fig5

        results = fig5(
            cores=(4,), configs=("pthread", "msa-omu-2"), print_out=False
        )
        assert results["LockHandoff"][("msa-omu-2", 4)] < results[
            "LockHandoff"
        ][("pthread", 4)]

    def test_fig6_tiny_grid(self):
        from repro.harness.experiments import fig6

        grid = fig6(
            cores=(16,),
            configs=("msa-omu-2",),
            apps=("streamcluster",),
            scale=0.25,
            print_out=False,
        )
        assert grid.speedups[("streamcluster", "msa-omu-2", 16)] > 1.0

    def test_fig7_tiny_grid(self):
        from repro.harness.experiments import fig7

        cov = fig7(
            cores=(16,),
            entries=(2,),
            apps=("fluidanimate",),
            scale=0.25,
            print_out=False,
        )
        assert cov[(2, 16, True)] > cov[(2, 16, False)]

    def test_fig8_tiny_grid(self):
        from repro.harness.experiments import fig8

        res = fig8(cores=(16,), scale=0.25, print_out=False)
        assert res[("with_opt", 16)] > 0

    def test_fig9_tiny_grid(self):
        from repro.harness.experiments import fig9

        res = fig9(
            n_cores=16, apps=("streamcluster",), scale=0.25, print_out=False
        )
        assert res[("streamcluster", "msa-lockonly-2")] < res[
            ("streamcluster", "msa-omu-2")
        ]

    def test_cli_table1(self, capsys):
        from repro.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "MSA/OMU" in out
