"""Report-from-cache tests: the HTML reports must render purely from
serialized results -- never by re-simulating -- and the CLI verbs must
produce self-contained files."""

from __future__ import annotations

import pytest

from repro import api
from repro.common.errors import ConfigError
from repro.harness import jobs
from repro.obs import load_cache_points, render_run_report, report_from_cache


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """A small real sweep, cached once for the whole module."""
    root = tmp_path_factory.mktemp("result-cache")
    api.sweep(
        configs=("pthread", "msa-omu-2"),
        workloads=("streamcluster", "lu"),
        cores=(4,),
        scale=0.05,
        cache_dir=str(root),
    )
    return str(root)


@pytest.fixture
def no_simulation(monkeypatch):
    """Make any attempt to simulate explode, proving cache-only paths."""

    def boom(spec):
        raise AssertionError(f"re-simulated {spec.describe()} from cache!")

    monkeypatch.setattr(jobs, "execute_spec", boom)


class TestLoadCachePoints:
    def test_loads_every_point_without_simulating(self, cache_dir, no_simulation):
        points = load_cache_points(cache_dir)
        assert len(points) == 4
        assert {(p.config, p.workload) for p in points} == {
            ("pthread", "streamcluster"), ("pthread", "lu"),
            ("msa-omu-2", "streamcluster"), ("msa-omu-2", "lu"),
        }
        for p in points:
            assert p.result.cycles > 0
            assert p.n_cores == 4

    def test_deterministic_order(self, cache_dir):
        first = [(p.config, p.workload) for p in load_cache_points(cache_dir)]
        second = [(p.config, p.workload) for p in load_cache_points(cache_dir)]
        assert first == second

    def test_missing_cache_is_empty(self, tmp_path):
        assert load_cache_points(tmp_path / "nope") == []

    def test_torn_entries_skipped(self, cache_dir, tmp_path):
        import shutil

        root = tmp_path / "copy"
        shutil.copytree(cache_dir, root)
        bad = root / "zz"
        bad.mkdir()
        (bad / "zz.json").write_text("{torn")
        assert len(load_cache_points(root)) == 4


class TestReportFromCache:
    def test_renders_html_without_simulating(
        self, cache_dir, tmp_path, no_simulation
    ):
        out = report_from_cache(
            cache_dir, tmp_path / "report.html", baseline="pthread"
        )
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "msa-omu-2" in html and "pthread" in html
        assert "streamcluster" in html and "lu" in html
        assert "speedup over pthread" in html
        assert "1.00x" in html  # baseline vs itself
        # Self-contained: no external references.
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html

    def test_empty_cache_is_an_error(self, tmp_path):
        with pytest.raises(ConfigError, match="no cached results"):
            report_from_cache(tmp_path / "empty", tmp_path / "out.html")

    def test_unknown_baseline_is_an_error(self, cache_dir, tmp_path):
        with pytest.raises(ConfigError, match="baseline"):
            report_from_cache(
                cache_dir, tmp_path / "out.html", baseline="nonesuch"
            )

    def test_cli_report_verb(self, cache_dir, tmp_path, capsys, no_simulation):
        from repro.__main__ import main

        out = tmp_path / "cli.html"
        rc = main([
            "report", "--cache-dir", cache_dir, "--out", str(out),
            "--baseline", "pthread",
        ])
        assert rc == 0
        assert out.read_text().startswith("<!DOCTYPE html>")
        assert str(out) in capsys.readouterr().out


class TestRunReport:
    def test_run_report_without_obs(self, cache_dir):
        points = load_cache_points(cache_dir)
        html = render_run_report(points[0].result)
        assert html.startswith("<!DOCTYPE html>")
        assert "Top counters" in html

    def test_run_report_with_obs_sections(self):
        result, obs = api.observe(
            "msa-omu-1", "fluidanimate", cores=4, scale=0.2
        )
        html = render_run_report(result, obs)
        assert "Cycle attribution" in html
        assert "OMU transitions" in html
        assert "<svg" in html  # timeline + share bars are inline SVG
        assert "lock.acquire" in html

    def test_cli_obs_verb(self, tmp_path, capsys):
        from repro.__main__ import main

        html = tmp_path / "run.html"
        trace = tmp_path / "trace.json"
        rc = main([
            "obs", "--config", "msa-omu-2", "--workload", "streamcluster",
            "--cores", "4", "--scale", "0.05",
            "--html", str(html), "--trace", str(trace),
        ])
        assert rc == 0
        assert html.read_text().startswith("<!DOCTYPE html>")
        import json

        events = json.loads(trace.read_text())["traceEvents"]
        assert all("pid" in e and "tid" in e for e in events)
        assert "spans retained" in capsys.readouterr().out
