"""Protocol stress: tiny caches, tiny MSA, heavy churn.

Shrinking the hardware structures (2-set direct-mapped-ish L1s,
1-entry MSA slices) forces the rare transitions -- eviction races,
directory queue depth, entry thrash -- far more often than realistic
sizes do.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import CacheParams, MachineParams, MSAParams, OMUParams
from repro.machine import Machine


def tiny_machine(n_cores=4, entries=1, seed=7):
    params = MachineParams(
        n_cores=n_cores,
        l1=CacheParams(n_sets=2, associativity=2),
        msa=MSAParams(entries_per_tile=entries),
        omu=OMUParams(n_counters=2),
        seed=seed,
    )
    return Machine(params, library="hybrid")


def run(machine, max_events=10_000_000):
    cycles = machine.run(max_events=max_events)
    machine.check_invariants()
    return cycles


class TestTinyCaches:
    def test_heavy_eviction_churn_preserves_data(self):
        m = tiny_machine()
        # 16 lines across 2 sets x 2 ways: constant eviction.
        base = 1 << 22
        addrs = [base + i * 64 for i in range(16)]

        def make_body(i):
            def body(th):
                for round_ in range(6):
                    for k, addr in enumerate(addrs):
                        if (i + k + round_) % 2:
                            yield from th.fetch_add(addr, 1)
                        else:
                            yield from th.load(addr)
            return body

        for core in range(4):
            m.scheduler.spawn(make_body(core))
        run(m)
        total = sum(m.memory.peek(a) for a in addrs)
        # Every fetch_add accounted: sum of per-thread counts.
        expected = sum(
            1
            for i in range(4)
            for round_ in range(6)
            for k in range(16)
            if (i + k + round_) % 2
        )
        assert total == expected
        assert m.memory.l1s[0].stats.counter("evictions").value > 10

    def test_sync_vars_thrash_through_tiny_cache(self):
        m = tiny_machine()
        lock = m.allocator.sync_var()
        counter = m.allocator.line()
        filler = [1 << 23 | (i * 64) for i in range(8)]

        def body(th):
            for k in range(5):
                yield from th.lock(lock)
                value = yield from th.load(counter)
                yield from th.store(counter, value + 1)
                yield from th.unlock(lock)
                # Evict everything between critical sections.
                for addr in filler:
                    yield from th.store(addr, k)

        for core in range(4):
            m.scheduler.spawn(body)
        run(m)
        assert m.memory.peek(counter) == 20


class TestTinyMSA:
    def test_one_entry_slice_with_lock_and_barrier_thrash(self):
        m = tiny_machine(entries=1)
        locks = [m.allocator.sync_var(home=t) for t in range(4)]
        barrier = m.allocator.sync_var()
        counters = {lock: m.allocator.line() for lock in locks}

        def make_body(i):
            def body(th):
                for round_ in range(4):
                    lock = locks[(i + round_) % 4]
                    yield from th.lock(lock)
                    value = yield from th.load(counters[lock])
                    yield from th.store(counters[lock], value + 1)
                    yield from th.unlock(lock)
                    yield from th.barrier(barrier, 4)
            return body

        for i in range(4):
            m.scheduler.spawn(make_body(i))
        run(m)
        assert sum(m.memory.peek(c) for c in counters.values()) == 16
        assert m.omu_totals() == 0

    def test_two_counter_omu_heavy_aliasing(self):
        """With 2 OMU counters, aliasing steers aggressively; the runs
        stay correct (aliasing is performance-only)."""
        m = tiny_machine(entries=1)
        locks = [m.allocator.sync_var(home=0) for _ in range(6)]
        shared = m.allocator.line()

        def make_body(i):
            def body(th):
                for k in range(5):
                    lock = locks[(i * 2 + k) % 6]
                    yield from th.lock(lock)
                    value = yield from th.load(shared)
                    yield from th.store(shared, value + 1)
                    yield from th.unlock(lock)
            return body

        # All increments on one shared word, different locks: the word
        # update itself races unless we count per lock... use a single
        # lock-protected invariant instead: total CS entries.
        # (Different locks protect different *data* in real code; here
        # we only verify the machine completes and stays consistent.)
        for i in range(4):
            m.scheduler.spawn(make_body(i))
        run(m)
        assert m.omu_totals() == 0


@settings(max_examples=10, deadline=None)
@given(
    n_lines=st.integers(2, 12),
    rounds=st.integers(1, 5),
    seed=st.integers(0, 100),
)
def test_property_tiny_cache_rmw_linearizable(n_lines, rounds, seed):
    m = tiny_machine(seed=seed)
    base = 1 << 24
    addrs = [base + i * 64 for i in range(n_lines)]

    def body(th):
        for r in range(rounds):
            for addr in addrs:
                yield from th.fetch_add(addr, 1)

    for core in range(4):
        m.scheduler.spawn(body)
    run(m)
    for addr in addrs:
        assert m.memory.peek(addr) == 4 * rounds
