"""Tests for the :mod:`repro.api` facade, the package-root re-exports,
the ``python -m repro`` CLI, and the parallel-sweep acceptance smoke:
a 2-config x 2-workload grid through ``repro.api.sweep(workers=...)``
must be byte-identical to the serial path, and a repeat run must be
served (almost) entirely from the result cache."""

import pytest

import repro
from repro import api
from repro.machine import Machine
from repro.workloads.kernels import KERNELS

GRID = dict(
    configs=("pthread", "msa-omu-2"),
    workloads=("canneal", "swaptions"),
    cores=(16,),
    scale=0.25,
    seed=7,
)


class TestFacadeSurface:
    def test_package_root_reexports(self):
        assert repro.api is api
        assert repro.build is api.build
        assert repro.run is api.run
        assert repro.sweep is api.sweep
        assert repro.RunResult is api.RunResult
        assert "api" in dir(repro) and "sweep" in dir(repro)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_name

    def test_facade_exports(self):
        for name in (
            "build",
            "run",
            "sweep",
            "RunResult",
            "SweepPoint",
            "Engine",
            "JobSpec",
            "CONFIG_NAMES",
        ):
            assert name in api.__all__
            assert getattr(api, name) is not None


class TestBuild:
    def test_consistent_keywords(self):
        machine = api.build("pthread", cores=4, seed=3)
        assert isinstance(machine, Machine)
        assert machine.params.n_cores == 4
        assert machine.params.seed == 3

    def test_param_overrides(self):
        from repro.common.params import CoreParams

        machine = api.build(
            "msa-omu-2", cores=4, core=CoreParams(hw_threads=2)
        )
        assert machine.params.core.hw_threads == 2


class TestRun:
    def test_config_name_and_workload_name(self):
        result = api.run("msa-omu-2", "streamcluster", cores=16, scale=0.25)
        assert result.config == "msa-omu-2"
        assert result.workload == "streamcluster"
        assert result.cycles > 0

    def test_prebuilt_machine_and_workload_instance(self):
        machine = api.build("pthread", cores=16)
        result = api.run(machine, KERNELS["canneal"](16, 0.25))
        assert result.cycles > 0

    def test_factory_callable(self):
        result = api.run("pthread", KERNELS["canneal"], cores=16, scale=0.25)
        assert result.workload == "canneal"

    def test_core_count_conflict_rejected(self):
        machine = api.build("pthread", cores=16)
        with pytest.raises(ValueError):
            api.run(machine, "canneal", cores=4)

    def test_matches_serial_runner(self):
        from repro.harness.jobs import JobSpec, execute_spec

        via_api = api.run("pthread", "canneal", cores=16, scale=0.25, seed=7)
        via_engine = execute_spec(
            JobSpec(
                config="pthread", workload="canneal", cores=16, scale=0.25,
                seed=7,
            )
        )
        assert via_api.to_json() == via_engine.to_json()


class TestSweepSmoke:
    """The acceptance smoke: parallel == serial, repeats hit the cache."""

    @pytest.fixture(scope="class")
    def serial_points(self):
        return api.sweep(**GRID)

    def test_parallel_matches_serial_byte_for_byte(
        self, serial_points, tmp_path
    ):
        cache = tmp_path / "cache"
        parallel, stats = api.sweep(
            **GRID, workers=4, cache_dir=cache, return_stats=True
        )
        assert stats.total == 4 and stats.executed == 4
        assert [p.result.to_json() for p in parallel] == [
            p.result.to_json() for p in serial_points
        ]

        repeat, stats2 = api.sweep(
            **GRID, workers=4, cache_dir=cache, return_stats=True
        )
        assert stats2.hit_rate >= 0.9  # acceptance floor; in fact 1.0
        assert stats2.executed == 0
        assert [p.result.to_json() for p in repeat] == [
            p.result.to_json() for p in serial_points
        ]

    def test_workloads_accepts_single_name_and_dict(self):
        single = api.sweep(
            configs=("pthread",), workloads="canneal", scale=0.25, seed=7
        )
        explicit = api.sweep(
            configs=("pthread",),
            workloads={"canneal": KERNELS["canneal"]},
            scale=0.25,
            seed=7,
        )
        assert len(single) == len(explicit) == 1
        assert single[0].result.to_json() == explicit[0].result.to_json()

    def test_machine_hook_path_still_serial(self):
        seen = []
        points = api.sweep(
            configs=("pthread",),
            workloads="canneal",
            scale=0.25,
            machine_hook=lambda m: seen.append(m.params.n_cores),
        )
        assert seen == [16] and len(points) == 1


class TestCli:
    def test_module_cli_sweep(self, tmp_path, capsys):
        from repro.__main__ import main

        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "sweep",
                "--configs", "pthread", "msa-omu-2",
                "--workloads", "canneal",
                "--cores", "16",
                "--scale", "0.25",
                "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--baseline", "pthread",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        text = csv_path.read_text()
        assert text.startswith("config,workload,n_cores,scale,cycles")
        assert "speedup" in text.splitlines()[0]
        assert "msa-omu-2" in text

    def test_module_cli_table1(self, capsys):
        from repro.__main__ import main

        assert main(["table1"]) == 0
        assert "MSA/OMU" in capsys.readouterr().out

    def test_experiments_main_is_thin_alias(self, capsys):
        from repro.harness.experiments import main

        with pytest.warns(DeprecationWarning, match="python -m repro"):
            assert main(["table1"]) == 0
        assert "MSA/OMU" in capsys.readouterr().out
