"""Tests for the no-spurious-wakeup condition-wait variant (paper
section 4.3.2's timestamp scheme)."""

import pytest

from repro.harness.configs import build_machine
from tests.conftest import run_threads


def machine():
    return build_machine("msa-omu-2", n_cores=16)


class TestNoSpuriousBasics:
    def test_plain_if_predicate_is_safe(self):
        """The whole point: the waiter may use `if`, not `while`."""
        m = machine()
        lib = m.sync_library
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        observed = []

        def waiter(th):
            yield from th.lock(lock)
            value = yield from th.load(flag)
            if not value:
                yield from lib.cond_wait_no_spurious(th, cond, lock)
            value = yield from th.load(flag)
            observed.append(value)
            yield from th.unlock(lock)

        def signaler(th):
            yield from th.compute(1500)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from lib.cond_signal_no_spurious(th, cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter, signaler])
        assert observed == [1]

    def test_broadcast_wakes_all_no_spurious(self):
        m = machine()
        lib = m.sync_library
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        woke = []

        def waiter(th):
            yield from th.lock(lock)
            value = yield from th.load(flag)
            if not value:
                yield from lib.cond_wait_no_spurious(th, cond, lock)
            woke.append(th.tid)
            yield from th.unlock(lock)

        def caster(th):
            yield from th.compute(2500)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from lib.cond_broadcast_no_spurious(th, cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter] * 5 + [caster])
        assert sorted(woke) == [0, 1, 2, 3, 4]


class TestSuspensionDoesNotLeak:
    def test_aborted_waiter_rewaits_instead_of_returning(self):
        """A suspension-induced ABORT with no intervening signal must
        loop back to waiting -- not return control to the caller."""
        m = machine()
        lib = m.sync_library
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        returned = []

        def waiter(th):
            yield from th.lock(lock)
            value = yield from th.load(flag)
            if not value:
                yield from lib.cond_wait_no_spurious(th, cond, lock)
            value = yield from th.load(flag)
            returned.append(value)
            yield from th.unlock(lock)

        def signaler(th):
            yield from th.compute(9000)  # long after the suspension
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from lib.cond_signal_no_spurious(th, cond)
            yield from th.unlock(lock)

        t_waiter = m.scheduler.spawn(waiter, core=0)
        m.scheduler.spawn(signaler, core=1)
        m.sim.schedule(1000, lambda: m.scheduler.suspend(t_waiter))
        m.sim.schedule(2200, lambda: m.scheduler.resume(t_waiter))
        m.run(max_events=5_000_000)
        m.check_invariants()
        # The waiter only ever saw flag == 1: no spurious return.
        assert returned == [1]
        ctx = m.scheduler.contexts[0]
        assert ctx.stats.counter("nospurious_rewaits").value >= 1
        assert m.omu_totals() == 0

    def test_signal_racing_suspension_still_returns(self):
        """If a signal *did* occur around the suspension, the aborted
        waiter's timestamp check lets it return rather than re-wait."""
        m = machine()
        lib = m.sync_library
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        done = []

        def waiter(th):
            yield from th.lock(lock)
            value = yield from th.load(flag)
            if not value:
                yield from lib.cond_wait_no_spurious(th, cond, lock)
            done.append(th.sim.now)
            yield from th.unlock(lock)

        def signaler(th):
            yield from th.compute(1200)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from lib.cond_signal_no_spurious(th, cond)
            yield from th.unlock(lock)

        t_waiter = m.scheduler.spawn(waiter, core=0)
        m.scheduler.spawn(signaler, core=1)
        # Suspend roughly when the signal is being delivered.
        m.sim.schedule(1210, lambda: m.scheduler.suspend(t_waiter))
        m.sim.schedule(2000, lambda: m.scheduler.resume(t_waiter))
        m.run(max_events=5_000_000)
        m.check_invariants()
        assert len(done) == 1
        assert m.omu_totals() == 0

    def test_software_fallback_path_no_spurious(self):
        """When the condvar runs in software (OMU-steered), the variant
        still provides no-spurious semantics."""
        m = machine()
        lib = m.sync_library
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        # Steer the condvar to software.
        m.msa_slice(m.memory.amap.home_of(cond)).omu.increment(cond)
        returned = []

        def waiter(th):
            yield from th.lock(lock)
            value = yield from th.load(flag)
            if not value:
                yield from lib.cond_wait_no_spurious(th, cond, lock)
            value = yield from th.load(flag)
            returned.append(value)
            yield from th.unlock(lock)

        def signaler(th):
            yield from th.compute(2000)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from lib.cond_signal_no_spurious(th, cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter, signaler])
        assert returned == [1]
        # Drain the artificial increment for the balance check.
        m.msa_slice(m.memory.amap.home_of(cond)).omu.decrement(cond)
        assert m.omu_totals() == 0
