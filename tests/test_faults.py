"""Fault-injection plane: plan validation, the reliable transport, the
determinism guarantee (no plan => bit-for-bit the fault-free machine),
and graceful degradation when an MSA slice is killed mid-run.
"""

import pytest

from repro.common.errors import ConfigError, DeadlockError
from repro.common.params import FaultParams
from repro.faults import (
    FLAKY_ABORT,
    KILL,
    FaultPlan,
    LatencyFault,
    MessageFault,
    SliceFault,
    drop_plan,
)
from repro.harness.configs import build_machine, machine_params
from repro.machine import Machine

#: Tight recovery clock for kill tests: detection in a few thousand
#: cycles instead of the production default's tens of thousands.
FAST_RECOVERY = FaultParams(
    request_timeout=200, request_timeout_max=3200, max_retries=4
)


# ---------------------------------------------------------------------------
# Plan validation
# ---------------------------------------------------------------------------
def test_plan_rejects_noncovered_prefix():
    with pytest.raises(ConfigError):
        FaultPlan(messages=(MessageFault(kind_prefix="coh"),)).validate()


def test_plan_rejects_bad_probability():
    with pytest.raises(ConfigError):
        FaultPlan(messages=(MessageFault(drop_prob=1.5),)).validate()


def test_plan_rejects_bad_window():
    with pytest.raises(ConfigError):
        FaultPlan(messages=(MessageFault(window=(100, 50)),)).validate()


def test_plan_rejects_out_of_range_tile():
    plan = FaultPlan(slices=(SliceFault(tile=99, at=0),))
    with pytest.raises(ConfigError):
        plan.validate(n_tiles=16)


def test_plan_rejects_unknown_slice_mode():
    with pytest.raises(ConfigError):
        SliceFault(tile=0, at=0, mode="melt").validate()


def test_plan_rejects_bad_latency_fault():
    with pytest.raises(ConfigError):
        LatencyFault(extra_max=0).validate()


def test_fault_params_validation():
    with pytest.raises(ConfigError):
        FaultParams(request_timeout=0).validate()
    with pytest.raises(ConfigError):
        FaultParams(max_retries=0).validate()


def test_fault_plan_requires_msa():
    for config in ("pthread", "ideal", "msa0"):
        with pytest.raises(ConfigError):
            build_machine(config, fault_plan=drop_plan(0.1))


# ---------------------------------------------------------------------------
# Determinism: the fault machinery must be invisible when unarmed
# ---------------------------------------------------------------------------
def _lock_run(fault_plan, seed=17):
    m = build_machine("msa-omu-2", n_cores=16, seed=seed, fault_plan=fault_plan)
    lock = m.allocator.sync_var()
    counter = m.allocator.line()

    def body(th):
        for _ in range(8):
            yield from th.lock(lock)
            value = yield from th.load(counter)
            yield from th.compute(7)
            yield from th.store(counter, value + 1)
            yield from th.unlock(lock)

    for _ in range(6):
        m.scheduler.spawn(body)
    cycles = m.run()
    return m, cycles


def test_no_plan_is_bitwise_identical():
    """A machine built without a plan and one built with fault_plan=None
    must agree on every cycle count and every counter."""
    m_plain, c_plain = _lock_run(None)
    m_again, c_again = _lock_run(None)
    assert c_plain == c_again
    assert m_plain.msa_counters() == m_again.msa_counters()
    assert m_plain.sync_unit_counters() == m_again.sync_unit_counters()
    assert (
        m_plain.network.stats.counters == m_again.network.stats.counters
    )
    assert m_plain.fault_injector is None
    assert m_plain.network.transport is None


def test_same_plan_same_seed_reproduces():
    """The same plan + machine seed reproduces the fault sequence and
    therefore the entire run, bit for bit."""
    m1, c1 = _lock_run(drop_plan(0.1, seed=5))
    m2, c2 = _lock_run(drop_plan(0.1, seed=5))
    assert c1 == c2
    assert m1.fault_counters() == m2.fault_counters()
    assert m1.msa_counters() == m2.msa_counters()


def test_empty_plan_arms_but_injects_nothing():
    m, _ = _lock_run(FaultPlan())
    counters = m.fault_counters()
    assert counters["msgs_dropped"] == 0
    assert counters["retransmits"] == 0
    assert counters["timeouts"] == 0
    assert m.transport is not None  # recovery layers armed


# ---------------------------------------------------------------------------
# Reliable transport behaviour
# ---------------------------------------------------------------------------
def test_duplicates_are_suppressed():
    plan = FaultPlan(
        seed=2, messages=(MessageFault(dup_prob=0.5, dup_delay=7),)
    )
    m, _ = _lock_run(plan)
    counters = m.fault_counters()
    assert counters["msgs_duplicated"] > 0
    assert counters["dup_suppressed"] > 0
    assert m.omu_totals() == 0


def test_delays_are_reordered_back():
    plan = FaultPlan(
        seed=3,
        messages=(MessageFault(delay_prob=0.4, delay_cycles=90),),
    )
    m, _ = _lock_run(plan)
    counters = m.fault_counters()
    assert counters["msgs_delayed"] > 0
    assert m.omu_totals() == 0


def test_latency_fault_perturbs_issue():
    plan = FaultPlan(seed=8, latencies=(LatencyFault(extra_max=25),))
    m, cycles = _lock_run(plan)
    _, base_cycles = _lock_run(FaultPlan(seed=8))
    assert m.fault_counters()["latency_perturbed"] > 0
    assert cycles > base_cycles


def test_flaky_abort_exercises_abort_fallback():
    """Flaky ABORT fires only on entry-array *misses* (prob=1 makes
    every acquire miss permanently), exercising the library's ABORT
    fallback paths while the OMU stays balanced."""
    plan = FaultPlan(
        seed=6,
        slices=tuple(
            SliceFault(tile=t, at=0, mode=FLAKY_ABORT, prob=1.0)
            for t in range(16)
        ),
    )
    m, _ = _lock_run(plan)
    counters = m.fault_counters()
    assert counters["flaky_aborts"] > 0
    assert m.omu_totals() == 0
    assert m.msa_coverage() == 0.0  # everything fell back to software


# ---------------------------------------------------------------------------
# Graceful degradation on a slice kill
# ---------------------------------------------------------------------------
def _build_fast_recovery(seed, plan):
    params, library = machine_params("msa-omu-2", n_cores=16, seed=seed)
    params = params.with_(faults=FAST_RECOVERY)
    return Machine(params, library=library, fault_plan=plan)


def test_killed_slice_degrades_only_home_tile():
    """Killing one slice mid-run must (a) terminate without deadlock,
    (b) degrade exactly that home tile, (c) leave other tiles' hardware
    coverage intact, and (d) lose no lock-protected increments."""
    plan = FaultPlan(seed=5, slices=(SliceFault(tile=3, at=2000, mode=KILL),))
    m = _build_fast_recovery(11, plan)
    lib = m.sync_library
    locks = [m.allocator.sync_var(home=t) for t in (1, 3, 6)]
    counters = [m.allocator.line() for _ in locks]
    bar = m.allocator.sync_var(home=5)
    n_threads, iters = 8, 10

    def body(th):
        for _ in range(iters):
            for lk, ctr in zip(locks, counters):
                yield from lib.lock(th, lk)
                value = yield from th.load(ctr)
                yield from th.store(ctr, value + 1)
                yield from lib.unlock(th, lk)
            yield from lib.barrier(th, bar, n_threads)

    for _ in range(n_threads):
        m.scheduler.spawn(body)
    m.run(max_events=20_000_000)  # raises DeadlockError on lost wakeups
    m.check_invariants()

    assert m.degraded_tiles() == {3}
    fc = m.fault_counters()
    assert fc["timeouts"] > 0
    assert fc["degraded_tiles"] == 1
    # No lost increments on any lock, including the one homed at the
    # dead tile (its orphaned episode hands over through the plane).
    for ctr in counters:
        assert m.memory.peek(ctr) == n_threads * iters
    # The surviving tiles kept servicing sync ops in hardware.
    for tile in (1, 5, 6):
        assert m.msa_slices[tile].stats.counter("ops_hw").value > 0
    # Post-kill, the degraded tile's ops complete locally in software.
    degraded_local = sum(
        u.stats.counter("degraded_local").value for u in m.sync_units
    )
    assert degraded_local > 0


def test_killed_slice_with_waiting_threads_recovers():
    """Threads already blocked on the dead slice's lock (request in the
    HWQueue when it dies) must be failed over, not stranded."""
    plan = FaultPlan(seed=1, slices=(SliceFault(tile=0, at=1500, mode=KILL),))
    m = _build_fast_recovery(23, plan)
    lock = m.allocator.sync_var(home=0)
    counter = m.allocator.line()
    n_threads, iters = 6, 8

    def body(th):
        for _ in range(iters):
            yield from th.lock(lock)
            value = yield from th.load(counter)
            yield from th.compute(120)  # long critical section: queue forms
            yield from th.store(counter, value + 1)
            yield from th.unlock(lock)

    for _ in range(n_threads):
        m.scheduler.spawn(body)
    m.run(max_events=20_000_000)
    assert m.degraded_tiles() == {0}
    assert m.memory.peek(counter) == n_threads * iters
    assert m.fault_counters()["degraded_fails"] > 0


def test_kill_before_start_degrades_on_first_touch():
    """A slice dead from cycle 0: the very first request times out and
    the tile degrades; everything runs in software thereafter."""
    plan = FaultPlan(seed=2, slices=(SliceFault(tile=2, at=0, mode=KILL),))
    m = _build_fast_recovery(29, plan)
    lock = m.allocator.sync_var(home=2)
    counter = m.allocator.line()

    def body(th):
        for _ in range(5):
            yield from th.lock(lock)
            value = yield from th.load(counter)
            yield from th.store(counter, value + 1)
            yield from th.unlock(lock)

    for _ in range(4):
        m.scheduler.spawn(body)
    m.run(max_events=20_000_000)
    assert m.degraded_tiles() == {2}
    assert m.memory.peek(counter) == 4 * 5
    assert m.msa_tile_coverage(2) in (None, 0.0)


def test_deadlock_error_reports_blocked_detail():
    """Satellite: DeadlockError carries the blocked threads and the
    message describes what each is blocked on."""
    m = build_machine("msa-omu-2", n_cores=16, seed=1)
    lock = m.allocator.sync_var()

    def greedy(th):
        yield from th.lock(lock)
        # Never unlocks.

    def starved(th):
        yield from th.compute(50)
        yield from th.lock(lock)
        yield from th.unlock(lock)

    m.scheduler.spawn(greedy, name="greedy")
    m.scheduler.spawn(starved, name="starved")
    with pytest.raises(DeadlockError) as excinfo:
        m.run()
    err = excinfo.value
    assert len(err.blocked) == 1
    assert err.blocked[0].name == "starved"
    assert "starved" in str(err)
    assert "future" in str(err)
