"""Tests for the ASCII chart rendering."""

import pytest

from repro.harness.charts import grouped_chart, hbar_chart


class TestHbarChart:
    def test_renders_all_rows(self):
        out = hbar_chart([("a", 10.0), ("bb", 20.0)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        assert lines[1].strip().startswith("a")
        assert "#" in lines[1]

    def test_max_value_gets_full_width(self):
        out = hbar_chart([("big", 100.0), ("small", 1.0)], width=40)
        big, small = out.splitlines()
        assert big.count("#") == 40
        assert small.count("#") >= 1
        assert small.count("#") < big.count("#")

    def test_log_scale_compresses_ratios(self):
        linear = hbar_chart([("a", 1000.0), ("b", 1.0)], width=40)
        log = hbar_chart([("a", 1000.0), ("b", 1.0)], width=40, log_scale=True)
        linear_b = linear.splitlines()[1].count("#")
        log_b = log.splitlines()[1].count("#")
        assert log_b > linear_b
        assert "(log scale)" in log

    def test_baseline_marker_drawn(self):
        out = hbar_chart(
            [("fast", 2.0), ("slow", 0.5)], baseline=1.0, width=40
        )
        assert "|" in out

    def test_zero_and_negative_values_safe(self):
        out = hbar_chart([("zero", 0.0), ("pos", 5.0)])
        assert "zero" in out

    def test_empty_rows(self):
        assert hbar_chart([], title="nothing") == "nothing"

    def test_value_formatting(self):
        out = hbar_chart([("big", 12345.0), ("small", 1.5)])
        assert "12,345" in out
        assert "1.50" in out


class TestGroupedChart:
    def test_groups_labeled(self):
        out = grouped_chart(
            {
                "probe1": [("a", 1.0), ("b", 2.0)],
                "probe2": [("a", 3.0)],
            },
            title="G",
        )
        assert "-- probe1" in out
        assert "-- probe2" in out
        assert out.splitlines()[0] == "G"

    def test_empty_groups(self):
        assert grouped_chart({}, title="t") == "t"


class TestExperimentIntegration:
    def test_fig5_prints_charts(self, capsys):
        from repro.harness.experiments import fig5

        fig5(cores=(4,), configs=("pthread", "msa-omu-2"), print_out=True)
        out = capsys.readouterr().out
        assert "(log scale)" in out
        assert "#" in out
