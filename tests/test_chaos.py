"""Chaos testing: random scheduler interference (suspensions, delayed
resumptions, migrations) and NoC fault plans (dropped, duplicated,
delayed accelerator messages) injected into synchronization-heavy
workloads.  Whatever the interleaving or the message losses, the
runtime must preserve mutual exclusion, barrier episode integrity, OMU
balance, and MESI safety, and every thread must terminate.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan, MessageFault, SliceFault, FLAKY_DROP
from repro.harness.configs import build_machine


def run_chaos_locks(config, n_threads, iters, interruptions, seed):
    """Lock workload with scripted suspend/resume interference.

    ``interruptions``: list of (victim, suspend_at, resume_delay,
    migrate_to_offset) tuples.
    """
    m = build_machine(config, n_cores=16, seed=seed)
    lock = m.allocator.sync_var()
    counter = m.allocator.line()
    threads = []

    def body(th):
        for _ in range(iters):
            yield from th.lock(lock)
            value = yield from th.load(counter)
            yield from th.compute(9)
            yield from th.store(counter, value + 1)
            yield from th.unlock(lock)
            yield from th.compute(20)

    for _ in range(n_threads):
        threads.append(m.scheduler.spawn(body))

    # Spare cores for migrations (threads occupy 0..n_threads-1).
    spare = list(range(n_threads, 16))
    busy_spares = set()

    def schedule_interruption(victim_idx, at, resume_delay, migrate):
        victim = threads[victim_idx % n_threads]

        def suspend():
            if victim.finished or victim.suspended:
                return
            m.scheduler.suspend(victim)
            target = None
            if migrate and spare:
                candidate = spare[victim_idx % len(spare)]
                if candidate not in busy_spares:
                    target = candidate
                    busy_spares.add(candidate)

            def resume():
                if victim.suspended:
                    m.scheduler.resume(victim, core=target)

            m.sim.schedule(resume_delay, resume)

        m.sim.schedule(at, suspend)

    for victim_idx, at, resume_delay, migrate in interruptions:
        schedule_interruption(victim_idx, at, resume_delay, migrate)

    m.run(max_events=10_000_000)
    m.check_invariants()
    assert m.memory.peek(counter) == n_threads * iters
    assert m.omu_totals() == 0


@settings(max_examples=15, deadline=None)
@given(
    config=st.sampled_from(["msa-omu-2", "msa-omu-1", "msa-inf"]),
    n_threads=st.integers(2, 6),
    iters=st.integers(2, 5),
    interruptions=st.lists(
        st.tuples(
            st.integers(0, 5),        # victim
            st.integers(50, 4000),    # suspend time
            st.integers(300, 3000),   # resume delay
            st.booleans(),            # migrate
        ),
        max_size=4,
    ),
    seed=st.integers(0, 1000),
)
def test_property_lock_chaos(config, n_threads, iters, interruptions, seed):
    run_chaos_locks(config, n_threads, iters, interruptions, seed)


@settings(max_examples=10, deadline=None)
@given(
    n_threads=st.integers(2, 6),
    episodes=st.integers(1, 4),
    interruptions=st.lists(
        st.tuples(
            st.integers(0, 5),
            st.integers(50, 3000),
            st.integers(300, 2500),
        ),
        max_size=3,
    ),
    seed=st.integers(0, 1000),
)
def test_property_barrier_chaos(n_threads, episodes, interruptions, seed):
    """Random suspensions of barrier participants: every episode still
    releases every thread exactly once (ABORT -> software fallback)."""
    m = build_machine("msa-omu-2", n_cores=16, seed=seed)
    barrier = m.allocator.sync_var()
    releases = {i: 0 for i in range(n_threads)}
    threads = []

    def make_body(i):
        def body(th):
            for _ in range(episodes):
                yield from th.compute(20 * (i + 1))
                yield from th.barrier(barrier, n_threads)
                releases[i] += 1
        return body

    for i in range(n_threads):
        threads.append(m.scheduler.spawn(make_body(i)))

    for victim_idx, at, resume_delay in interruptions:
        victim = threads[victim_idx % n_threads]

        def suspend(v=victim, delay=resume_delay):
            if v.finished or v.suspended:
                return
            m.scheduler.suspend(v)
            m.sim.schedule(
                delay, lambda: m.scheduler.resume(v) if v.suspended else None
            )

        m.sim.schedule(at, suspend)

    m.run(max_events=10_000_000)
    m.check_invariants()
    assert all(count == episodes for count in releases.values())
    assert m.omu_totals() == 0


@settings(max_examples=8, deadline=None)
@given(
    n_waiters=st.integers(1, 4),
    suspend_at=st.integers(100, 2500),
    resume_delay=st.integers(300, 2000),
    seed=st.integers(0, 1000),
)
def test_property_condvar_chaos(n_waiters, suspend_at, resume_delay, seed):
    """A condvar waiter suspended at a random moment: the broadcast
    still wakes everyone, no spurious-wakeup loop hangs, the lock's pin
    count drains to zero."""
    m = build_machine("msa-omu-2", n_cores=16, seed=seed)
    lock = m.allocator.sync_var()
    cond = m.allocator.sync_var()
    flag = m.allocator.line()
    woke = []
    threads = []

    def waiter(th):
        yield from th.lock(lock)
        while True:
            value = yield from th.load(flag)
            if value:
                break
            yield from th.cond_wait(cond, lock)
        woke.append(th.tid)
        yield from th.unlock(lock)

    def caster(th):
        yield from th.compute(4000)
        yield from th.lock(lock)
        yield from th.store(flag, 1)
        yield from th.cond_broadcast(cond)
        yield from th.unlock(lock)

    for _ in range(n_waiters):
        threads.append(m.scheduler.spawn(waiter))
    m.scheduler.spawn(caster)

    victim = threads[0]

    def suspend():
        if not victim.finished and not victim.suspended:
            m.scheduler.suspend(victim)
            m.sim.schedule(
                resume_delay,
                lambda: m.scheduler.resume(victim) if victim.suspended else None,
            )

    m.sim.schedule(suspend_at, suspend)
    m.run(max_events=10_000_000)
    m.check_invariants()
    assert sorted(woke) == list(range(n_waiters))
    home = m.memory.amap.home_of(lock)
    entry = m.msa_slice(home).entry_for(lock)
    assert entry is None or entry.pin_count == 0
    assert m.omu_totals() == 0


# ---------------------------------------------------------------------------
# NoC fault plans: dropped / duplicated / delayed accelerator messages
# ---------------------------------------------------------------------------
message_fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 1000),
    messages=st.lists(
        st.builds(
            MessageFault,
            kind_prefix=st.sampled_from(["msa", "msa.req", "msa_cpu"]),
            drop_prob=st.floats(0.0, 0.25),
            dup_prob=st.floats(0.0, 0.25),
            dup_delay=st.integers(1, 60),
            delay_prob=st.floats(0.0, 0.25),
            delay_cycles=st.integers(1, 120),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
)


@pytest.mark.chaos
@settings(max_examples=12, deadline=None)
@given(
    plan=message_fault_plans,
    n_threads=st.integers(2, 6),
    iters=st.integers(2, 5),
    seed=st.integers(0, 1000),
)
def test_property_noc_fault_locks(plan, n_threads, iters, seed):
    """Under arbitrary drop/dup/delay plans, the lock workload keeps
    mutual exclusion (the shared counter is exact), every thread
    terminates, and the OMU drains back to zero."""
    m = build_machine("msa-omu-2", n_cores=16, seed=seed, fault_plan=plan)
    lock = m.allocator.sync_var()
    counter = m.allocator.line()

    def body(th):
        for _ in range(iters):
            yield from th.lock(lock)
            value = yield from th.load(counter)
            yield from th.compute(9)
            yield from th.store(counter, value + 1)
            yield from th.unlock(lock)
            yield from th.compute(20)

    for _ in range(n_threads):
        m.scheduler.spawn(body)
    m.run(max_events=10_000_000)
    m.check_invariants()
    assert m.memory.peek(counter) == n_threads * iters
    assert m.omu_totals() == 0
    assert not m.degraded_tiles()


@pytest.mark.chaos
@settings(max_examples=10, deadline=None)
@given(
    plan=message_fault_plans,
    n_threads=st.integers(2, 6),
    episodes=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_property_noc_fault_barriers(plan, n_threads, episodes, seed):
    """Barrier episodes stay atomic under message faults: every thread
    is released exactly once per episode, in lockstep."""
    m = build_machine("msa-omu-2", n_cores=16, seed=seed, fault_plan=plan)
    barrier = m.allocator.sync_var()
    releases = {i: 0 for i in range(n_threads)}

    def make_body(i):
        def body(th):
            for episode in range(episodes):
                yield from th.compute(15 * (i + 1))
                yield from th.barrier(barrier, n_threads)
                releases[i] += 1
                # Lockstep check: nobody may be a full episode ahead.
                assert all(
                    abs(releases[j] - releases[i]) <= 1
                    for j in range(n_threads)
                )
        return body

    for i in range(n_threads):
        m.scheduler.spawn(make_body(i))
    m.run(max_events=10_000_000)
    m.check_invariants()
    assert all(count == episodes for count in releases.values())
    assert m.omu_totals() == 0
    assert not m.degraded_tiles()


def test_drop_plan_forces_retransmissions():
    """A heavy drop plan must visibly exercise the reliable transport
    (retransmits > 0) while the workload still completes correctly."""
    plan = FaultPlan(
        seed=9, messages=(MessageFault(kind_prefix="msa", drop_prob=0.15),)
    )
    m = build_machine("msa-omu-2", n_cores=16, seed=21, fault_plan=plan)
    lock = m.allocator.sync_var()
    counter = m.allocator.line()

    def body(th):
        for _ in range(12):
            yield from th.lock(lock)
            value = yield from th.load(counter)
            yield from th.store(counter, value + 1)
            yield from th.unlock(lock)

    for _ in range(8):
        m.scheduler.spawn(body)
    m.run(max_events=10_000_000)
    counters = m.fault_counters()
    assert counters["msgs_dropped"] > 0
    assert counters["retransmits"] > 0
    assert m.memory.peek(counter) == 8 * 12
    assert m.omu_totals() == 0


def test_flaky_slice_forces_unit_retries():
    """A slice silently ignoring requests (below the wire, so the
    transport cannot see it) must be recovered by the sync units'
    end-to-end retry machinery."""
    plan = FaultPlan(
        seed=4,
        slices=(
            SliceFault(tile=0, at=0, mode=FLAKY_DROP, until=None, prob=0.4),
        ),
    )
    m = build_machine("msa-omu-2", n_cores=16, seed=33, fault_plan=plan)
    lock = m.allocator.sync_var(home=0)
    counter = m.allocator.line()

    def body(th):
        for _ in range(10):
            yield from th.lock(lock)
            value = yield from th.load(counter)
            yield from th.store(counter, value + 1)
            yield from th.unlock(lock)

    for _ in range(6):
        m.scheduler.spawn(body)
    m.run(max_events=10_000_000)
    counters = m.fault_counters()
    assert counters["flaky_drops"] > 0
    assert counters["retries"] > 0
    assert not m.degraded_tiles()
    assert m.memory.peek(counter) == 6 * 10
    assert m.omu_totals() == 0
