"""Tests for :mod:`repro.resilience`: the durable job store (leases,
heartbeats, quarantine), deterministic backoff, the escalating watchdog
and its triage dump, manifest tail repair, cache checksums, and fsck."""

import json
import os
import time
import warnings

import pytest

from repro.common.errors import DeadlockError, WatchdogTimeout
from repro.harness.configs import build_machine
from repro.harness.jobs import (
    CACHE_VERSION,
    Engine,
    JobSpec,
    ResultCache,
    SweepManifest,
    entry_checksum,
    execute_spec,
    repair_manifest_tail,
)
from repro.resilience import (
    Claim,
    JobStore,
    Watchdog,
    WatchdogWarning,
    backoff_delay,
    default_store_path,
    format_triage,
    fsck,
    resilience_registry,
    triage_dump,
)

SPEC = dict(config="pthread", workload="canneal", cores=4, scale=0.1, seed=7)


def spec(**over):
    return JobSpec(**{**SPEC, **over})


@pytest.fixture(scope="module")
def small_result():
    return execute_spec(spec())


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ---------------------------------------------------------------------------
# Job store
# ---------------------------------------------------------------------------
class TestJobStore:
    def make(self, tmp_path, **kw):
        clock = FakeClock()
        kw.setdefault("lease_s", 10.0)
        kw.setdefault("quarantine_after", 2)
        return JobStore(tmp_path / "jobs.sqlite3", clock=clock, **kw), clock

    def test_enqueue_claim_done(self, tmp_path):
        store, _ = self.make(tmp_path)
        assert store.enqueue("k1", "point", b"blob") == "pending"
        claim = store.claim("w1")
        assert isinstance(claim, Claim)
        assert claim.key == "k1" and claim.attempt == 1
        assert not claim.reclaimed
        assert claim.spec_blob == b"blob"
        # Leased rows are not claimable by others.
        assert store.claim("w2") is None
        assert store.mark_done("k1", "w1")
        row = store.get("k1")
        assert row.status == "done" and row.terminal
        assert store.open_jobs() == 0

    def test_enqueue_is_idempotent(self, tmp_path):
        store, _ = self.make(tmp_path)
        store.enqueue("k1", "point")
        assert store.enqueue("k1", "point") == "pending"
        assert store.counters()["enqueued"] == 1

    def test_expired_lease_is_reclaimed(self, tmp_path):
        store, clock = self.make(tmp_path, lease_s=5.0)
        store.enqueue("k1")
        store.claim("w-dead")
        assert store.claim("w2") is None  # lease still live
        clock.advance(6.0)
        claim = store.claim("w2")
        assert claim is not None and claim.reclaimed
        assert claim.attempt == 2
        assert store.counters()["leases_expired"] == 1

    def test_heartbeat_extends_lease(self, tmp_path):
        store, clock = self.make(tmp_path, lease_s=5.0)
        store.enqueue("k1")
        store.claim("w1")
        clock.advance(4.0)
        assert store.heartbeat("k1", "w1")
        clock.advance(4.0)  # 8s total: dead without the heartbeat
        assert store.claim("w2") is None
        assert not store.heartbeat("k1", "w-other")

    def test_failure_backoff_then_quarantine(self, tmp_path):
        store, clock = self.make(tmp_path, quarantine_after=2)
        store.enqueue("k1")
        claim = store.claim("w1")
        status = store.mark_failed(
            "k1", "w1", "RuntimeError: boom", backoff_s=3.0
        )
        assert status == "pending"
        assert store.claim("w1") is None  # inside the backoff window
        clock.advance(3.5)
        claim = store.claim("w1")
        assert claim.attempt == 2
        status = store.mark_failed(
            "k1", "w1", "RuntimeError: boom", traceback_text="Traceback...",
        )
        assert status == "quarantined"
        artifact = store.quarantine_path("k1")
        assert artifact.is_file()
        assert "RuntimeError: boom" in artifact.read_text()
        assert store.open_jobs() == 0  # quarantined is terminal

    def test_requeue_resets_quarantined(self, tmp_path):
        store, clock = self.make(tmp_path, quarantine_after=1)
        store.enqueue("k1")
        store.claim("w1")
        assert store.mark_failed("k1", "w1", "err") == "quarantined"
        assert store.enqueue("k1", requeue_failed=True) == "pending"
        claim = store.claim("w1")
        assert claim.attempt == 1  # fresh retry budget
        assert store.counters()["requeued"] == 1

    def test_stale_owner_cannot_complete(self, tmp_path):
        """A hung worker whose lease expired and whose point finished
        elsewhere must not overwrite the outcome."""
        store, clock = self.make(tmp_path, lease_s=5.0)
        store.enqueue("k1")
        store.claim("w-hung")
        clock.advance(6.0)
        store.claim("w-fresh")
        store.mark_done("k1", "w-fresh")
        assert not store.mark_done("k1", "w-hung")
        assert store.mark_failed("k1", "w-hung", "late failure") == "stale"
        assert store.get("k1").status == "done"
        assert store.counters()["stale_completions"] == 2

    def test_release_owner_frees_leases_immediately(self, tmp_path):
        store, _ = self.make(tmp_path)
        store.enqueue("k1")
        store.enqueue("k2")
        store.claim("w1", keys=("k1",))
        store.claim("w1", keys=("k2",))
        assert store.release_owner("w1") == 2
        assert store.claim("w2") is not None  # no lease wait needed

    def test_corrupt_store_is_rebuilt(self, tmp_path):
        path = tmp_path / "jobs.sqlite3"
        path.write_bytes(b"definitely not a sqlite database" * 10)
        store = JobStore(path)
        store.enqueue("k1")
        assert store.get("k1").status == "pending"

    def test_counters_exported_to_registry(self, tmp_path):
        store, _ = self.make(tmp_path)
        store.enqueue("k1")
        store.claim("w1")
        store.mark_done("k1", "w1")
        reg = resilience_registry(store.counters())
        names = {m.name for m in reg.metrics()}
        assert "harness.enqueued" in names
        assert "harness.leases_granted" in names


# ---------------------------------------------------------------------------
# Deterministic backoff
# ---------------------------------------------------------------------------
class TestBackoff:
    def test_pure_function_of_inputs(self):
        assert backoff_delay("k", 4, seed=9) == backoff_delay("k", 4, seed=9)
        assert backoff_delay("k", 4, seed=9) != backoff_delay("k", 4, seed=10)
        assert backoff_delay("k", 4) != backoff_delay("other", 4)

    def test_exponential_growth_with_cap(self):
        base, cap = 0.1, 1.0
        raw = [
            backoff_delay("k", attempt, base=base, cap=cap)
            for attempt in range(1, 8)
        ]
        # Jitter keeps each delay within [raw/2, raw) of the uncapped
        # exponential, and the cap bounds everything.
        for attempt, delay in enumerate(raw, start=1):
            ceiling = min(cap, base * 2 ** (attempt - 1))
            assert ceiling / 2 <= delay <= ceiling
        assert backoff_delay("k", 0) == 0.0


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------
def _watched_machine(n_threads=4, iters=40):
    m = build_machine("msa-omu-2", n_cores=16, seed=3)
    lock = m.allocator.sync_var()
    counter = m.allocator.line()

    def body(th):
        for _ in range(iters):
            yield from th.lock(lock)
            value = yield from th.load(counter)
            yield from th.store(counter, value + 1)
            yield from th.unlock(lock)

    for _ in range(n_threads):
        m.scheduler.spawn(body)
    return m


class TestWatchdog:
    def test_within_budget_matches_unwatched_run(self):
        plain = _watched_machine()
        cycles_plain = plain.run()
        watched = _watched_machine()
        wd = Watchdog(max_events=10_000_000, chunk_events=512)
        assert wd.run(watched) == cycles_plain
        assert watched.sim.events_processed == plain.sim.events_processed
        assert wd.stage == "ok"

    def test_event_budget_escalation_ladder(self):
        reference = _watched_machine()
        reference.run()
        budget = reference.sim.events_processed // 2
        m = _watched_machine()
        stages = []
        wd = Watchdog(
            max_events=budget,
            chunk_events=max(1, budget // 50),
            on_stage=lambda stage, reason: stages.append(stage),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", WatchdogWarning)
            with pytest.raises(WatchdogTimeout) as excinfo:
                wd.run(m)
        assert stages == ["warned", "snapshotted", "aborted"]
        assert wd.snapshot is not None
        err = excinfo.value
        assert err.triage["pending_events"] > 0
        assert f"max_events={budget}" in str(err)

    def test_warn_stage_emits_warning(self):
        reference = _watched_machine()
        reference.run()
        m = _watched_machine()
        wd = Watchdog(
            max_events=reference.sim.events_processed // 2,
            chunk_events=64,
        )
        with pytest.warns(WatchdogWarning):
            with pytest.raises(WatchdogTimeout):
                wd.run(m)

    def test_wall_clock_budget_with_fake_clock(self):
        clock = FakeClock()
        m = _watched_machine()

        original = m.sim.run_chunk

        def slow_chunk(n):
            clock.advance(2.0)
            return original(n)

        m.sim.run_chunk = slow_chunk
        wd = Watchdog(wall_clock_s=5.0, chunk_events=64, clock=clock)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", WatchdogWarning)
            with pytest.raises(WatchdogTimeout) as excinfo:
                wd.run(m)
        assert "wall clock" in str(excinfo.value)

    def test_triage_dump_structure(self):
        m = _watched_machine()
        m.run()
        triage = triage_dump(m)
        assert triage["cycle"] == m.sim.now
        assert triage["threads"]["total"] == 4
        assert triage["threads"]["finished"] == 4
        assert triage["noc"]["in_flight"] == 0
        assert json.dumps(triage)  # plain data, JSON-safe
        assert "cycle" in format_triage(triage)


class TestDeadlockTriage:
    def test_deadlock_error_carries_triage_dump(self):
        """Satellite: DeadlockError is enriched with the watchdog's
        triage dump (thread sets, NoC in-flight, MSA occupancy)."""
        m = build_machine("msa-omu-2", n_cores=16, seed=1)
        lock = m.allocator.sync_var()

        def greedy(th):
            yield from th.lock(lock)  # never unlocks

        def starved(th):
            yield from th.compute(50)
            yield from th.lock(lock)

        m.scheduler.spawn(greedy, name="greedy")
        m.scheduler.spawn(starved, name="starved")
        with pytest.raises(DeadlockError) as excinfo:
            m.run()
        err = excinfo.value
        assert err.triage["threads"]["total"] == 2
        assert err.triage["threads"]["finished"] == 1
        stuck = err.triage["threads"]["runnable"]
        assert [t["name"] for t in stuck] == ["starved"]
        assert stuck[0]["blocked"] == "future"
        # The MSA still holds the lock entry the victim waits on.
        assert any(
            entry["waiters"] >= 1
            for sl in err.triage["msa"]
            for entry in sl["occupancy"]
        )
        assert "[triage:" in str(err)


# ---------------------------------------------------------------------------
# Cache checksums
# ---------------------------------------------------------------------------
class TestCacheChecksums:
    def test_entry_carries_version_and_checksum(self, tmp_path, small_result):
        cache = ResultCache(tmp_path)
        key = spec().key()
        cache.put(key, spec(), small_result)
        data = json.loads(cache.path(key).read_text())
        assert data["v"] == CACHE_VERSION
        assert data["sha256"] == entry_checksum(data)
        assert cache.get(key) == small_result

    def test_parseable_but_tampered_entry_is_a_miss(
        self, tmp_path, small_result
    ):
        """A byte flip that keeps the JSON valid (e.g. a mutated cycle
        count) must still be rejected -- this is exactly the corruption
        a checksum exists for."""
        cache = ResultCache(tmp_path)
        key = spec().key()
        cache.put(key, spec(), small_result)
        path = cache.path(key)
        data = json.loads(path.read_text())
        data["result"]["cycles"] += 1  # silent wrong-result corruption
        path.write_text(json.dumps(data, sort_keys=True))
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert list(cache.entries()) == []

    def test_entry_under_wrong_key_is_a_miss(self, tmp_path, small_result):
        cache = ResultCache(tmp_path)
        key = spec().key()
        other = spec(seed=8).key()
        cache.put(key, spec(), small_result)
        cache.path(other).parent.mkdir(parents=True, exist_ok=True)
        cache.path(other).write_text(cache.path(key).read_text())
        assert cache.get(other) is None
        assert cache.get(key) is not None


# ---------------------------------------------------------------------------
# Manifest tail repair
# ---------------------------------------------------------------------------
class TestManifestRepair:
    def _manifest_with_tail(self, tmp_path, tail):
        path = tmp_path / "manifest.jsonl"
        records = [
            {"key": "k1", "spec": "a/p@4", "status": "done",
             "attempts": 1, "error": None},
            {"key": "k2", "spec": "b/p@4", "status": "failed",
             "attempts": 2, "error": "boom"},
        ]
        body = "".join(json.dumps(r) + "\n" for r in records)
        path.write_text(body + tail)
        return path

    def test_truncated_tail_is_repaired_in_place(self, tmp_path):
        """Satellite: resume tolerates the torn trailing line a
        kill-mid-append leaves, repairs the file, and keeps every
        complete record."""
        path = self._manifest_with_tail(
            tmp_path, '{"key": "k3", "spec": "c/p@4", "sta'
        )
        with pytest.warns(RuntimeWarning, match="torn"):
            manifest = SweepManifest(path)
        assert manifest.status("k1") == "done"
        assert manifest.status("k2") == "failed"
        assert manifest.status("k3") is None
        # Repaired in place: a re-load is clean (no warning).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reloaded = SweepManifest(path)
        assert reloaded.counts() == {"done": 1, "failed": 1}

    def test_repair_is_a_noop_on_clean_manifests(self, tmp_path):
        path = self._manifest_with_tail(tmp_path, "")
        before = path.read_text()
        assert repair_manifest_tail(path) == 0
        assert path.read_text() == before

    def test_legacy_whole_json_manifest_still_loads(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({
            "version": 2,
            "counts": {"done": 1},
            "points": {"k1": {"spec": "a/p@4", "status": "done",
                              "attempts": 1, "error": None}},
        }))
        manifest = SweepManifest(path)
        assert manifest.status("k1") == "done"
        manifest.save()  # upgrades to JSONL
        assert SweepManifest(path).status("k1") == "done"


# ---------------------------------------------------------------------------
# fsck
# ---------------------------------------------------------------------------
class TestFsck:
    def _cache_with_entries(self, tmp_path, small_result, n=3):
        cache = ResultCache(tmp_path / "cache")
        keys = []
        for seed in range(n):
            s = spec(seed=100 + seed)
            key = s.key()
            cache.put(key, s, small_result)
            keys.append(key)
        return cache, keys

    def test_clean_cache_is_healthy(self, tmp_path, small_result):
        cache, keys = self._cache_with_entries(tmp_path, small_result)
        report = fsck(cache.root)
        assert report.ok
        assert report.scanned_entries == 3
        assert report.healthy_entries == 3
        assert report.issues == []

    def test_finds_and_evicts_each_corruption_kind(
        self, tmp_path, small_result
    ):
        cache, keys = self._cache_with_entries(tmp_path, small_result, n=4)
        # torn JSON
        cache.path(keys[0]).write_text('{"key": "' + keys[0])
        # checksum mismatch (parseable)
        data = json.loads(cache.path(keys[1]).read_text())
        data["result"]["cycles"] += 7
        cache.path(keys[1]).write_text(json.dumps(data, sort_keys=True))
        # schema drift (no checksum/version at all)
        cache.path(keys[2]).write_text(json.dumps({"result": {}}))
        # orphan tmp from an interrupted atomic write
        orphan = cache.path(keys[3]).parent / "leftover.tmp"
        orphan.write_text("partial")

        report = fsck(cache.root, repair=True)
        kinds = sorted(i.kind for i in report.issues)
        assert kinds == [
            "checksum-mismatch", "orphan-tmp", "schema-drift", "torn-json",
        ]
        assert report.ok  # everything repaired
        assert not orphan.exists()
        for key in keys[:3]:
            assert not cache.path(key).exists()  # evicted = miss
        assert cache.path(keys[3]).exists()  # healthy entry untouched
        # The cache is clean now.
        assert fsck(cache.root).issues == []

    def test_no_repair_reports_without_touching(self, tmp_path, small_result):
        cache, keys = self._cache_with_entries(tmp_path, small_result, n=1)
        cache.path(keys[0]).write_text("{torn")
        report = fsck(cache.root, repair=False)
        assert [i.kind for i in report.issues] == ["torn-json"]
        assert not report.ok
        assert cache.path(keys[0]).exists()

    def test_fsck_repairs_manifest_and_expired_leases(
        self, tmp_path, small_result
    ):
        cache, _ = self._cache_with_entries(tmp_path, small_result, n=1)
        manifest = tmp_path / "manifest.jsonl"
        manifest.write_text(
            json.dumps({"key": "k1", "status": "done", "spec": "a",
                        "attempts": 1, "error": None}) + "\n" + '{"torn'
        )
        store = JobStore(default_store_path(cache.root), lease_s=0.01)
        store.enqueue("k1")
        store.claim("w-dead")
        store.close()
        time.sleep(0.05)
        report = fsck(cache.root, manifest=manifest, repair=True)
        kinds = sorted(i.kind for i in report.issues)
        assert kinds == ["expired-lease", "manifest-torn-tail"]
        assert report.ok
        store = JobStore(default_store_path(cache.root))
        assert store.get("k1").status == "pending"
        store.close()

    def test_fsck_counters_shape(self, tmp_path, small_result):
        cache, keys = self._cache_with_entries(tmp_path, small_result, n=1)
        counters = fsck(cache.root).counters()
        assert counters["fsck_scanned"] == 1
        assert counters["fsck_healthy"] == 1
        assert counters["fsck_torn-json"] == 0
