"""Tests for the zero-latency ideal synchronization oracle."""

import pytest

from repro.common.errors import ProtocolError
from repro.harness.configs import build_machine
from tests.conftest import run_threads


class TestIdealLocks:
    def test_lock_zero_latency_when_free(self):
        m = build_machine("ideal", n_cores=16)
        addr = m.allocator.sync_var()
        spans = []

        def body(th):
            t0 = th.sim.now
            yield from th.lock(addr)
            spans.append(th.sim.now - t0)
            yield from th.unlock(addr)

        run_threads(m, [body])
        assert spans == [0]

    def test_handoff_same_cycle(self):
        m = build_machine("ideal", n_cores=16)
        addr = m.allocator.sync_var()
        events = []

        def holder(th):
            yield from th.lock(addr)
            yield from th.compute(500)
            events.append(("release", th.sim.now))
            yield from th.unlock(addr)

        def waiter(th):
            yield from th.compute(100)
            yield from th.lock(addr)
            events.append(("acquired", th.sim.now))
            yield from th.unlock(addr)

        run_threads(m, [holder, waiter])
        released = dict(events)["release"]
        acquired = dict(events)["acquired"]
        assert acquired == released

    def test_mutual_exclusion_still_enforced(self):
        m = build_machine("ideal", n_cores=16)
        addr = m.allocator.sync_var()
        in_cs = [0]
        max_cs = [0]

        def body(th):
            for _ in range(6):
                yield from th.lock(addr)
                in_cs[0] += 1
                max_cs[0] = max(max_cs[0], in_cs[0])
                yield from th.compute(10)
                in_cs[0] -= 1
                yield from th.unlock(addr)

        run_threads(m, [body] * 8)
        assert max_cs[0] == 1

    def test_unlock_of_free_lock_raises(self):
        m = build_machine("ideal", n_cores=16)
        addr = m.allocator.sync_var()

        def body(th):
            yield from th.unlock(addr)

        m.scheduler.spawn(body)
        with pytest.raises(ProtocolError):
            m.run()


class TestIdealBarriersAndCondvars:
    def test_barrier_releases_all_same_cycle(self):
        m = build_machine("ideal", n_cores=16)
        addr = m.allocator.sync_var()
        exits = []

        def make_body(i):
            def body(th):
                yield from th.compute(100 * i)
                yield from th.barrier(addr, 6)
                exits.append(th.sim.now)
            return body

        run_threads(m, [make_body(i) for i in range(6)])
        assert len(set(exits)) == 1  # the paper's burstiness effect

    def test_condvar_signal_instant(self):
        m = build_machine("ideal", n_cores=16)
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        events = []

        def waiter(th):
            yield from th.lock(lock)
            yield from th.cond_wait(cond, lock)
            events.append(("woke", th.sim.now))
            yield from th.unlock(lock)

        def signaler(th):
            yield from th.compute(700)
            yield from th.lock(lock)
            events.append(("signal", th.sim.now))
            yield from th.cond_signal(cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter, signaler])
        e = dict(events)
        # Waiter wakes when the signaler *unlocks* (it must re-acquire),
        # all at the signaler's unlock cycle with zero added latency.
        assert e["woke"] >= e["signal"]
        assert e["woke"] - e["signal"] <= m.params.core.sync_fence_latency * 2

    def test_broadcast_wakes_all(self):
        m = build_machine("ideal", n_cores=16)
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        woke = []

        def waiter(th):
            yield from th.lock(lock)
            while True:
                v = yield from th.load(flag)
                if v:
                    break
                yield from th.cond_wait(cond, lock)
            woke.append(th.tid)
            yield from th.unlock(lock)

        def caster(th):
            yield from th.compute(1500)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from th.cond_broadcast(cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter] * 5 + [caster])
        assert sorted(woke) == [0, 1, 2, 3, 4]

    def test_ideal_never_slower_than_msa(self):
        from repro.harness.runner import run_workload
        from repro.workloads.kernels import KERNELS

        for app in ("streamcluster", "radiosity"):
            ideal = run_workload(
                build_machine("ideal", n_cores=16),
                KERNELS[app](16, 0.3),
            )
            msa = run_workload(
                build_machine("msa-omu-2", n_cores=16),
                KERNELS[app](16, 0.3),
            )
            assert ideal.cycles <= msa.cycles
