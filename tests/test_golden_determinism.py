"""Golden determinism suite: exact cycle counts and counters, pinned.

Unlike :mod:`tests.test_regression` (which guards *relative* invariants
so legitimate timing-model changes survive), this suite pins the exact
final cycle count, event count, and every NoC/MSA/sync-unit counter for
each of five representative configurations on two small workloads.

Its purpose is to make hot-path optimization safe: any change to the
event kernel, NoC, message, or stats layers that perturbs simulated
behaviour -- even a reordering of same-cycle events -- fails here
loudly.  The determinism contract these numbers encode is documented in
docs/PERF.md.

If a PR *intends* to change the timing model (new latency parameter,
protocol change), print a fresh table with::

    PYTHONPATH=src python -m pytest tests/test_golden_determinism.py \
        -k regeneration -s

paste it over ``GOLDEN``, and review the diff like any other
golden-file update.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.configs import build_machine
from repro.harness.runner import run_workload
from repro.workloads.kernels import KERNELS

CONFIGS = ("pthread", "mcs-tour", "msa0", "msa-omu-2", "ideal")

#: Both simulation kernels are pinned against the SAME golden table --
#: the sharded calendar must be indistinguishable from the legacy heap
#: in every simulated observable (the bit-identical contract of
#: repro.sim.shard).
MODES = ("legacy", "sharded")

# Workload name -> (kernel, cores, scale).
WORKLOADS = {
    "streamcluster": ("streamcluster", 16, 0.25),
    "fluidanimate": ("fluidanimate", 16, 0.3),
}


def snapshot(config: str, workload: str, sim_mode: str = None) -> dict:
    """One run's complete observable outcome, as a plain dict."""
    kernel, cores, scale = WORKLOADS[workload]
    machine = build_machine(config, n_cores=cores, seed=2015, sim_mode=sim_mode)
    result = run_workload(machine, KERNELS[kernel](cores, scale))
    latency = machine.network.stats.histogram("latency")
    return {
        "cycles": result.cycles,
        "events": machine.sim.events_processed,
        "noc": dict(sorted(result.noc_counters.items())),
        "msa": dict(sorted(result.msa_counters.items())),
        "sync": dict(sorted(result.sync_unit_counters.items())),
        "latency_count": latency.count,
        "latency_total": latency.total,
        "latency_p99": latency.percentile(99),
    }


GOLDEN = {
    "streamcluster": {
        "pthread": {
            "cycles": 28195,
            "events": 6180,
            "noc": {
                "link_stall_cycles": 280,
                "messages_delivered": 1314,
                "messages_sent": 1314,
                "sent.coh": 657,
                "sent.coh_l1": 657,
            },
            "msa": {},
            "sync": {},
            "latency_count": 1314,
            "latency_total": 12880,
            "latency_p99": 21,
        },
        "mcs-tour": {
            "cycles": 13378,
            "events": 8955,
            "noc": {
                "link_stall_cycles": 69,
                "messages_delivered": 1572,
                "messages_sent": 1572,
                "sent.coh": 786,
                "sent.coh_l1": 786,
            },
            "msa": {},
            "sync": {},
            "latency_count": 1572,
            "latency_total": 13791,
            "latency_p99": 19,
        },
        "msa0": {
            "cycles": 28367,
            "events": 6484,
            "noc": {
                "link_stall_cycles": 293,
                "messages_delivered": 1334,
                "messages_sent": 1334,
                "sent.coh": 667,
                "sent.coh_l1": 667,
            },
            "msa": {},
            "sync": {
                "always_fail": 204,
                "issued.barrier": 96,
                "issued.finish": 96,
                "issued.lock": 6,
                "issued.unlock": 6,
            },
            "latency_count": 1334,
            "latency_total": 13147,
            "latency_p99": 20,
        },
        "msa-omu-2": {
            "cycles": 9151,
            "events": 1576,
            "noc": {
                "link_stall_cycles": 425,
                "messages_delivered": 290,
                "messages_sent": 290,
                "sent.coh": 37,
                "sent.coh_l1": 37,
                "sent.msa": 108,
                "sent.msa_cpu": 108,
            },
            "msa": {
                "barrier_releases": 6,
                "entries_allocated": 7,
                "entries_freed": 6,
                "lock_grants": 6,
                "ops_hw": 108,
                "req.barrier": 96,
                "req.lock": 6,
                "req.unlock": 6,
            },
            "sync": {
                "issued.barrier": 96,
                "issued.lock": 6,
                "issued.unlock": 6,
                "silent_unlock_hits": 6,
            },
            "latency_count": 290,
            "latency_total": 2959,
            "latency_p99": 29,
        },
        "ideal": {
            "cycles": 8922,
            "events": 534,
            "noc": {
                "messages_delivered": 74,
                "messages_sent": 74,
                "sent.coh": 37,
                "sent.coh_l1": 37,
            },
            "msa": {},
            "sync": {
                "issued.barrier": 96,
                "issued.lock": 6,
                "issued.unlock": 6,
            },
            "latency_count": 74,
            "latency_total": 506,
            "latency_p99": 13,
        },
    },
    "fluidanimate": {
        "pthread": {
            "cycles": 25928,
            "events": 15244,
            "noc": {
                "link_stall_cycles": 152,
                "messages_delivered": 1274,
                "messages_sent": 1274,
                "sent.coh": 637,
                "sent.coh_l1": 637,
            },
            "msa": {},
            "sync": {},
            "latency_count": 1274,
            "latency_total": 11212,
            "latency_p99": 19,
        },
        "mcs-tour": {
            "cycles": 21574,
            "events": 20405,
            "noc": {
                "link_stall_cycles": 59,
                "messages_delivered": 1504,
                "messages_sent": 1504,
                "sent.coh": 752,
                "sent.coh_l1": 752,
            },
            "msa": {},
            "sync": {},
            "latency_count": 1504,
            "latency_total": 12363,
            "latency_p99": 19,
        },
        "msa0": {
            "cycles": 26432,
            "events": 17932,
            "noc": {
                "link_stall_cycles": 151,
                "messages_delivered": 1274,
                "messages_sent": 1274,
                "sent.coh": 637,
                "sent.coh_l1": 637,
            },
            "msa": {},
            "sync": {
                "always_fail": 2688,
                "issued.barrier": 32,
                "issued.finish": 32,
                "issued.lock": 1312,
                "issued.unlock": 1312,
            },
            "latency_count": 1274,
            "latency_total": 11211,
            "latency_p99": 19,
        },
        "msa-omu-2": {
            "cycles": 22969,
            "events": 34069,
            "noc": {
                "link_stall_cycles": 203,
                "messages_delivered": 6235,
                "messages_sent": 6235,
                "sent.coh": 418,
                "sent.coh_l1": 418,
                "sent.msa": 2837,
                "sent.msa_cpu": 2562,
            },
            "msa": {
                "alloc_deferred": 183,
                "alloc_full": 76,
                "barrier_releases": 1,
                "entries_allocated": 751,
                "entries_evicted": 719,
                "entries_freed": 1,
                "lock_grants": 924,
                "omu_decrements": 145,
                "omu_increments": 145,
                "omu_steered_sw": 69,
                "ops_hw": 2382,
                "ops_sw": 274,
                "reclaims_completed": 137,
                "reclaims_started": 158,
                "req.barrier": 32,
                "req.lock": 1053,
                "req.unlock": 1312,
                "revokes_retaken": 21,
                "revokes_sent": 165,
                "silent_acquires": 259,
            },
            "sync": {
                "hwsync_revoked": 165,
                "issued.barrier": 32,
                "issued.finish": 16,
                "issued.lock": 1312,
                "issued.unlock": 1312,
                "silent_lock_hits": 263,
                "silent_lock_lost_race": 4,
                "silent_unlock_hits": 1183,
            },
            "latency_count": 6235,
            "latency_total": 53160,
            "latency_p99": 19,
        },
        "ideal": {
            "cycles": 15895,
            "events": 6896,
            "noc": {
                "link_stall_cycles": 24,
                "messages_delivered": 512,
                "messages_sent": 512,
                "sent.coh": 256,
                "sent.coh_l1": 256,
            },
            "msa": {},
            "sync": {
                "issued.barrier": 32,
                "issued.lock": 1312,
                "issued.unlock": 1312,
            },
            "latency_count": 512,
            "latency_total": 4088,
            "latency_p99": 16,
        },
    },
}


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("config", CONFIGS)
def test_golden_run_is_bit_identical(config, workload, mode):
    got = snapshot(config, workload, sim_mode=mode)
    want = GOLDEN[workload][config]
    assert got == want, (
        f"{config}/{workload} [{mode} kernel] diverged from the golden "
        f"run:\n"
        f"got:  {json.dumps(got, sort_keys=True)}\n"
        f"want: {json.dumps(want, sort_keys=True)}\n"
        "If this PR intentionally changes the timing model, regenerate "
        "the table (see module docstring); a hot-path optimization -- "
        "including anything in the sharded kernel -- must never trip "
        "this, and both kernel modes must match the same table."
    )


def test_golden_table_regeneration_helper():
    """Not a check -- run with ``-k regeneration -s`` to print a fresh
    golden table for pasting into this file after an intentional
    timing-model change."""
    fresh = {
        wl: {cfg: snapshot(cfg, wl) for cfg in CONFIGS}
        for wl in sorted(WORKLOADS)
    }
    print("\nGOLDEN =", json.dumps(fresh, indent=4))
    assert set(fresh) == set(GOLDEN)
