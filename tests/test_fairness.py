"""Fairness tests: the NBTC round-robin register (paper section 4.1)
exists "to ensure fairness" -- quantify it against the software locks.
"""

import pytest

from repro.harness.configs import build_machine
from tests.conftest import run_threads


def grant_distribution(config, n_threads=8, duration_grants=64):
    """All threads hammer one lock until ``duration_grants`` total
    acquisitions; returns per-thread acquisition counts."""
    m = build_machine(config, n_cores=16)
    lock = m.allocator.sync_var()
    counts = {i: 0 for i in range(n_threads)}
    total = [0]

    def make_body(i):
        def body(th):
            while total[0] < duration_grants:
                yield from th.lock(lock)
                if total[0] < duration_grants:
                    counts[i] += 1
                    total[0] += 1
                yield from th.unlock(lock)
        return body

    run_threads(m, [make_body(i) for i in range(n_threads)])
    return counts


class TestNBTCFairness:
    def test_msa_grants_spread_evenly(self):
        counts = grant_distribution("msa-omu-2")
        share = sorted(counts.values())
        # Round-robin: max/min skew bounded tightly.
        assert share[0] > 0
        assert share[-1] <= share[0] + 3

    def test_msa_fairer_than_spinlock(self):
        """TTAS spinlocks are grab-what-you-can: their skew under
        saturation is at least as bad as the MSA's."""
        msa = grant_distribution("msa-omu-2")
        spin = grant_distribution("spinlock")

        def skew(counts):
            values = sorted(counts.values())
            return (values[-1] - values[0]) / max(1, sum(values) / len(values))

        assert skew(msa) <= skew(spin) + 0.01

    def test_every_thread_makes_progress_under_saturation(self):
        for config in ("msa-omu-2", "mcs-tour", "pthread"):
            counts = grant_distribution(config, duration_grants=48)
            assert all(c > 0 for c in counts.values()), config

    def test_nbtc_order_is_round_robin_from_release_position(self):
        """With all cores queued, grants proceed in core order starting
        after the previous grantee (the NBTC update rule)."""
        m = build_machine("msa-omu-2", n_cores=16)
        lock = m.allocator.sync_var()
        order = []

        def holder(th):
            yield from th.lock(lock)
            yield from th.compute(2000)  # everyone queues behind us
            order.append(th.core)
            yield from th.unlock(lock)

        def make_waiter():
            def body(th):
                yield from th.compute(200)
                yield from th.lock(lock)
                order.append(th.core)
                yield from th.unlock(lock)
            return body

        m.scheduler.spawn(holder, core=0)
        for core in (5, 2, 9, 7):
            m.scheduler.spawn(make_waiter(), core=core)
        m.run(max_events=4_000_000)
        m.check_invariants()
        # Holder (core 0) first; NBTC starts after 0, so waiters are
        # granted in ascending core order: 2, 5, 7, 9.
        assert order == [0, 2, 5, 7, 9]
