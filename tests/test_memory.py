"""Unit and property tests for the coherent memory hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import MachineParams
from repro.common.types import CacheState
from repro.machine import Machine
from repro.mem.address import AddressAllocator, AddressMap


def make_machine(n_cores=4, **kwargs):
    return Machine(MachineParams(n_cores=n_cores, **kwargs), library="pthread")


class TestAddressMap:
    def test_line_arithmetic(self):
        amap = AddressMap(16, line_size=64)
        assert amap.line_of(0) == 0
        assert amap.line_of(63) == 0
        assert amap.line_of(64) == 1
        assert amap.line_base(130) == 128

    def test_home_interleaving(self):
        amap = AddressMap(16, line_size=64)
        homes = [amap.home_of(line * 64) for line in range(32)]
        assert homes == list(range(16)) * 2

    def test_addr_with_home_round_trips(self):
        amap = AddressMap(16)
        for home in range(16):
            for index in (0, 1, 7):
                addr = amap.addr_with_home(home, index)
                assert amap.home_of(addr) == home

    def test_allocator_sync_vars_distinct_lines(self):
        amap = AddressMap(16)
        alloc = AddressAllocator(amap)
        addrs = [alloc.sync_var() for _ in range(100)]
        lines = {amap.line_of(a) for a in addrs}
        assert len(lines) == 100

    def test_allocator_homed_sync_vars(self):
        amap = AddressMap(16)
        alloc = AddressAllocator(amap)
        for home in (0, 7, 15):
            for _ in range(3):
                assert amap.home_of(alloc.sync_var(home=home)) == home

    def test_allocator_never_reuses(self):
        amap = AddressMap(4)
        alloc = AddressAllocator(amap)
        seen = set()
        for _ in range(50):
            a = alloc.line()
            assert a not in seen
            seen.add(a)
        for home in range(4):
            for _ in range(10):
                a = alloc.sync_var(home=home)
                assert a not in seen
                seen.add(a)


class TestBasicAccess:
    def test_load_of_untouched_address_is_zero(self):
        m = make_machine()
        got = []
        m.memory_system(0).load(1 << 20).add_callback(got.append)
        m.sim.run()
        assert got == [0]

    def test_store_then_load_same_core(self):
        m = make_machine()
        mem = m.memory_system(0)
        got = []

        def body(th):
            yield from th.store(4096, 77)
            value = yield from th.load(4096)
            got.append(value)

        m.scheduler.spawn(body)
        m.run()
        assert got == [77]

    def test_store_visible_to_other_core(self):
        m = make_machine()
        got = []

        def writer(th):
            yield from th.store(8192, 5)

        def reader(th):
            yield from th.compute(500)
            value = yield from th.load(8192)
            got.append(value)

        m.scheduler.spawn(writer, core=0)
        m.scheduler.spawn(reader, core=1)
        m.run()
        assert got == [5]

    def test_rmw_returns_old_value(self):
        m = make_machine()
        got = []

        def body(th):
            old0 = yield from th.fetch_add(4096, 10)
            old1 = yield from th.fetch_add(4096, 1)
            got.extend([old0, old1])

        m.scheduler.spawn(body)
        m.run()
        assert got == [0, 10]

    def test_hit_faster_than_miss(self):
        m = make_machine()
        times = []

        def body(th):
            t0 = th.sim.now
            yield from th.load(1 << 22)
            t1 = th.sim.now
            yield from th.load(1 << 22)
            t2 = th.sim.now
            times.extend([t1 - t0, t2 - t1])

        m.scheduler.spawn(body)
        m.run()
        miss, hit = times
        assert hit < miss
        assert hit == m.params.l1.hit_latency


class TestMESIProtocol:
    def _line_state(self, m, core, addr):
        return m.memory.l1s[core].state_of(addr >> 6)

    def test_first_reader_gets_exclusive(self):
        m = make_machine()
        addr = 1 << 22

        def body(th):
            yield from th.load(addr)

        m.scheduler.spawn(body, core=0)
        m.run()
        assert self._line_state(m, 0, addr) is CacheState.EXCLUSIVE

    def test_second_reader_downgrades_to_shared(self):
        m = make_machine()
        addr = 1 << 22

        def reader(th):
            yield from th.load(addr)

        m.scheduler.spawn(reader, core=0)
        m.scheduler.spawn(
            lambda th: (yield from th.compute(300)) or (yield from th.load(addr)),
            core=1,
        )
        m.run()
        assert self._line_state(m, 0, addr) is CacheState.SHARED
        assert self._line_state(m, 1, addr) is CacheState.SHARED

    def test_writer_invalidates_readers(self):
        m = make_machine()
        addr = 1 << 22
        done = []

        def reader(th):
            yield from th.load(addr)

        def writer(th):
            yield from th.compute(400)
            yield from th.store(addr, 9)
            done.append(th.sim.now)

        m.scheduler.spawn(reader, core=0)
        m.scheduler.spawn(reader, core=1)
        m.scheduler.spawn(writer, core=2)
        m.run()
        assert self._line_state(m, 0, addr) is CacheState.INVALID
        assert self._line_state(m, 1, addr) is CacheState.INVALID
        assert self._line_state(m, 2, addr) is CacheState.MODIFIED

    def test_store_upgrades_exclusive_to_modified_silently(self):
        m = make_machine()
        addr = 1 << 22
        counts = {}

        def body(th):
            yield from th.load(addr)
            counts["after_load"] = m.network.stats.counter("messages_sent").value
            yield from th.store(addr, 1)
            counts["after_store"] = m.network.stats.counter("messages_sent").value

        m.scheduler.spawn(body, core=0)
        m.run()
        assert self._line_state(m, 0, addr) is CacheState.MODIFIED
        assert counts["after_store"] == counts["after_load"]

    def test_concurrent_rmw_serialize(self):
        m = make_machine()
        addr = 1 << 22
        olds = []

        def body(th):
            old = yield from th.test_and_set(addr)
            olds.append(old)

        for core in range(4):
            m.scheduler.spawn(body, core=core)
        m.run()
        m.check_invariants()
        # Exactly one winner saw 0; the rest saw 1.
        assert sorted(olds) == [0, 1, 1, 1]

    def test_invariants_after_heavy_sharing(self):
        m = make_machine()
        addr = 1 << 22

        def body(th):
            for i in range(20):
                yield from th.fetch_add(addr, 1)
                yield from th.load(addr + 64)
                yield from th.compute(7)

        for core in range(4):
            m.scheduler.spawn(body, core=core)
        m.run()
        m.check_invariants()
        assert m.memory.peek(addr) == 80


class TestEviction:
    def test_capacity_eviction_writes_back(self):
        m = make_machine()
        # Fill one set past associativity with modified lines.
        amap = m.memory.amap
        n_sets = m.params.l1.n_sets
        assoc = m.params.l1.associativity
        base = 1 << 22
        addrs = [base + i * n_sets * 64 for i in range(assoc + 2)]

        def body(th):
            for a in addrs:
                yield from th.store(a, 1)
            # The first address was evicted; reading it again must still
            # see the written value (writeback correctness).
            value = yield from th.load(addrs[0])
            assert value == 1

        m.scheduler.spawn(body, core=0)
        m.run()
        m.check_invariants()
        assert m.memory.l1s[0].stats.counter("evictions").value >= 2

    def test_evicted_line_readable_by_other_core(self):
        m = make_machine()
        n_sets = m.params.l1.n_sets
        assoc = m.params.l1.associativity
        base = 1 << 22
        addrs = [base + i * n_sets * 64 for i in range(assoc + 1)]
        got = []

        def writer(th):
            for a in addrs:
                yield from th.store(a, 42)

        def reader(th):
            yield from th.compute(3000)
            value = yield from th.load(addrs[0])
            got.append(value)

        m.scheduler.spawn(writer, core=0)
        m.scheduler.spawn(reader, core=1)
        m.run()
        m.check_invariants()
        assert got == [42]


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 3),  # core
            st.sampled_from(["load", "store", "rmw"]),
            st.integers(0, 5),  # which line
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_mesi_safety_and_linearizable_counters(ops):
    """Random mixes of loads/stores/RMWs across cores preserve MESI
    invariants, and per-line RMW counts equal the number of RMWs."""
    m = make_machine()
    base = 1 << 22
    rmw_counts = {}
    per_core_ops = {0: [], 1: [], 2: [], 3: []}
    for core, kind, line in ops:
        per_core_ops[core].append((kind, base + line * 64))
        if kind == "rmw":
            rmw_counts[line] = rmw_counts.get(line, 0) + 1

    def make_body(oplist):
        def body(th):
            for kind, addr in oplist:
                if kind == "load":
                    yield from th.load(addr)
                elif kind == "store":
                    # Stores write a sentinel to a *different* word of the
                    # line so they don't clobber the RMW counter word.
                    yield from th.store(addr + 8, 1)
                else:
                    yield from th.fetch_add(addr, 1)
        return body

    for core, oplist in per_core_ops.items():
        if oplist:
            m.scheduler.spawn(make_body(oplist), core=core)
    m.run()
    m.check_invariants()
    for line, count in rmw_counts.items():
        assert m.memory.peek(base + line * 64) == count
