"""Crash-safety property tests: random cache corruption is always a
miss (never an exception), SIGKILLed workers lose their lease and their
point is retried elsewhere, and the full chaos harness converges
byte-identically to an undisturbed serial run."""

import multiprocessing
import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.jobs import (
    CACHE_VERSION,
    Engine,
    JobSpec,
    ResultCache,
    execute_spec,
)
from repro.resilience import (
    ChaosPlan,
    JobStore,
    WorkerLoop,
    chaos_harness,
    fsck,
)

SPEC = JobSpec(config="pthread", workload="canneal", cores=4, scale=0.1, seed=7)


@pytest.fixture(scope="module")
def pristine_entry():
    """One real simulated result, computed once for the whole module."""
    return SPEC.key(), execute_spec(SPEC)


def _entry_bytes(cache, key):
    return cache.path(key).read_bytes()


# ---------------------------------------------------------------------------
# Satellite: random byte-flips / truncations never crash the cache and
# fsck pinpoints exactly the mutated entries.
# ---------------------------------------------------------------------------
class TestCorruptionIsAlwaysAMiss:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_mutated_entry_is_miss_or_intact_never_raises(
        self, data, pristine_entry, tmp_path_factory
    ):
        key, result = pristine_entry
        root = tmp_path_factory.mktemp("mutate")
        cache = ResultCache(root)
        cache.put(key, SPEC, result)
        raw = bytearray(_entry_bytes(cache, key))

        if data.draw(st.booleans(), label="truncate?"):
            cut = data.draw(
                st.integers(0, len(raw) - 1), label="truncate-at"
            )
            mutated = bytes(raw[:cut])
        else:
            pos = data.draw(st.integers(0, len(raw) - 1), label="flip-at")
            new = data.draw(
                st.integers(0, 255).filter(lambda b: b != raw[pos]),
                label="flip-to",
            )
            raw[pos] = new
            mutated = bytes(raw)
        cache.path(key).write_bytes(mutated)

        got = cache.get(key)  # must never raise
        if got is not None:
            # A flip inside insignificant JSON whitespace can be
            # semantically invisible; then the entry is still the truth.
            assert got == result
            assert fsck(root, repair=False).issues == []
        else:
            assert cache.corrupt >= 1
            report = fsck(root, repair=False)
            assert len(report.issues) == 1
            assert report.issues[0].path.endswith(f"{key}.json")
            assert report.issues[0].kind in (
                "torn-json", "checksum-mismatch", "schema-drift",
                "stale-version", "key-mismatch",
            )

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_fsck_detects_exactly_the_mutated_entries(
        self, data, pristine_entry, tmp_path_factory
    ):
        """Plant N healthy entries, mutate a chosen subset, and fsck
        must flag that subset and nothing else."""
        key, result = pristine_entry
        root = tmp_path_factory.mktemp("subset")
        cache = ResultCache(root)
        keys = []
        for seed in (1, 2, 3):
            s = JobSpec(
                config=SPEC.config, workload=SPEC.workload,
                cores=SPEC.cores, scale=SPEC.scale, seed=seed,
            )
            cache.put(s.key(), s, result)
            keys.append(s.key())
        victims = data.draw(
            st.sets(st.sampled_from(keys), min_size=1), label="victims"
        )
        for victim in victims:
            raw = bytearray(_entry_bytes(cache, victim))
            pos = data.draw(
                st.integers(0, len(raw) - 1), label=f"pos-{victim[:6]}"
            )
            raw[pos] ^= 0xFF  # high bit included: never JSON-invisible
            cache.path(victim).write_bytes(bytes(raw))

        report = fsck(root, repair=True)
        flagged = {
            os.path.basename(issue.path)[: -len(".json")]
            for issue in report.issues
        }
        assert flagged == victims
        assert report.ok
        for k in keys:
            expect_alive = k not in victims
            assert cache.path(k).exists() == expect_alive
            assert (cache.get(k) is not None) == expect_alive


# ---------------------------------------------------------------------------
# Satellite: SIGKILL mid-point => lease expires, point retried
# elsewhere, final results byte-identical to serial.
# ---------------------------------------------------------------------------
def _claim_and_hang(store_path, owner, started):
    store = JobStore(store_path, lease_s=1.0)
    claim = store.claim(owner)
    assert claim is not None
    started.set()
    time.sleep(60)  # never heartbeats, never completes


class TestSigkillRecovery:
    def test_sigkilled_worker_releases_lease_and_point_is_retried(
        self, tmp_path
    ):
        store_path = tmp_path / "jobs.sqlite3"
        cache = ResultCache(tmp_path / "cache")
        store = JobStore(store_path, lease_s=1.0, quarantine_after=5)
        key = SPEC.key()
        store.enqueue(key, SPEC.describe())

        ctx = multiprocessing.get_context("fork")
        started = ctx.Event()
        proc = ctx.Process(
            target=_claim_and_hang, args=(store_path, "doomed", started)
        )
        proc.start()
        assert started.wait(timeout=30)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=10)

        # Lease still held: the point is not claimable yet.
        assert store.claim("survivor") is None
        deadline = time.monotonic() + 15
        claim = None
        while claim is None and time.monotonic() < deadline:
            time.sleep(0.1)
            claim = store.claim("survivor")
        assert claim is not None, "lease never expired"
        assert claim.reclaimed and claim.attempt == 2
        assert store.counters()["leases_expired"] == 1

        # Hand the reclaimed point to a healthy in-process worker and
        # check the retried result is byte-identical to serial.
        store.release_owner("survivor")
        loop = WorkerLoop(
            store, cache, keys=[key], owner="survivor",
            specs_by_key={key: SPEC}, heartbeats=False,
        )
        loop.drain()
        assert store.get(key).status == "done"
        assert cache.get(key).to_json() == execute_spec(SPEC).to_json()

    def test_engine_converges_under_seeded_kills(self, tmp_path):
        specs = [
            JobSpec(config=c, workload="canneal", cores=4, scale=0.15, seed=3)
            for c in ("pthread", "msa-omu-2")
        ]
        serial = [execute_spec(s).to_json() for s in specs]
        engine = Engine(
            workers=2,
            cache_dir=tmp_path / "cache",
            retries=9,
            lease_s=2.0,
            chaos=ChaosPlan(kill_interval_s=0.15, seed=11),
        )
        jobs = engine.run(specs)
        assert all(j.ok for j in jobs)
        assert [j.result.to_json() for j in jobs] == serial


# ---------------------------------------------------------------------------
# The full gauntlet (CI runs this via `python -m repro chaos-harness`).
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestChaosHarness:
    def test_full_gauntlet_is_byte_identical(self, tmp_path):
        result = chaos_harness(
            workdir=tmp_path,
            workers=3,
            scale=0.15,
            cores=4,
            kill_interval_s=0.2,
            corrupt_interval_s=0.3,
            diskfull_puts=1,
        )
        assert result.identical, result.describe()
        assert result.ok, result.describe()
        assert result.total == 4
        # The gauntlet actually fired (disk-full injection alone
        # guarantees retries even on a machine too fast to catch kills).
        counters = result.counters
        assert (
            result.kills + result.corruptions + counters.get("retries", 0)
        ) >= 1
        assert result.fsck_report is not None and result.fsck_report.ok
