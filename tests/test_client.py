"""The service client and the config/schema satellites.

Covers :mod:`repro.client` against an embedded server (including the
byte-identity contract with local runs), the ``repro.api`` service
verbs, the consolidated :mod:`repro.common.config` knob resolver, the
schema-version pins, and the new CLI subcommand parsers.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.client import Client, discover
from repro.common import config as repro_config
from repro.common.errors import ConfigError, SchemaError, ServiceError
from repro.serve import Server

POINT = dict(configs="pthread", workloads="canneal", cores=4, scale=0.1, seed=7)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    srv = Server(
        cache_dir=tmp_path_factory.mktemp("client-cache"), port=0
    ).start()
    yield srv
    srv.stop()


@pytest.fixture(scope="module")
def client(server):
    return Client(server.url)


class TestClient:
    def test_needs_endpoint(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVER", raising=False)
        with pytest.raises(ConfigError, match="REPRO_SERVER"):
            Client()

    def test_env_endpoint(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_SERVER", server.url)
        assert Client().healthz()["ok"] is True

    def test_scheme_defaulted(self, server):
        bare = server.url[len("http://"):]
        assert Client(bare).base == server.url

    def test_submit_wait_fetch(self, client):
        sid = client.submit(**POINT)
        doc = client.wait(sid, timeout_s=180)
        assert doc["ok"] and doc["counts"] == {"done": 1}
        points = client.fetch(sid)
        assert len(points) == 1
        assert points[0].config == "pthread"
        assert points[0].workload == "canneal"
        assert points[0].result.cycles > 0

    def test_fetch_is_byte_identical_to_local(self, client):
        """The service changes where a sweep runs, never what it
        produces: the fetched RunResult serializes to the same bytes
        as a local run of the same point."""
        sid = client.submit(**POINT)
        client.wait(sid, timeout_s=180)
        [remote] = client.fetch(sid)
        [local] = api.sweep(
            configs=["pthread"],
            workloads=["canneal"],
            cores=(4,),
            scale=0.1,
            seed=7,
        )
        assert remote.result.to_json() == local.result.to_json()

    def test_resubmission_hits_cache(self, client):
        sid = client.submit(**POINT)
        client.wait(sid, timeout_s=180)
        assert client.submit(**POINT) == sid
        sub = client.submissions[sid]
        assert sub["created_jobs"] == 0 and sub["deduped_jobs"] == 1

    def test_wait_timeout(self, client):
        sid = client.submit(**POINT)
        client.wait(sid, timeout_s=180)
        # Already done: even a zero timeout returns immediately.
        assert client.wait(sid, timeout_s=0)["done"]

    def test_unknown_sweep_is_service_error(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.status("feedfacefeedface")

    def test_metrics_and_report(self, client):
        assert "repro_serve_http_requests" in client.metrics()
        assert "<html" in client.report(baseline="pthread").lower()

    def test_unreachable_server(self):
        c = Client("http://127.0.0.1:9", timeout_s=2.0)
        with pytest.raises(ServiceError, match="cannot reach"):
            c.healthz()

    def test_discover(self, server, tmp_path):
        assert discover(server.cache_dir) == server.url
        assert discover(tmp_path) is None


class TestApiVerbs:
    def test_sweep_routes_through_server(self, server):
        points, stats = api.sweep(
            configs=["pthread"],
            workloads="canneal",
            cores=(4,),
            scale=0.1,
            seed=7,
            server=server.url,
            return_stats=True,
        )
        assert len(points) == 1 and stats.total == 1
        # This grid already ran in this module: all hits, no execution.
        assert stats.hit_rate >= 0.9

    def test_submit_status_wait_fetch(self, server):
        sid = api.submit(**POINT, server=server.url)
        assert api.wait(sid, server=server.url, timeout_s=180)["ok"]
        assert api.status(sid, server=server.url)["done"]
        assert len(api.fetch(sid, server=server.url)) == 1

    def test_server_rejects_engine_kwargs(self, server):
        with pytest.raises(ConfigError, match="server"):
            api.sweep(
                configs=["pthread"],
                workloads="canneal",
                server=server.url,
                workers=4,
            )

    def test_server_rejects_factories(self, server):
        with pytest.raises(ConfigError, match="registry"):
            api.sweep(
                configs=["pthread"],
                workloads={"x": lambda n, s: None},
                server=server.url,
            )

    def test_package_exports(self):
        import repro

        for name in ("submit", "status", "wait", "fetch"):
            assert callable(getattr(repro, name))
        # ``repro.serve`` is the subpackage; the verb is api.serve.
        assert callable(api.serve)


class TestConfigResolver:
    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert repro_config.workers(8) == 8
        assert repro_config.workers(None) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert repro_config.workers(None) is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/x")
        assert repro_config.cache_dir(None) == "/tmp/x"
        monkeypatch.setenv("REPRO_SERVER", "http://h:1")
        assert repro_config.server(None) == "http://h:1"

    def test_bad_int_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ConfigError, match="REPRO_WORKERS"):
            repro_config.workers(None)

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            repro_config.get("no_such_knob")

    def test_describe_covers_every_knob(self):
        text = repro_config.describe()
        for env in ("REPRO_WORKERS", "REPRO_CACHE_DIR", "REPRO_SERVER",
                    "REPRO_BENCH_FULL"):
            assert env in text


class TestSchemaPins:
    def test_result_round_trip_carries_stamp(self):
        from repro.harness.runner import RunResult

        [point] = api.sweep(
            configs=["pthread"], workloads=["canneal"], cores=(4,),
            scale=0.1, seed=7,
        )
        data = json.loads(point.result.to_json())
        assert data["schema"] == "repro.result/1"
        again = RunResult.from_dict(data)
        assert again.to_json() == point.result.to_json()

    def test_result_future_major_rejected(self):
        from repro.harness.runner import RunResult

        with pytest.raises(SchemaError, match="repro.result/9"):
            RunResult.from_dict({"schema": "repro.result/9", "cycles": 1})

    def test_jobspec_future_major_rejected(self):
        from repro.harness.jobs import JobSpec

        wire = JobSpec(
            config="pthread", workload="canneal", cores=4
        ).to_wire()
        assert wire["schema"] == "repro.jobspec/1"
        wire["schema"] = "repro.jobspec/2"
        with pytest.raises(SchemaError):
            JobSpec.from_wire(wire)

    def test_legacy_unstamped_documents_accepted(self):
        """Pre-versioning cache entries (no stamp) must keep loading."""
        from repro.harness.runner import RunResult

        [point] = api.sweep(
            configs=["pthread"], workloads=["canneal"], cores=(4,),
            scale=0.1, seed=7,
        )
        data = json.loads(point.result.to_json())
        del data["schema"]
        assert RunResult.from_dict(data).cycles == point.result.cycles


class TestCliParsers:
    def test_serve_parser(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["serve", "--cache-dir", "/tmp/c", "--port", "0",
             "--workers", "2", "--lease", "5"]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.workers == 2 and args.lease == 5.0

    def test_submit_parser(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["submit", "--server", "http://h:1", "--configs", "pthread",
             "--workloads", "canneal", "--cores", "4", "--wait"]
        )
        assert args.command == "submit"
        assert args.server == "http://h:1" and args.wait

    def test_status_fetch_parsers(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["status", "abc123"])
        assert args.command == "status" and args.sweep_id == "abc123"
        args = build_parser().parse_args(
            ["fetch", "abc123", "--baseline", "pthread", "--csv", "o.csv"]
        )
        assert args.command == "fetch" and args.baseline == "pthread"

    def test_cli_fetch_round_trip(self, server, capsys):
        from repro.__main__ import main

        c = Client(server.url)
        sid = c.submit(**POINT)
        c.wait(sid, timeout_s=180)
        assert main(["fetch", "--server", server.url, sid]) == 0
        out = capsys.readouterr().out
        assert out.startswith("config,workload")
        assert "pthread,canneal,4,0.1" in out
