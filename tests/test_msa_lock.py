"""Integration tests: MSA lock protocol (paper section 4.1)."""

import pytest

from repro.common.types import SyncOp, SyncResult, SyncType
from repro.harness.configs import build_machine
from tests.conftest import run_threads


def lock_of(machine, addr):
    return machine.msa_slice(machine.memory.amap.home_of(addr)).entry_for(addr)


class TestLockBasics:
    def test_uncontended_lock_unlock_in_hardware(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        results = []

        def body(th):
            r1 = yield from th.sync(SyncOp.LOCK, addr)
            r2 = yield from th.sync(SyncOp.UNLOCK, addr)
            results.extend([r1, r2])

        run_threads(m, [body])
        assert results == [SyncResult.SUCCESS, SyncResult.SUCCESS]

    def test_entry_allocated_at_home_tile(self, machine16):
        m = machine16
        addr = m.allocator.sync_var(home=7)
        holding = []

        def body(th):
            yield from th.sync(SyncOp.LOCK, addr)
            entry = lock_of(m, addr)
            holding.append((entry is not None, entry and entry.sync_type))
            yield from th.sync(SyncOp.UNLOCK, addr)

        run_threads(m, [body])
        assert holding == [(True, SyncType.LOCK)]
        assert m.memory.amap.home_of(addr) == 7

    def test_mutual_exclusion_under_contention(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        in_cs = [0]
        max_in_cs = [0]

        def body(th):
            for _ in range(5):
                yield from th.lock(addr)
                in_cs[0] += 1
                max_in_cs[0] = max(max_in_cs[0], in_cs[0])
                yield from th.compute(15)
                in_cs[0] -= 1
                yield from th.unlock(addr)

        run_threads(m, [body] * 8)
        assert max_in_cs[0] == 1

    def test_unlock_without_entry_fails_to_software(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        results = []

        def body(th):
            r = yield from th.sync(SyncOp.UNLOCK, addr)
            results.append(r)

        run_threads(m, [body])
        assert results == [SyncResult.FAIL]

    def test_entry_freed_when_hwqueue_empties_without_hwsync(self):
        m = build_machine("msa-omu-2-noopt", n_cores=16)
        addr = m.allocator.sync_var()

        def body(th):
            yield from th.sync(SyncOp.LOCK, addr)
            yield from th.sync(SyncOp.UNLOCK, addr)

        run_threads(m, [body])
        assert lock_of(m, addr) is None

    def test_entry_probation_then_idle_cached_with_hwsync(self, machine16):
        """With the HWSync optimization a lock entry lingers after one
        use (probation, instantly evictable); once same-core reuse is
        observed it stays armed across idle periods (idle-cached) so the
        bit holder can silently re-acquire."""
        m = machine16
        addr = m.allocator.sync_var()
        snapshots = []

        def body(th):
            yield from th.sync(SyncOp.LOCK, addr)
            yield from th.sync(SyncOp.UNLOCK, addr)
            # Let the (possibly silent/fire-and-forget) release reach
            # the home tile before snapshotting the entry state.
            yield from th.compute(100)
            entry = lock_of(m, addr)
            snapshots.append((entry is not None, entry and entry.evictable()))
            yield from th.sync(SyncOp.LOCK, addr)  # reuse detected here
            yield from th.sync(SyncOp.UNLOCK, addr)

        run_threads(m, [body])
        assert snapshots == [(True, True)]  # probation after first use
        entry = lock_of(m, addr)
        assert entry is not None and entry.idle_cached()
        assert entry.hwsync_core == 0 and entry.reuse_mode


class TestNBTCFairness:
    def test_round_robin_grant_order(self, machine16):
        """With all cores continuously re-acquiring, NBTC round-robin
        bounds how far grant counts can diverge."""
        m = machine16
        addr = m.allocator.sync_var()
        grants = {i: 0 for i in range(8)}

        def make_body(i):
            def body(th):
                for _ in range(10):
                    yield from th.lock(addr)
                    grants[i] += 1
                    yield from th.compute(10)
                    yield from th.unlock(addr)
            return body

        run_threads(m, [make_body(i) for i in range(8)])
        assert all(count == 10 for count in grants.values())

    def test_no_starvation_with_asymmetric_threads(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        done_at = {}

        def make_body(i, iters):
            def body(th):
                for _ in range(iters):
                    yield from th.lock(addr)
                    yield from th.compute(30)
                    yield from th.unlock(addr)
                done_at[i] = th.sim.now
            return body

        # Thread 7 wants the lock a few times amid heavy traffic from
        # the others; NBTC must not starve it until the end.
        bodies = [make_body(i, 20) for i in range(7)] + [make_body(7, 2)]
        cycles = run_threads(m, bodies)
        assert done_at[7] < cycles


class TestOverflowSteering:
    def test_capacity_overflow_steers_to_software(self):
        m = build_machine("msa-omu-1", n_cores=4)
        # Four locks homed at the same tile exceed the 1-entry slice.
        addrs = [m.allocator.sync_var(home=2) for _ in range(4)]
        fails = []

        def make_body(i):
            def body(th):
                for _ in range(4):
                    r = yield from th.sync(SyncOp.LOCK, addrs[i])
                    if r is SyncResult.FAIL:
                        fails.append(i)
                        yield from m.sync_library.fallback.lock(th, addrs[i])
                    yield from th.compute(50)
                    r = yield from th.sync(SyncOp.UNLOCK, addrs[i])
                    if r is SyncResult.FAIL:
                        yield from m.sync_library.fallback.unlock(th, addrs[i])
            return body

        run_threads(m, [make_body(i) for i in range(4)])
        assert fails  # At least some operations overflowed to software.

    def test_omu_prevents_hw_grant_while_sw_active(self):
        """The core correctness scenario from section 3.2: while threads
        hold/wait on a lock in software, a freed-up MSA entry must NOT
        be granted for that same lock."""
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        home = m.memory.amap.home_of(addr)
        slice_ = m.msa_slice(home)
        # Simulate pre-existing software activity on the address.
        slice_.omu.increment(addr, 2)
        results = []

        def body(th):
            r = yield from th.sync(SyncOp.LOCK, addr)
            results.append(r)
            if r is SyncResult.FAIL:
                return
            yield from th.sync(SyncOp.UNLOCK, addr)

        run_threads(m, [body])
        assert results == [SyncResult.FAIL]
        assert lock_of(m, addr) is None
        # The failed LOCK incremented the counter further.
        assert slice_.omu.total == 3

    def test_sw_epoch_drains_then_hw_takes_over(self):
        """After software activity drains (UNLOCK decrements), the next
        acquire gets an MSA entry -- the OMU 'lull' behaviour."""
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        phases = []

        def sw_holder(th):
            # Force a software episode by pre-loading the OMU.
            slice_ = m.msa_slice(m.memory.amap.home_of(addr))
            slice_.omu.increment(addr)
            r = yield from th.sync(SyncOp.LOCK, addr)
            phases.append(("first", r))
            yield from m.sync_library.fallback.lock(th, addr)
            yield from th.compute(100)
            yield from m.sync_library.fallback.unlock(th, addr)
            r = yield from th.sync(SyncOp.UNLOCK, addr)
            phases.append(("unlock", r))
            # Pre-loaded increment is still outstanding; drain it.
            m.msa_slice(m.memory.amap.home_of(addr)).omu.decrement(addr)
            yield from th.compute(100)
            r = yield from th.sync(SyncOp.LOCK, addr)
            phases.append(("second", r))
            if r is SyncResult.SUCCESS:
                yield from th.sync(SyncOp.UNLOCK, addr)

        run_threads(m, [sw_holder])
        assert ("first", SyncResult.FAIL) in phases
        assert ("unlock", SyncResult.FAIL) in phases
        assert ("second", SyncResult.SUCCESS) in phases

    def test_msa_inf_never_fails(self):
        m = build_machine("msa-inf", n_cores=16)
        addrs = [m.allocator.sync_var(home=3) for _ in range(30)]
        results = []

        def body(th):
            for a in addrs:
                r = yield from th.sync(SyncOp.LOCK, a)
                results.append(r)
                yield from th.sync(SyncOp.UNLOCK, a)

        run_threads(m, [body])
        assert all(r is SyncResult.SUCCESS for r in results)

    def test_existing_entry_wins_over_full_slice(self):
        """A request for an address that already has an entry is served
        in hardware even when the slice is otherwise full."""
        m = build_machine("msa-omu-1", n_cores=4)
        addr = m.allocator.sync_var(home=1)
        other = m.allocator.sync_var(home=1)
        results = []

        def holder(th):
            r = yield from th.sync(SyncOp.LOCK, addr)
            results.append(("hold", r))
            yield from th.compute(300)
            yield from th.sync(SyncOp.UNLOCK, addr)

        def prober(th):
            yield from th.compute(100)
            # Slice is full (addr owns the single entry): this fails...
            r = yield from th.sync(SyncOp.LOCK, other)
            results.append(("other", r))
            if r is SyncResult.FAIL:
                yield from th.sync(SyncOp.UNLOCK, other)  # balance OMU
            # ...but a second acquire of addr hits the existing entry.
            r = yield from th.sync(SyncOp.LOCK, addr)
            results.append(("same", r))
            yield from th.sync(SyncOp.UNLOCK, addr)

        run_threads(m, [holder, prober])
        assert ("other", SyncResult.FAIL) in results
        assert ("same", SyncResult.SUCCESS) in results


class TestHybridAlgorithm:
    def test_hybrid_lock_falls_back_transparently(self):
        """Algorithm 1 end-to-end: mutual exclusion holds across mixed
        HW/SW phases when capacity forces fallbacks."""
        m = build_machine("msa-omu-1", n_cores=16)
        locks = [m.allocator.sync_var(home=0) for _ in range(6)]
        counters = {lock: m.allocator.line() for lock in locks}

        def make_body(i):
            def body(th):
                for k in range(6):
                    lock = locks[(i + k) % len(locks)]
                    yield from th.lock(lock)
                    v = yield from th.load(counters[lock])
                    yield from th.compute(11)
                    yield from th.store(counters[lock], v + 1)
                    yield from th.unlock(lock)
            return body

        run_threads(m, [make_body(i) for i in range(8)])
        assert sum(m.memory.peek(c) for c in counters.values()) == 48
        counters = m.msa_counters()
        assert counters.get("ops_sw", 0) > 0  # some ops really fell back

    def test_msa0_machine_all_software(self):
        m = build_machine("msa0", n_cores=16)
        addr = m.allocator.sync_var()
        counter = m.allocator.line()

        def body(th):
            for _ in range(5):
                yield from th.lock(addr)
                v = yield from th.load(counter)
                yield from th.store(counter, v + 1)
                yield from th.unlock(addr)

        run_threads(m, [body] * 4)
        assert m.memory.peek(counter) == 20
        assert m.sync_unit_counters()["always_fail"] > 0

    def test_omu_counters_drain_to_zero_after_run(self):
        """Balanced increments/decrements: once all threads finish, no
        OMU counter should remain non-zero (legal programs)."""
        m = build_machine("msa-omu-1", n_cores=16)
        locks = [m.allocator.sync_var(home=0) for _ in range(5)]

        def make_body(i):
            def body(th):
                for k in range(4):
                    lock = locks[(i * 3 + k) % len(locks)]
                    yield from th.lock(lock)
                    yield from th.compute(13)
                    yield from th.unlock(lock)
            return body

        run_threads(m, [make_body(i) for i in range(8)])
        assert m.omu_totals() == 0
