"""Unit tests for the software-synchronization state registry."""

import pytest

from repro.harness.configs import build_machine
from repro.runtime.swsync.registry import WORD_SIZE, SwStateRegistry


@pytest.fixture
def registry():
    machine = build_machine("pthread", n_cores=16)
    return SwStateRegistry(machine.allocator), machine


class TestWordSlots:
    def test_slots_offset_within_line(self):
        base = 1 << 20
        assert SwStateRegistry.word(base, 0) == base
        assert SwStateRegistry.word(base, 1) == base + WORD_SIZE
        assert SwStateRegistry.word(base, 3) == base + 3 * WORD_SIZE

    def test_slots_stay_on_the_same_line(self, registry):
        reg, machine = registry
        base = machine.allocator.line()
        amap = machine.memory.amap
        for slot in range(8):
            assert amap.line_of(SwStateRegistry.word(base, slot)) == amap.line_of(
                base
            )


class TestPrivateLines:
    def test_stable_across_calls(self, registry):
        reg, _ = registry
        a1 = reg.private_line("mcs", 0x100, 3)
        a2 = reg.private_line("mcs", 0x100, 3)
        assert a1 == a2

    def test_distinct_keys_distinct_lines(self, registry):
        reg, machine = registry
        amap = machine.memory.amap
        lines = {
            amap.line_of(reg.private_line("mcs", 0x100, tid))
            for tid in range(16)
        }
        assert len(lines) == 16

    def test_namespaces_do_not_collide(self, registry):
        reg, _ = registry
        a = reg.private_line("tour_arrive", 0x200, 1, 0)
        b = reg.private_line("tour_release", 0x200, 1)
        c = reg.private_line("mcs", 0x200, 1)
        assert len({a, b, c}) == 3

    def test_registry_lines_disjoint_from_fresh_allocations(self, registry):
        reg, machine = registry
        node = reg.private_line("mcs", 0x300, 0)
        fresh = machine.allocator.line()
        assert node != fresh
