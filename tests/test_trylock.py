"""Tests for the TRYLOCK ISA extension (non-blocking acquire)."""

import pytest

from repro.common.types import SyncOp, SyncResult
from repro.harness.configs import build_machine
from tests.conftest import run_threads


class TestTrylockHardware:
    def test_free_lock_acquired(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        got = []

        def body(th):
            acquired = yield from m.sync_library.trylock(th, addr)
            got.append(acquired)
            if acquired:
                yield from th.unlock(addr)

        run_threads(m, [body])
        assert got == [True]
        assert m.omu_totals() == 0

    def test_held_lock_returns_busy_without_waiting(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        events = []

        def holder(th):
            yield from th.lock(addr)
            yield from th.compute(3000)
            yield from th.unlock(addr)

        def trier(th):
            yield from th.compute(300)
            t0 = th.sim.now
            acquired = yield from m.sync_library.trylock(th, addr)
            events.append((acquired, th.sim.now - t0))

        run_threads(m, [holder, trier])
        acquired, latency = events[0]
        assert acquired is False
        # Returned long before the holder's release at ~3000.
        assert latency < 500

    def test_trylock_instruction_results(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        results = []

        def holder(th):
            r = yield from th.sync(SyncOp.TRYLOCK, addr)
            results.append(("first", r))
            yield from th.compute(1000)
            yield from th.sync(SyncOp.UNLOCK, addr)

        def trier(th):
            yield from th.compute(200)
            r = yield from th.sync(SyncOp.TRYLOCK, addr)
            results.append(("second", r))

        run_threads(m, [holder, trier])
        assert ("first", SyncResult.SUCCESS) in results
        assert ("second", SyncResult.BUSY) in results

    def test_silent_trylock_after_rearm(self, machine16):
        """An idle-armed HWSync bit serves trylocks too."""
        m = machine16
        addr = m.allocator.sync_var()
        got = []

        def body(th):
            # Two plain acquires enter reuse mode and arm the bit.
            for _ in range(2):
                yield from th.lock(addr)
                yield from th.unlock(addr)
                yield from th.compute(120)
            acquired = yield from m.sync_library.trylock(th, addr)
            got.append(acquired)
            yield from th.unlock(addr)

        run_threads(m, [body])
        assert got == [True]
        assert m.sync_unit_counters().get("silent_lock_hits", 0) >= 1

    def test_never_enqueues(self, machine16):
        """Concurrent trylocks on a held lock leave no HWQueue waiters."""
        m = machine16
        addr = m.allocator.sync_var()
        outcomes = []

        def holder(th):
            yield from th.lock(addr)
            yield from th.compute(2000)
            entry = m.msa_slice(m.memory.amap.home_of(addr)).entry_for(addr)
            outcomes.append(("waiters", len(entry.waiters)))
            yield from th.unlock(addr)

        def trier(th):
            yield from th.compute(100 + th.tid * 50)
            acquired = yield from m.sync_library.trylock(th, addr)
            outcomes.append(("try", acquired))

        run_threads(m, [holder] + [trier] * 4)
        assert ("waiters", 0) in outcomes
        tries = [v for k, v in outcomes if k == "try"]
        assert tries == [False] * 4


class TestTrylockSoftwareFallback:
    def test_fail_path_software_acquire_balances_omu(self):
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        # Steer the lock to software.
        m.msa_slice(m.memory.amap.home_of(addr)).omu.increment(addr)
        got = []

        def body(th):
            acquired = yield from m.sync_library.trylock(th, addr)
            got.append(acquired)
            if acquired:
                yield from th.compute(50)
                yield from th.unlock(addr)

        run_threads(m, [body])
        assert got == [True]
        m.msa_slice(m.memory.amap.home_of(addr)).omu.decrement(addr)
        assert m.omu_totals() == 0

    def test_fail_path_busy_software_lock_balances_omu(self):
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        slice_ = m.msa_slice(m.memory.amap.home_of(addr))
        slice_.omu.increment(addr)
        got = []

        def holder(th):
            yield from m.sync_library.fallback.lock(th, addr)
            yield from th.compute(2500)
            yield from m.sync_library.fallback.unlock(th, addr)

        def trier(th):
            yield from th.compute(400)
            acquired = yield from m.sync_library.trylock(th, addr)
            got.append(acquired)

        run_threads(m, [holder, trier])
        assert got == [False]
        slice_.omu.decrement(addr)
        # The failed software trylock FINISHed its OMU charge.
        assert m.omu_totals() == 0

    def test_msa0_trylock_works(self):
        m = build_machine("msa0", n_cores=16)
        addr = m.allocator.sync_var()
        got = []

        def body(th):
            acquired = yield from m.sync_library.trylock(th, addr)
            got.append(acquired)
            if acquired:
                yield from th.unlock(addr)

        run_threads(m, [body])
        assert got == [True]


class TestTrylockIdeal:
    def test_ideal_trylock(self):
        m = build_machine("ideal", n_cores=16)
        addr = m.allocator.sync_var()
        got = []

        def holder(th):
            r = yield from th.sync(SyncOp.TRYLOCK, addr)
            got.append(r)
            yield from th.compute(1000)
            yield from th.sync(SyncOp.UNLOCK, addr)

        def trier(th):
            yield from th.compute(200)
            r = yield from th.sync(SyncOp.TRYLOCK, addr)
            got.append(r)

        run_threads(m, [holder, trier])
        assert got == [SyncResult.SUCCESS, SyncResult.BUSY]


class TestTrylockMutualExclusion:
    def test_mixed_trylock_lock_counter_integrity(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        counter = m.allocator.line()
        attempts = [0]

        def make_body(i):
            def body(th):
                done = 0
                while done < 4:
                    if i % 2 == 0:
                        acquired = yield from m.sync_library.trylock(th, addr)
                        attempts[0] += 1
                        if not acquired:
                            yield from th.compute(60)
                            continue
                    else:
                        yield from th.lock(addr)
                    value = yield from th.load(counter)
                    yield from th.compute(5)
                    yield from th.store(counter, value + 1)
                    yield from th.unlock(addr)
                    done += 1
                    yield from th.compute(35)
            return body

        run_threads(m, [make_body(i) for i in range(6)])
        assert m.memory.peek(counter) == 24
        assert m.omu_totals() == 0
