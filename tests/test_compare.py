"""Tests for the sweep-comparison utility."""

import pytest

from repro.harness.compare import compare_csv, render_comparison

OLD = """config,workload,n_cores,scale,cycles,msa_coverage,speedup
pthread,app1,16,1.0,1000,,1.0
msa-omu-2,app1,16,1.0,500,0.95,2.0
msa-omu-2,app2,16,1.0,800,0.90,
"""

NEW = """config,workload,n_cores,scale,cycles,msa_coverage,speedup
pthread,app1,16,1.0,1000,,1.0
msa-omu-2,app1,16,1.0,600,0.95,1.67
msa-omu-2,app3,16,1.0,700,0.90,
"""


class TestCompare:
    def test_deltas_matched_points_only(self):
        cmp = compare_csv(OLD, NEW)
        keys = [d.key for d in cmp.deltas]
        assert ("pthread", "app1", 16) in keys
        assert ("msa-omu-2", "app1", 16) in keys
        assert len(cmp.deltas) == 2

    def test_added_removed_points(self):
        cmp = compare_csv(OLD, NEW)
        assert cmp.only_old == [("msa-omu-2", "app2", 16)]
        assert cmp.only_new == [("msa-omu-2", "app3", 16)]

    def test_regression_detection(self):
        cmp = compare_csv(OLD, NEW)
        regs = cmp.regressions(threshold_pct=5.0)
        assert len(regs) == 1
        assert regs[0].key == ("msa-omu-2", "app1", 16)
        assert regs[0].percent == pytest.approx(20.0)

    def test_no_false_regressions(self):
        cmp = compare_csv(OLD, OLD)
        assert cmp.regressions() == []
        assert cmp.improvements() == []

    def test_render(self):
        out = render_comparison(compare_csv(OLD, NEW))
        assert "REGRESSION" in out
        assert "+20.0%" in out
        assert "removed points: 1" in out
        assert "added points: 1" in out

    def test_roundtrip_with_real_sweep(self):
        from repro.harness.sweep import sweep, to_csv
        from repro.workloads.kernels import KERNELS

        points = sweep(
            configs=("msa-omu-2",),
            workload_factories={"barnes": KERNELS["barnes"]},
            cores=(16,),
            scale=0.25,
        )
        text = to_csv(points)
        cmp = compare_csv(text, text)
        assert len(cmp.deltas) == 1
        assert cmp.deltas[0].percent == 0.0
