"""Tests for the synthetic application kernels: every kernel must run
to completion on every machine configuration, validate its own
functional output, and leave the machine in a consistent state."""

import pytest

from repro.harness.configs import build_machine
from repro.harness.runner import run_workload
from repro.workloads.kernels import FIGURE_APPS, KERNELS

SMALL = 0.25


class TestRegistry:
    def test_seventeen_kernels(self):
        assert len(KERNELS) == 17

    def test_figure_apps_subset(self):
        assert set(FIGURE_APPS) <= set(KERNELS)
        assert len(FIGURE_APPS) == 8

    def test_names_match_keys(self):
        for name, factory in KERNELS.items():
            assert factory(16, SMALL).name == name


@pytest.mark.parametrize("app", sorted(KERNELS))
class TestEveryKernel:
    def test_runs_and_validates_on_msa(self, app):
        machine = build_machine("msa-omu-2", n_cores=16)
        result = run_workload(machine, KERNELS[app](16, SMALL), config="msa")
        assert result.cycles > 0
        assert machine.omu_totals() == 0

    def test_runs_on_pthread(self, app):
        machine = build_machine("pthread", n_cores=16)
        result = run_workload(machine, KERNELS[app](16, SMALL))
        assert result.cycles > 0

    def test_runs_on_ideal(self, app):
        machine = build_machine("ideal", n_cores=16)
        result = run_workload(machine, KERNELS[app](16, SMALL))
        assert result.cycles > 0

    def test_deterministic(self, app):
        def once():
            machine = build_machine("msa-omu-2", n_cores=16, seed=42)
            return run_workload(machine, KERNELS[app](16, SMALL)).cycles

        assert once() == once()


class TestKernelCharacter:
    """Each kernel's synchronization signature matches its role."""

    def _counters(self, app, config="msa-omu-2", n=16):
        machine = build_machine(config, n_cores=n)
        result = run_workload(machine, KERNELS[app](n, SMALL))
        return result.msa_counters

    def test_streamcluster_barrier_dominated(self):
        c = self._counters("streamcluster")
        assert c.get("req.barrier", 0) > c.get("req.lock", 0)

    def test_radiosity_lock_dominated(self):
        c = self._counters("radiosity")
        assert c.get("req.lock", 0) > 10 * c.get("req.barrier", 0)

    def test_fluidanimate_uses_many_lock_addresses(self):
        machine = build_machine("msa-inf", n_cores=16)
        run_workload(machine, KERNELS["fluidanimate"](16, SMALL))
        lock_entries = sum(
            1
            for s in machine.msa_slices
            for e in s.entries.values()
            if e.sync_type.value == "lock"
        )
        assert lock_entries >= 16  # one active set per thread at least

    def test_volrend_exercises_condvars(self):
        c = self._counters("volrend")
        assert c.get("req.cond_wait", 0) + c.get("req.cond_bcast", 0) > 0

    def test_low_sync_apps_have_low_sync_density(self):
        """Sync instructions per cycle at full scale: the compute-bound
        apps sit well below the barrier-storm app."""

        def density(app):
            machine = build_machine("msa-omu-2", n_cores=16)
            result = run_workload(machine, KERNELS[app](16, 1.0))
            ops = sum(
                v
                for k, v in result.sync_unit_counters.items()
                if k.startswith("issued.")
            )
            return ops / result.cycles

        barrier_storms = density("streamcluster")
        assert density("lu") < barrier_storms
        assert density("barnes") < barrier_storms * 2

    def test_raytrace_single_hot_lock(self):
        """Most lock traffic targets the global work lock."""
        machine = build_machine("msa-inf", n_cores=16)
        run_workload(machine, KERNELS["raytrace"](16, SMALL))
        grants_per_slice = [
            s.stats.counters.get("lock_grants", 0) for s in machine.msa_slices
        ]
        assert max(grants_per_slice) > 0.5 * sum(grants_per_slice)


class TestScaling:
    def test_scale_parameter_grows_work(self):
        small = build_machine("pthread", n_cores=16)
        large = build_machine("pthread", n_cores=16)
        small_c = run_workload(small, KERNELS["streamcluster"](16, 0.25)).cycles
        large_c = run_workload(large, KERNELS["streamcluster"](16, 1.0)).cycles
        assert large_c > small_c * 2

    def test_kernels_run_at_4_cores(self):
        for app in ("streamcluster", "radiosity", "volrend"):
            machine = build_machine("msa-omu-2", n_cores=4)
            result = run_workload(machine, KERNELS[app](4, SMALL))
            assert result.cycles > 0
