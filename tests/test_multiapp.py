"""Multi-application scenarios: the OMU motivation from section 3.2 --
"an application may end up occupying all the entries ... thus leaving
active applications with no hardware resources to use."

We emulate application turnover by running one workload's sync-variable
set to completion and then starting a second workload with a *fresh*
variable set on the same machine.  With the OMU, the dead app's entries
recycle; without it they are monopolized forever.
"""

import pytest

from repro.harness.configs import build_machine


def two_phase_workload(m, n_threads=8, locks_per_phase=32, iters=3):
    """Phase A uses one lock set, then phase B uses a disjoint set.
    Returns (coverage_b, cycles) measured over phase B only."""
    phase_a = [m.allocator.sync_var(home=i % m.params.n_cores)
               for i in range(locks_per_phase)]
    phase_b = [m.allocator.sync_var(home=i % m.params.n_cores)
               for i in range(locks_per_phase)]
    barrier = m.allocator.sync_var()
    marks = {}

    def make_body(tid):
        def body(th):
            # --- application A ---
            for k in range(iters):
                lock = phase_a[(tid * 5 + k) % locks_per_phase]
                yield from th.lock(lock)
                yield from th.compute(25)
                yield from th.unlock(lock)
                yield from th.compute(40)
            yield from th.barrier(barrier, n_threads)
            if tid == 0:
                marks["b_start_hw"] = m.msa_counters().get("ops_hw", 0)
                marks["b_start_sw"] = m.msa_counters().get("ops_sw", 0)
            yield from th.barrier(barrier, n_threads)
            # --- application B (fresh synchronization variables) ---
            for k in range(iters):
                lock = phase_b[(tid * 7 + k) % locks_per_phase]
                yield from th.lock(lock)
                yield from th.compute(25)
                yield from th.unlock(lock)
                yield from th.compute(40)
        return body

    for tid in range(n_threads):
        m.scheduler.spawn(make_body(tid))
    cycles = m.run(max_events=10_000_000)
    m.check_invariants()
    counters = m.msa_counters()
    hw = counters.get("ops_hw", 0) - marks["b_start_hw"]
    sw = counters.get("ops_sw", 0) - marks["b_start_sw"]
    coverage_b = hw / (hw + sw) if hw + sw else 0.0
    return coverage_b, cycles


class TestApplicationTurnover:
    def test_omu_recycles_entries_for_the_new_app(self):
        m = build_machine("msa-omu-2", n_cores=16)
        coverage_b, _ = two_phase_workload(m)
        assert coverage_b > 0.8

    def test_without_omu_new_app_starves(self):
        m = build_machine("msa-2-no-omu", n_cores=16)
        coverage_b, _ = two_phase_workload(m)
        with_omu = build_machine("msa-omu-2", n_cores=16)
        coverage_with, _ = two_phase_workload(with_omu)
        # Phase A's 32 locks + barrier hold entries forever; phase B's
        # fresh variables find far fewer free slots.
        assert coverage_b < coverage_with

    def test_turnover_performance_gap(self):
        def run(config):
            m = build_machine(config, n_cores=16)
            return two_phase_workload(m)[1]

        # The OMU machine should not be slower on app turnover.
        assert run("msa-omu-2") <= run("msa-2-no-omu") * 1.1


class TestSuspendedAppHoldsNoResources:
    def test_suspended_apps_entries_get_reclaimed(self):
        """A 'suspended application': its threads stop issuing sync ops
        while holding no locks.  Its idle entries must not block a
        second app (the OMU/probation eviction reclaims them)."""
        m = build_machine("msa-omu-1", n_cores=4)
        app_a_locks = [m.allocator.sync_var(home=t) for t in range(4)]
        app_b_locks = [m.allocator.sync_var(home=t) for t in range(4)]
        results = []

        def app_a(th):
            # Touch every lock once (allocating entries), then go idle.
            for lock in app_a_locks:
                yield from th.lock(lock)
                yield from th.unlock(lock)
            yield from th.compute(20_000)

        def app_b(th):
            yield from th.compute(2_000)  # start after A went idle
            hw = 0
            for k in range(8):
                lock = app_b_locks[k % 4]
                from repro.common.types import SyncOp, SyncResult

                r = yield from th.sync(SyncOp.LOCK, lock)
                if r is SyncResult.SUCCESS:
                    hw += 1
                    yield from th.sync(SyncOp.UNLOCK, lock)
                else:
                    yield from m.sync_library.fallback.lock(th, lock)
                    yield from m.sync_library.fallback.unlock(th, lock)
                    yield from th.sync(SyncOp.UNLOCK, lock)
                yield from th.compute(100)
            results.append(hw)

        m.scheduler.spawn(app_a, core=0)
        m.scheduler.spawn(app_b, core=1)
        m.run(max_events=5_000_000)
        m.check_invariants()
        # App B got hardware service for most of its operations.
        assert results and results[0] >= 6
