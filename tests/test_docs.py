"""Documentation hygiene: the checks tools/check_docs.py enforces in
the CI docs job, plus negative tests proving the checker actually
catches the problems it claims to."""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tools"))

import check_docs  # noqa: E402


class TestRepoDocsAreClean:
    def test_no_dangling_links(self):
        assert check_docs.check_links() == []

    def test_no_stale_path_references(self):
        assert check_docs.check_path_refs() == []

    def test_no_orphan_docs(self):
        assert check_docs.check_orphans() == []

    def test_docs_doctest_snippets_run(self):
        assert check_docs.run_doctests() == []

    def test_no_cli_verb_drift(self):
        assert check_docs.check_cli_verbs() == []

    def test_no_knob_drift(self):
        assert check_docs.check_knobs() == []

    def test_index_lists_every_doc(self):
        index = (check_docs.REPO / "docs" / "INDEX.md").read_text()
        for doc in (check_docs.REPO / "docs").glob("*.md"):
            if doc.name != "INDEX.md":
                assert doc.name in index, f"{doc.name} missing from INDEX.md"

    def test_readme_links_docs_index(self):
        readme = (check_docs.REPO / "README.md").read_text()
        assert "docs/INDEX.md" in readme

    def test_cli_is_green(self, capsys):
        assert check_docs.main(["--no-doctest"]) == 0
        assert "0 problem(s)" in capsys.readouterr().out


class TestCheckerCatchesProblems:
    def test_dangling_link_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("see [missing](does-not-exist.md) for details")
        errors = check_docs.check_links([doc])
        assert len(errors) == 1
        assert "does-not-exist.md" in errors[0]

    def test_external_and_anchor_links_skipped(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text(
            "[perfetto](https://ui.perfetto.dev) and [below](#section)"
        )
        assert check_docs.check_links([doc]) == []

    def test_stale_path_reference_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("see `docs/NO_SUCH_DOC.md` and `tests/test_docs.py`")
        errors = check_docs.check_path_refs([doc])
        assert len(errors) == 1
        assert "NO_SUCH_DOC" in errors[0]

    def test_repro_shorthand_resolves_under_src(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text("events live in `repro/sim/trace.py`")
        assert check_docs.check_path_refs([doc]) == []

    def test_pytest_node_ids_allowed(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text("pinned by `tests/test_obs.py::TestExporters`")
        assert check_docs.check_path_refs([doc]) == []

    def test_failing_doctest_block_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("```python\n>>> 1 + 1\n3\n```\n")
        errors = check_docs.run_doctests([doc])
        assert len(errors) == 1
        assert "doctest failure" in errors[0]

    def test_prose_only_python_blocks_not_executed(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text("```python\nthis_would_raise()\n```\n")
        assert list(check_docs.doctest_blocks([doc])) == []
        assert check_docs.run_doctests([doc]) == []

    def test_stale_cli_verb_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("run `python -m repro frobnicate` to frob")
        errors = check_docs.check_cli_verbs([doc])
        assert len(errors) == 1
        assert "frobnicate" in errors[0]

    def test_live_verbs_come_from_the_parser(self, tmp_path):
        verbs = check_docs.live_verbs()
        for verb in ("run", "sweep", "dse", "report", "serve"):
            assert verb in verbs
        # A doc mentioning only live verbs produces no errors.
        doc = tmp_path / "ok.md"
        doc.write_text(
            " and ".join(f"`python -m repro {v}`" for v in sorted(verbs))
        )
        assert check_docs.check_cli_verbs([doc]) == []

    def test_unknown_knob_detected(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("set REPRO_NO_SUCH_KNOB=1 to speed things up")
        errors = check_docs.check_knobs([doc])
        assert len(errors) == 1
        assert "REPRO_NO_SUCH_KNOB" in errors[0]

    def test_known_knob_passes(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text("export REPRO_WORKERS=4 and REPRO_CACHE_DIR=/tmp")
        assert check_docs.check_knobs([doc]) == []


class TestPublicApiDocstrings:
    """The docstring pass: public entry points carry runnable examples."""

    @pytest.mark.parametrize("obj_path", [
        "repro.api",
        "repro.obs",
        "repro.perf",
    ])
    def test_module_docstrings_exist(self, obj_path):
        import importlib

        mod = importlib.import_module(obj_path)
        assert mod.__doc__ and len(mod.__doc__) > 200

    def test_api_observe_has_doctest(self):
        from repro import api

        assert ">>>" in api.observe.__doc__

    def test_checker_suite_has_doctest(self):
        from repro.verify import CheckerSuite

        assert ">>>" in CheckerSuite.__doc__
