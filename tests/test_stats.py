"""Unit tests for the statistics primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    Counter,
    Histogram,
    StatSet,
    geomean,
    merge_counters,
)


class TestCounter:
    def test_inc_and_reset(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert int(c) == 6
        c.reset()
        assert c.value == 0

    def test_repr(self):
        c = Counter("hits")
        c.inc(3)
        assert "hits=3" in repr(c)


class TestHistogram:
    def test_empty_histogram_safe(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.maximum == 0.0
        assert h.percentile(99) == 0.0

    def test_basic_moments(self):
        h = Histogram("lat")
        for v in (1, 2, 3, 4):
            h.add(v)
        assert h.count == 4
        assert h.total == 10
        assert h.mean == 2.5
        assert h.minimum == 1 and h.maximum == 4

    def test_percentiles_nearest_rank(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.add(v)
        assert h.percentile(50) == 50
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_property_percentile_bounds(self, samples):
        h = Histogram("x")
        for s in samples:
            h.add(s)
        for p in (0, 25, 50, 75, 100):
            value = h.percentile(p)
            assert h.minimum <= value <= h.maximum


class TestStatSet:
    def test_counter_and_histogram_registry(self):
        stats = StatSet("unit")
        stats.counter("a").inc()
        stats.histogram("h").add(7.0)
        assert stats["a"].value == 1
        assert stats["h"].mean == 7.0
        assert "a" in stats and "h" in stats and "zzz" not in stats

    def test_unknown_stat_raises(self):
        with pytest.raises(KeyError):
            StatSet("unit")["nope"]

    def test_same_name_returns_same_object(self):
        stats = StatSet("unit")
        assert stats.counter("c") is stats.counter("c")

    def test_as_dict_flattens(self):
        stats = StatSet("unit")
        stats.counter("c").inc(2)
        stats.histogram("h").add(4.0)
        flat = stats.as_dict()
        assert flat["c"] == 2
        assert flat["h.count"] == 1
        assert flat["h.mean"] == 4.0

    def test_reset_clears_everything(self):
        stats = StatSet("unit")
        stats.counter("c").inc()
        stats.histogram("h").add(1.0)
        stats.reset()
        assert stats.counters["c"] == 0
        assert stats.histograms["h"].count == 0


class TestAggregation:
    def test_merge_counters_sums_by_name(self):
        a, b = StatSet("a"), StatSet("b")
        a.counter("x").inc(2)
        b.counter("x").inc(3)
        b.counter("y").inc(1)
        merged = merge_counters([a, b])
        assert merged == {"x": 5, "y": 1}

    def test_geomean_basics(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, -1.0]) == 0.0  # non-positives ignored
        assert geomean([2.0, 0.0]) == pytest.approx(2.0)

    @given(st.lists(st.floats(0.1, 100), min_size=1, max_size=50))
    def test_property_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
