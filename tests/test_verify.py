"""Tests for the repro.verify subsystem: probe, invariant monitors,
race detector, sequential replay oracle, harness/CLI wiring, and the
broken-lock selftest."""

from __future__ import annotations

import time

import pytest

from repro import api
from repro.common.errors import InvariantViolation
from repro.harness.configs import build_machine
from repro.harness.jobs import JobSpec
from repro.harness.runner import RunResult, run_workload
from repro.verify import (
    CheckReport,
    DEFAULT_MONITORS,
    MONITORS,
    Probe,
    attach_checkers,
    differential,
    resolve_monitors,
    run_selftest,
)
from repro.verify.oracle import SequentialReplayer
from repro.verify.report import Violation

from tests.conftest import run_threads

LOCK = 0x4000
COND = 0x4100
BARRIER = 0x4200
DATA = 0x8000


# ---------------------------------------------------------------------------
# Probe mechanics and zero-cost gating
# ---------------------------------------------------------------------------
class TestProbe:
    def test_unchecked_machine_has_no_probe(self, machine16):
        assert machine16.probe is None
        assert machine16.checker_suite is None
        for sl in machine16.msa_slices:
            assert sl.probe is None
        assert machine16.network.probe is None

    def test_attach_wires_every_component(self, machine16):
        suite = attach_checkers(machine16)
        assert machine16.probe is suite.probe
        assert machine16.checker_suite is suite
        for sl in machine16.msa_slices:
            assert sl.probe is suite.probe
        assert machine16.network.probe is suite.probe

    def test_double_attach_rejected(self, machine16):
        attach_checkers(machine16)
        with pytest.raises(InvariantViolation):
            attach_checkers(machine16)

    def test_unknown_monitor_name_rejected(self):
        with pytest.raises(ValueError, match="unknown monitor"):
            resolve_monitors(["no-such-monitor"])

    def test_resolve_all_by_default(self):
        monitors = resolve_monitors(True)
        assert {m.name for m in monitors} == {
            MONITORS[name].name for name in DEFAULT_MONITORS
        }

    def test_high_rate_kinds_skip_context_window(self, sim):
        probe = Probe(sim)
        probe.emit("lock_acq", tid=0, addr=LOCK)
        probe.emit("mem_read", tid=0, addr=DATA)
        probe.emit("noc_deliver", tid=0, tile=1, aux=("msa.lock", 1))
        assert probe.events_observed == 3
        assert [e.kind for e in probe.recent()] == ["lock_acq"]

    def test_recent_filters_by_address(self, sim):
        probe = Probe(sim)
        probe.emit("lock_acq", tid=0, addr=LOCK)
        probe.emit("lock_acq", tid=1, addr=LOCK + 0x40)
        probe.emit("msa_kill", tile=2)  # addressless events stay visible
        kinds = [(e.kind, e.addr) for e in probe.recent(addr=LOCK)]
        assert kinds == [("lock_acq", LOCK), ("msa_kill", None)]

    def test_checkers_do_not_change_cycle_counts(self):
        """Monitors are pure observers: same seed, same workload, same
        cycle count with and without the full suite attached."""
        results = []
        for checkers in ((), DEFAULT_MONITORS):
            results.append(
                api.run(
                    "msa-omu-2",
                    "streamcluster",
                    cores=16,
                    scale=0.25,
                    checkers=checkers,
                )
            )
        assert results[0].cycles == results[1].cycles
        assert results[1].check_report is not None
        assert results[0].check_report is None


# ---------------------------------------------------------------------------
# Monitors against synthetic event streams
# ---------------------------------------------------------------------------
def synthetic_suite(machine, names):
    return attach_checkers(machine, names)


class TestMonitorsSynthetic:
    """Drive the probe by hand -- no simulation -- to pin each
    monitor's violation conditions exactly."""

    @pytest.fixture
    def machine(self):
        return build_machine("msa-omu-2", n_cores=4)

    def test_mutex_double_grant(self, machine):
        suite = synthetic_suite(machine, ("mutex",))
        probe = suite.probe
        probe.emit("lock_acq", tid=0, addr=LOCK)
        probe.emit("lock_acq", tid=1, addr=LOCK)
        assert len(suite.violations) == 1
        v = suite.violations[0]
        assert v.invariant == "mutual-exclusion"
        assert v.addr == LOCK
        assert set(v.threads) == {0, 1}
        assert "granted" in v.message

    def test_mutex_release_by_non_holder(self, machine):
        suite = synthetic_suite(machine, ("mutex",))
        suite.probe.emit("lock_acq", tid=0, addr=LOCK)
        suite.probe.emit("lock_rel", tid=1, addr=LOCK)
        assert len(suite.violations) == 1
        assert "released" in suite.violations[0].message

    def test_mutex_clean_handoff(self, machine):
        suite = synthetic_suite(machine, ("mutex",))
        for tid in (0, 1, 0):
            suite.probe.emit("lock_acq", tid=tid, addr=LOCK)
            suite.probe.emit("lock_rel", tid=tid, addr=LOCK)
        suite.finalize()
        assert suite.violations == []

    def test_mutex_held_at_end(self, machine):
        suite = synthetic_suite(machine, ("mutex",))
        suite.probe.emit("lock_acq", tid=3, addr=LOCK)
        report = suite.finalize(raise_on_violation=False)
        assert "still held" in report.violations[0].message

    def test_mutex_condvar_wait_releases_lock(self, machine):
        suite = synthetic_suite(machine, ("mutex",))
        probe = suite.probe
        probe.emit("lock_acq", tid=0, addr=LOCK)
        probe.emit("cond_wait_begin", tid=0, addr=COND, aux=LOCK)
        probe.emit("lock_acq", tid=1, addr=LOCK)  # legal: waiter released
        probe.emit("lock_rel", tid=1, addr=LOCK)
        probe.emit("cond_wait_end", tid=0, addr=COND, aux=LOCK)
        probe.emit("lock_rel", tid=0, addr=LOCK)
        suite.finalize()
        assert suite.violations == []

    def test_barrier_early_exit(self, machine):
        suite = synthetic_suite(machine, ("barrier",))
        probe = suite.probe
        probe.emit("barrier_enter", tid=0, addr=BARRIER, aux=2)
        probe.emit("barrier_exit", tid=0, addr=BARRIER, aux=2)
        assert len(suite.violations) == 1
        assert "passed barrier" in suite.violations[0].message

    def test_barrier_left_behind(self, machine):
        suite = synthetic_suite(machine, ("barrier",))
        probe = suite.probe
        for tid in (0, 1):
            probe.emit("barrier_enter", tid=tid, addr=BARRIER, aux=2)
        probe.emit("barrier_exit", tid=0, addr=BARRIER, aux=2)
        report = suite.finalize(raise_on_violation=False)
        assert any("left behind" in v.message for v in report.violations)

    def test_barrier_whole_episodes_clean(self, machine):
        suite = synthetic_suite(machine, ("barrier",))
        probe = suite.probe
        for _ in range(3):
            for tid in (0, 1):
                probe.emit("barrier_enter", tid=tid, addr=BARRIER, aux=2)
            for tid in (0, 1):
                probe.emit("barrier_exit", tid=tid, addr=BARRIER, aux=2)
        suite.finalize()
        assert suite.violations == []

    def test_condvar_lost_wakeup(self, machine):
        suite = synthetic_suite(machine, ("condvar",))
        suite.probe.emit("cond_wait_begin", tid=5, addr=COND, aux=LOCK)
        report = suite.finalize(raise_on_violation=False)
        assert len(report.violations) == 1
        assert "lost wakeup" in report.violations[0].message
        assert report.violations[0].threads == (5,)

    def test_condvar_wake_without_wait(self, machine):
        suite = synthetic_suite(machine, ("condvar",))
        suite.probe.emit("cond_wait_end", tid=5, addr=COND, aux=LOCK)
        assert "without a matching wait" in suite.violations[0].message

    def test_omu_safety_alloc_over_live_software(self, machine):
        suite = synthetic_suite(machine, ("omu-safety",))
        probe = suite.probe
        probe.emit("omu_inc", addr=LOCK, aux=2, tile=0)
        probe.emit("omu_dec", addr=LOCK, aux=1, tile=0)
        probe.emit("msa_alloc", addr=LOCK, aux=("lock", 1), tile=0)
        assert len(suite.violations) == 1
        assert "false 'inactive'" in suite.violations[0].message

    def test_omu_safety_clean_when_drained(self, machine):
        suite = synthetic_suite(machine, ("omu-safety",))
        probe = suite.probe
        probe.emit("omu_inc", addr=LOCK, aux=1, tile=0)
        probe.emit("omu_dec", addr=LOCK, aux=1, tile=0)
        probe.emit("msa_alloc", addr=LOCK, aux=("lock", 1), tile=0)
        suite.finalize()
        assert suite.violations == []

    def test_omu_safety_other_tile_independent(self, machine):
        suite = synthetic_suite(machine, ("omu-safety",))
        probe = suite.probe
        probe.emit("omu_inc", addr=LOCK, aux=1, tile=0)
        probe.emit("msa_alloc", addr=LOCK, aux=("lock", 1), tile=1)
        assert suite.violations == []

    def test_entry_capacity_violation(self, machine):
        suite = synthetic_suite(machine, ("entries",))
        capacity = machine.params.msa.entries_per_tile
        suite.probe.emit(
            "msa_alloc", addr=LOCK, aux=("lock", capacity + 1), tile=0
        )
        assert any(
            "capacity" in v.message for v in suite.violations
        )

    def test_noc_sequence_gap(self, machine):
        suite = synthetic_suite(machine, ("noc",))
        probe = suite.probe
        probe.emit("noc_deliver", tid=0, tile=1, aux=("msa.lock", 1))
        probe.emit("noc_deliver", tid=0, tile=1, aux=("msa.lock", 3))
        assert any(
            "ordering broken" in v.message for v in suite.violations
        )

    def test_fail_fast_raises_immediately(self, machine):
        suite = attach_checkers(machine, ("mutex",), fail_fast=True)
        suite.probe.emit("lock_acq", tid=0, addr=LOCK)
        with pytest.raises(InvariantViolation) as info:
            suite.probe.emit("lock_acq", tid=1, addr=LOCK)
        assert info.value.violation.invariant == "mutual-exclusion"


# ---------------------------------------------------------------------------
# Race detector
# ---------------------------------------------------------------------------
class TestRaceDetector:
    def _run(self, bodies):
        machine = build_machine("msa-omu-2", n_cores=4)
        suite = attach_checkers(machine, ("race",))
        run_threads(machine, bodies)
        return suite.finalize(raise_on_violation=False)

    def test_unlocked_writes_race(self, machine16):
        suite = attach_checkers(machine16, ("race",))
        data = machine16.allocator.line()

        def body(th):
            value = yield from th.load(data)
            yield from th.compute(50)
            yield from th.store(data, value + 1)

        run_threads(machine16, [body, body])
        report = suite.finalize(raise_on_violation=False)
        assert report.violations == []  # races report, never raise
        assert report.races, "unsynchronized writes must be flagged"
        race = report.races[0]
        assert race.addr == data
        assert race.first_locks == () and race.second_locks == ()

    def test_lock_protected_writes_clean(self, machine16):
        suite = attach_checkers(machine16, ("race",))
        lock = machine16.allocator.sync_var()
        data = machine16.allocator.line()

        def body(th):
            yield from th.lock(lock)
            value = yield from th.load(data)
            yield from th.compute(50)
            yield from th.store(data, value + 1)
            yield from th.unlock(lock)

        run_threads(machine16, [body] * 4)
        report = suite.finalize()
        assert report.races == []

    def test_barrier_ordered_phases_clean(self, machine16):
        suite = attach_checkers(machine16, ("race",))
        barrier = machine16.allocator.sync_var()
        data = machine16.allocator.line()

        def writer(th):
            yield from th.store(data, 42)
            yield from th.barrier(barrier, 2)

        def reader(th):
            yield from th.barrier(barrier, 2)
            yield from th.load(data)

        run_threads(machine16, [writer, reader])
        report = suite.finalize()
        assert report.races == []

    def test_atomics_never_reported(self, machine16):
        suite = attach_checkers(machine16, ("race",))
        counter = machine16.allocator.line()

        def body(th):
            for _ in range(5):
                yield from th.fetch_add(counter)

        run_threads(machine16, [body] * 4)
        report = suite.finalize()
        assert report.races == []


# ---------------------------------------------------------------------------
# Sequential replay oracle
# ---------------------------------------------------------------------------
class TestReplayer:
    def test_clean_lock_history(self):
        r = SequentialReplayer()
        problems = r.replay(
            [
                (1, "lock_acq", 0, LOCK, None),
                (2, "lock_rel", 0, LOCK, None),
                (3, "lock_acq", 1, LOCK, None),
                (4, "lock_rel", 1, LOCK, None),
            ]
        )
        assert problems == []
        assert r.summary()["lock_acquires"][hex(LOCK)] == 2

    def test_double_grant_infeasible(self):
        r = SequentialReplayer()
        problems = r.replay(
            [
                (1, "lock_acq", 0, LOCK, None),
                (2, "lock_acq", 1, LOCK, None),
            ]
        )
        assert any("while" in p and "held" in p for p in problems)

    def test_barrier_episode_counting(self):
        r = SequentialReplayer()
        ops = []
        t = 0
        for _ in range(3):
            for tid in (0, 1):
                t += 1
                ops.append((t, "barrier_enter", tid, BARRIER, 2))
            for tid in (0, 1):
                t += 1
                ops.append((t, "barrier_exit", tid, BARRIER, 2))
        assert r.replay(ops) == []
        assert r.summary()["barrier_episodes"][hex(BARRIER)] == 3

    def test_partial_episode_infeasible(self):
        r = SequentialReplayer()
        problems = r.replay([(1, "barrier_enter", 0, BARRIER, 2)])
        assert any("arrivals" in p for p in problems)

    def test_spurious_wakeup_counted_not_infeasible(self):
        r = SequentialReplayer()
        problems = r.replay(
            [
                (1, "lock_acq", 0, LOCK, None),
                (2, "cond_wait_begin", 0, COND, LOCK),
                (3, "cond_wait_end", 0, COND, LOCK),  # no signal: spurious
                (4, "lock_rel", 0, LOCK, None),
            ]
        )
        assert problems == []
        assert r.spurious_wakeups == 1

    def test_signal_grants_wake_token(self):
        r = SequentialReplayer()
        problems = r.replay(
            [
                (1, "lock_acq", 0, LOCK, None),
                (2, "cond_wait_begin", 0, COND, LOCK),
                (3, "cond_signal", 1, COND, 0),
                (4, "cond_wait_end", 0, COND, LOCK),
                (5, "lock_rel", 0, LOCK, None),
            ]
        )
        assert problems == []
        assert r.spurious_wakeups == 0
        # The condvar re-acquire is not a fresh acquisition.
        assert r.summary()["lock_acquires"][hex(LOCK)] == 1


# ---------------------------------------------------------------------------
# End-to-end: clean runs, selftest, harness plumbing
# ---------------------------------------------------------------------------
class TestEndToEnd:
    @pytest.mark.parametrize("config", ["msa-omu-2", "pthread", "ideal"])
    def test_clean_run_all_monitors(self, config):
        result = api.run(
            config, "streamcluster", cores=16, scale=0.25, checkers=True
        )
        report = CheckReport.from_dict(result.check_report)
        assert report.ok
        assert report.events_observed > 0
        assert set(report.monitors) == {
            MONITORS[name].name for name in DEFAULT_MONITORS
        }

    def test_selftest_catches_broken_lock(self):
        report = run_selftest()
        assert not report.ok
        mutex = [
            v for v in report.violations if v.invariant == "mutual-exclusion"
        ]
        assert mutex, "broken lock must trip mutual exclusion"
        v = mutex[0]
        # The acceptance bar: the report names the invariant, the
        # address, the threads involved, and the cycle window.
        assert v.addr is not None
        assert len(v.threads) == 2
        assert v.window[0] <= v.cycle
        assert v.trace, "violation must carry its trace slice"
        assert any("lock_acq" in line for line in v.trace)
        # The oracle independently finds the same history infeasible.
        assert any(
            v.invariant == "oracle-replay" for v in report.violations
        )

    def test_violation_raises_structured_error(self, machine16):
        suite = attach_checkers(machine16, ("mutex",))
        suite.probe.emit("lock_acq", tid=0, addr=LOCK)
        suite.probe.emit("lock_acq", tid=1, addr=LOCK)
        with pytest.raises(InvariantViolation) as info:
            suite.finalize()
        err = info.value
        assert err.violation.invariant == "mutual-exclusion"
        assert err.report is not None and not err.report.ok
        assert "mutual-exclusion" in str(err)

    def test_check_report_json_roundtrip(self):
        report = run_selftest()
        data = report.to_dict()
        back = CheckReport.from_dict(data)
        assert back.to_dict() == data
        assert [v.invariant for v in back.violations] == [
            v.invariant for v in report.violations
        ]

    def test_run_result_carries_report_through_json(self):
        result = api.run(
            "msa-omu-2", "streamcluster", cores=16, scale=0.25, checkers=True
        )
        back = RunResult.from_json(result.to_json())
        assert back.check_report["ok"] is True
        assert set(back.check_report["monitors"]) == {
            MONITORS[name].name for name in DEFAULT_MONITORS
        }

    def test_jobspec_checkers_in_cache_key(self):
        base = JobSpec(config="msa-omu-2", workload="streamcluster")
        checked = JobSpec(
            config="msa-omu-2",
            workload="streamcluster",
            checkers=("mutex", "barrier"),
        )
        assert base.key() != checked.key()

    def test_violation_describe_names_everything(self):
        v = Violation(
            invariant="mutual-exclusion",
            message="boom",
            addr=LOCK,
            threads=(1, 2),
            cycle=400,
            window=(250, 400),
            trace=["[250] lock_acq tid=1"],
        )
        text = v.describe()
        for needle in ("mutual-exclusion", "0x4000", "[1, 2]", "400",
                       "250..400", "boom", "lock_acq"):
            assert needle in text

    def test_checker_overhead_under_2x(self):
        """The ISSUE's CI bar: full monitoring under 2x wall-clock on a
        smoke config."""
        def timed(checkers):
            start = time.perf_counter()
            api.run(
                "msa-omu-2",
                "fluidanimate",
                cores=16,
                scale=0.25,
                checkers=checkers,
            )
            return time.perf_counter() - start

        timed(())  # warm imports/caches before measuring
        plain = min(timed(()) for _ in range(2))
        checked = min(timed(DEFAULT_MONITORS) for _ in range(2))
        assert checked < 2.0 * plain + 0.05, (
            f"checker overhead {checked / plain:.2f}x exceeds 2x"
        )


# ---------------------------------------------------------------------------
# Differential oracle and chaos integration (slower)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_differential_configs_agree():
    report = differential(workload="streamcluster", scale=0.25)
    assert report.ok, report.describe()
    assert set(report.configs) == {"msa-omu-2", "pthread", "ideal"}
    episodes = [
        s.get("barrier_episodes") for s in report.summaries.values()
    ]
    assert episodes[0] and all(e == episodes[0] for e in episodes)


@pytest.mark.chaos
def test_chaos_with_checkers_zero_violations():
    """Masked faults must not trip invariants: a checked chaos sweep
    (drops recovered by the transport/retry plane) reports zero
    violations -- any violation raises inside the engine and fails."""
    from repro.harness.experiments import chaos

    results = chaos(
        n_cores=16,
        drop_rates=(0.0, 0.1),
        apps=("streamcluster",),
        scale=0.25,
        print_out=False,
        checkers=DEFAULT_MONITORS,
    )
    for point in results.values():
        assert point["violations"] == 0


@pytest.mark.chaos
def test_tile_kill_with_checkers_clean():
    """Fail-stopped tiles degrade to software; the checker suite must
    track the kill (OMU refs dropped, conservation scoped to live
    slices) without false positives."""
    from repro.faults import FaultPlan, SliceFault

    result = api.run(
        "msa-omu-2",
        "streamcluster",
        cores=16,
        scale=0.25,
        fault_plan=FaultPlan(slices=(SliceFault(tile=1, at=2_000),)),
        checkers=True,
    )
    report = CheckReport.from_dict(result.check_report)
    assert report.ok, report.describe()
