"""Unit/integration tests for the software synchronization library:
futex service, mutexes, spin/ticket/MCS locks, barriers, condvars."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.configs import build_machine
from tests.conftest import run_threads


def mutex_workload(m, n_threads, iters, cs_compute=9):
    lock = m.allocator.sync_var()
    counter = m.allocator.line()

    def body(th):
        for _ in range(iters):
            yield from th.lock(lock)
            v = yield from th.load(counter)
            yield from th.compute(cs_compute)
            yield from th.store(counter, v + 1)
            yield from th.unlock(lock)

    return [body] * n_threads, counter


class TestFutexService:
    def test_wait_returns_eagain_when_value_changed(self):
        m = build_machine("pthread", n_cores=4)
        results = []

        def body(th):
            yield from th.store(4096, 7)
            slept = yield from m.futex.wait(th, 4096, expected=0)
            results.append(slept)

        run_threads(m, [body])
        assert results == [False]

    def test_wait_then_wake(self):
        m = build_machine("pthread", n_cores=4)
        events = []

        def sleeper(th):
            slept = yield from m.futex.wait(th, 4096, expected=0)
            events.append(("woke", th.sim.now, slept))

        def waker(th):
            yield from th.compute(1000)
            woken = yield from m.futex.wake(th, 4096, 1)
            events.append(("wake_done", woken))

        run_threads(m, [sleeper, waker])
        woke = [e for e in events if e[0] == "woke"][0]
        assert woke[1] >= 1000 and woke[2] is True
        assert ("wake_done", 1) in events

    def test_wake_count_limits_wakeups(self):
        m = build_machine("pthread", n_cores=16)
        woke = []

        def sleeper(th):
            yield from m.futex.wait(th, 8192, expected=0)
            woke.append(th.tid)

        def waker(th):
            yield from th.compute(2000)
            yield from m.futex.wake(th, 8192, 2)
            yield from th.compute(2000)
            yield from m.futex.wake(th, 8192, 10)

        run_threads(m, [sleeper] * 4 + [waker])
        assert sorted(woke) == [0, 1, 2, 3]

    def test_wake_with_no_sleepers_returns_zero(self):
        m = build_machine("pthread", n_cores=4)
        got = []

        def body(th):
            woken = yield from m.futex.wake(th, 4096, 5)
            got.append(woken)

        run_threads(m, [body])
        assert got == [0]


@pytest.mark.parametrize("config", ["pthread", "spinlock", "ticket", "mcs-tour"])
class TestMutualExclusionAllLocks:
    def test_counter_integrity(self, config):
        m = build_machine(config, n_cores=16)
        bodies, counter = mutex_workload(m, 8, 8)
        run_threads(m, bodies)
        assert m.memory.peek(counter) == 64

    def test_single_thread_fast_path(self, config):
        m = build_machine(config, n_cores=16)
        bodies, counter = mutex_workload(m, 1, 20)
        cycles = run_threads(m, bodies)
        assert m.memory.peek(counter) == 20
        # Uncontended lock+unlock should be well under a microsecond
        # (1000 cycles) each.
        assert cycles < 20 * 1000


class TestTicketLock:
    def test_fifo_order(self):
        m = build_machine("ticket", n_cores=16)
        lock = m.allocator.sync_var()
        order = []

        def make_body(i):
            def body(th):
                # Stagger arrivals so ticket order is deterministic.
                yield from th.compute(100 * i + 1)
                yield from th.lock(lock)
                order.append(i)
                yield from th.compute(400)
                yield from th.unlock(lock)
            return body

        run_threads(m, [make_body(i) for i in range(6)])
        assert order == sorted(order)


class TestMCSLock:
    def test_local_spin_no_global_ping_pong(self):
        """MCS waiters spin on their own node, so the *lock word* sees
        one access per acquire, not one per poll."""
        m = build_machine("mcs-tour", n_cores=16)
        lock = m.allocator.sync_var()
        done = []

        def body(th):
            for _ in range(4):
                yield from th.lock(lock)
                yield from th.compute(120)
                yield from th.unlock(lock)
            done.append(1)

        run_threads(m, [body] * 6)
        assert len(done) == 6

    def test_handoff_faster_than_pthread_at_scale(self):
        def contended_cycles(config, n=16):
            m = build_machine(config, n_cores=n)
            bodies, counter = mutex_workload(m, n, 6, cs_compute=5)
            cycles = run_threads(m, bodies)
            assert m.memory.peek(counter) == n * 6
            return cycles

        assert contended_cycles("mcs-tour") < contended_cycles("pthread")


class TestBarriers:
    @pytest.mark.parametrize("config", ["pthread", "spinlock", "mcs-tour"])
    def test_no_thread_passes_early(self, config):
        """On exiting episode k, all 8 arrivals of episode k must have
        happened (arrivals of episode k+1 may already be under way)."""
        m = build_machine(config, n_cores=16)
        barrier = m.allocator.sync_var()
        arrived = [0]
        violations = []

        def make_body(i):
            def body(th):
                for episode in range(3):
                    yield from th.compute(37 * (i + 1))
                    arrived[0] += 1
                    yield from th.barrier(barrier, 8)
                    if arrived[0] < (episode + 1) * 8:
                        violations.append((episode, arrived[0]))
            return body

        run_threads(m, [make_body(i) for i in range(8)])
        assert not violations

    def test_tournament_single_participant(self):
        m = build_machine("mcs-tour", n_cores=4)
        barrier = m.allocator.sync_var()
        done = []

        def body(th):
            yield from th.barrier(barrier, 1)
            done.append(1)

        run_threads(m, [body])
        assert done == [1]

    def test_tournament_non_power_of_two(self):
        m = build_machine("mcs-tour", n_cores=16)
        barrier = m.allocator.sync_var()
        passed = []

        def body(th):
            for _ in range(3):
                yield from th.barrier(barrier, 6)
                passed.append(th.tid)

        run_threads(m, [body] * 6)
        assert len(passed) == 18


class TestSoftwareCondvar:
    def test_no_lost_wakeup_race(self):
        """Signal racing the waiter's sleep entry must not be lost (the
        futex seq re-check)."""
        m = build_machine("pthread", n_cores=4)
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        done = []

        def waiter(th):
            yield from th.lock(lock)
            while True:
                v = yield from th.load(flag)
                if v:
                    break
                yield from th.cond_wait(cond, lock)
            yield from th.unlock(lock)
            done.append("waiter")

        def signaler(th):
            # Signal almost immediately: tight race with wait entry.
            yield from th.compute(40)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from th.cond_signal(cond)
            yield from th.unlock(lock)
            done.append("signaler")

        run_threads(m, [waiter, signaler])
        assert sorted(done) == ["signaler", "waiter"]

    def test_signal_without_waiters_is_cheap_noop(self):
        m = build_machine("pthread", n_cores=4)
        cond = m.allocator.sync_var()

        def body(th):
            yield from th.cond_signal(cond)
            yield from th.cond_broadcast(cond)

        cycles = run_threads(m, [body])
        assert cycles < 500  # no futex syscall on the fast path


@settings(max_examples=10, deadline=None)
@given(
    config=st.sampled_from(["pthread", "spinlock", "mcs-tour", "msa-omu-2"]),
    n_threads=st.integers(2, 8),
    iters=st.integers(1, 6),
    cs=st.integers(0, 40),
)
def test_property_mutual_exclusion_every_library(config, n_threads, iters, cs):
    """Counter integrity (the canonical mutual-exclusion witness) holds
    for every lock implementation at random thread/iteration scales."""
    m = build_machine(config, n_cores=16)
    bodies, counter = mutex_workload(m, n_threads, iters, cs_compute=cs)
    run_threads(m, bodies)
    assert m.memory.peek(counter) == n_threads * iters
