"""Tests for repro.obs: the metrics registry, the span collector, the
exporters, and the observation-is-passive determinism contract."""

from __future__ import annotations

import json

import pytest

from repro.harness.configs import build_machine
from repro.harness.runner import run_workload
from repro.obs import (
    Collector,
    Metric,
    MetricsRegistry,
    Span,
    spans_from_jsonl,
    spans_to_chrome_trace,
    spans_to_jsonl,
)
from repro.workloads.kernels import KERNELS


def observed_run(config="msa-omu-2", kernel="streamcluster", cores=4,
                 scale=0.05, **attach_kwargs):
    machine = build_machine(config, n_cores=cores, seed=2015)
    collector = Collector.attach(machine, **attach_kwargs)
    result = run_workload(
        machine, KERNELS[kernel](cores, scale), config=config
    )
    return machine, result, collector.finalize()


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counter_sums_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.counter("a.ops", 3, tile=0)
        reg.counter("a.ops", 4, tile=0)
        reg.counter("a.ops", 10, tile=1)
        reg.gauge("run.cycles", 100)
        reg.gauge("run.cycles", 250)
        assert reg.get("a.ops", tile=0).value == 7
        assert reg.get("a.ops", tile=1).value == 10
        assert reg.get("run.cycles").value == 250

    def test_histogram_merges_conservatively(self):
        reg = MetricsRegistry()
        reg.histogram("lat", {"count": 2, "sum": 10, "min": 3, "max": 7,
                              "p50": 5, "p90": 7, "p99": 7})
        reg.histogram("lat", {"count": 1, "sum": 20, "min": 20, "max": 20,
                              "p50": 20, "p90": 20, "p99": 20})
        s = reg.get("lat").summary
        assert s["count"] == 3 and s["sum"] == 30
        assert s["min"] == 3 and s["max"] == 20
        assert s["p99"] == 20

    def test_jsonl_round_trip_lossless(self):
        reg = MetricsRegistry()
        reg.counter("msa.ops_hw", 42, config="msa-omu-2", tile="3")
        reg.gauge("run.cycles", 1000.5)
        reg.histogram("noc.latency", {"count": 5, "sum": 50, "min": 2,
                                      "max": 30, "p50": 8, "p90": 25,
                                      "p99": 30}, tile=1)
        back = MetricsRegistry.from_jsonl(reg.to_jsonl())
        assert back.to_jsonl() == reg.to_jsonl()
        assert [m.to_dict() for m in back.metrics()] == [
            m.to_dict() for m in reg.metrics()
        ]

    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("msa.ops_hw", 42, tile=0)
        reg.histogram("noc.latency", {"count": 5, "sum": 50, "min": 2,
                                      "max": 30, "p50": 8, "p90": 25,
                                      "p99": 30})
        text = reg.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_msa_ops_hw counter" in lines
        assert 'repro_msa_ops_hw{tile="0"} 42' in lines
        assert "# TYPE repro_noc_latency summary" in lines
        assert 'repro_noc_latency{quantile="0.99"} 30' in lines
        assert "repro_noc_latency_count 5" in lines
        assert "repro_noc_latency_sum 50" in lines

    def test_prometheus_sanitizes_names_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("sent.msa-cpu", 1, kind='a"b\\c')
        line = [
            l for l in reg.to_prometheus().splitlines() if not l.startswith("#")
        ][0]
        assert line.startswith("repro_sent_msa_cpu{")
        assert '\\"' in line and "\\\\" in line

    def test_merge_across_runs(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ops", 1, config="x")
        b.counter("ops", 2, config="x")
        b.gauge("cycles", 9, config="x")
        a.merge(b)
        assert a.get("ops", config="x").value == 3
        assert a.get("cycles", config="x").value == 9

    def test_from_run_result_covers_all_groups(self):
        machine = build_machine("msa-omu-2", n_cores=4, seed=2015)
        result = run_workload(
            machine, KERNELS["streamcluster"](4, 0.05),
            config="msa-omu-2", checkers=True,
        )
        reg = MetricsRegistry.from_run_result(result)
        names = {m.name for m in reg.metrics()}
        assert "run.cycles" in names
        assert "run.msa_coverage" in names
        assert any(n.startswith("msa.") for n in names)
        assert any(n.startswith("noc.") for n in names)
        assert "verify.ok" in names
        assert reg.get(
            "verify.ok", config="msa-omu-2", workload="streamcluster",
            cores="4",
        ).value == 1.0

    def test_metric_dict_round_trip(self):
        m = Metric(name="x", kind="gauge", labels={"a": "1"}, value=2.5)
        assert Metric.from_dict(m.to_dict()) == m


# ---------------------------------------------------------------------------
# Collector / spans
# ---------------------------------------------------------------------------
class TestCollector:
    def test_span_forest_shape(self):
        machine, result, obs = observed_run()
        names = {s.name for s in obs.spans}
        assert {"run", "lock.acquire", "lock.held", "barrier.wait",
                "msa.entry", "noc.msg"} <= names
        roots = [s for s in obs.spans if s.parent is None]
        assert [r.name for r in roots] == ["run"]
        run = roots[0]
        assert run.start == 0 and run.end == result.cycles
        # Sync spans hang off the run span and are all closed.
        for span in obs.spans:
            assert span.end is not None
            if span.cat == "sync":
                assert span.parent == run.sid
                assert span.tid is not None

    def test_lock_episodes_pair_correctly(self):
        _, _, obs = observed_run()
        acquires = [s for s in obs.spans if s.name == "lock.acquire"]
        helds = [s for s in obs.spans if s.name == "lock.held"]
        assert acquires and len(acquires) == len(helds)
        by_key = {(s.tid, s.attrs["addr"]): s for s in acquires}
        for held in helds:
            acq = by_key[(held.tid, held.attrs["addr"])]
            # The held span begins where the acquire ended.
            assert held.start == acq.end
            assert held.end >= held.start

    def test_attribution_matches_span_durations(self):
        _, _, obs = observed_run()
        attribution = obs.attribution()
        for name in ("lock.acquire", "barrier.wait", "noc.msg"):
            spans = [s for s in obs.spans if s.name == name]
            assert attribution[name]["count"] == len(spans)
            assert attribution[name]["cycles"] == sum(
                s.duration for s in spans
            )

    def test_registry_includes_machine_stats_and_span_aggregates(self):
        _, result, obs = observed_run()
        names = {m.name for m in obs.registry.metrics()}
        assert "noc.latency" in names          # StatSet histogram
        assert "msa.entries_allocated" in names
        assert "obs.span.cycles" in names
        assert obs.registry.get("run.cycles").value == result.cycles
        noc = obs.registry.get("noc.latency")
        assert noc.kind == "histogram"
        assert noc.summary["count"] == result.noc_counters["messages_sent"]

    def test_omu_timeline_records_steers(self):
        _, result, obs = observed_run(
            config="msa-omu-1", kernel="fluidanimate", scale=0.2
        )
        steers = [t for t in obs.omu_timeline if t[2] == "steer"]
        assert len(steers) == result.msa_counters["omu_steered_sw"]
        incs = [t for t in obs.omu_timeline if t[2] == "inc"]
        assert len(incs) == result.msa_counters["omu_increments"]
        cycles = [t[0] for t in obs.omu_timeline]
        assert cycles == sorted(cycles)

    def test_phase_spans_nest(self):
        machine = build_machine("msa-omu-2", n_cores=4, seed=2015)
        collector = Collector.attach(machine)
        with collector.phase("build"):
            with collector.phase("inner"):
                pass
        result = run_workload(
            machine, KERNELS["streamcluster"](4, 0.05), config="msa-omu-2"
        )
        obs = collector.finalize()
        phases = [s for s in obs.spans if s.name == "phase"]
        labels = {s.attrs["label"]: s for s in phases}
        assert labels["inner"].parent == labels["build"].sid
        assert labels["build"].parent == obs.spans[0].sid
        assert result.cycles > 0

    def test_span_retention_cap_keeps_aggregates_exact(self):
        _, result, obs = observed_run(span_limit=10)
        assert obs.dropped_spans  # tiny cap must drop something
        name, dropped = next(iter(sorted(obs.dropped_spans.items())))
        retained = sum(1 for s in obs.spans if s.name == name)
        assert retained == 10
        # The histogram still saw every span.
        assert obs.attribution()[name]["count"] == retained + dropped
        total = obs.registry.get("obs.span.dropped", span=name)
        assert total.value == dropped

    def test_double_attach_rejected(self):
        machine = build_machine("msa-omu-2", n_cores=4, seed=2015)
        Collector.attach(machine)
        with pytest.raises(ValueError):
            Collector.attach(machine)

    def test_finalize_twice_rejected(self):
        machine = build_machine("msa-omu-2", n_cores=4, seed=2015)
        collector = Collector.attach(machine)
        collector.finalize()
        with pytest.raises(ValueError):
            collector.finalize()


# ---------------------------------------------------------------------------
# Determinism: observation is passive
# ---------------------------------------------------------------------------
class TestPassiveObservation:
    def run_point(self, observe, checkers=(), checkers_first=False):
        machine = build_machine("msa-omu-2", n_cores=4, seed=2015)
        collector = None
        if checkers and checkers_first:
            machine.attach_checkers()
        if observe:
            collector = Collector.attach(machine)
        result = run_workload(
            machine,
            KERNELS["streamcluster"](4, 0.05),
            config="msa-omu-2",
            checkers=checkers if not checkers_first else True,
        )
        if collector is not None:
            collector.finalize()
        return machine, result

    def test_collector_does_not_perturb_run(self):
        m0, r0 = self.run_point(observe=False)
        m1, r1 = self.run_point(observe=True)
        assert r0.to_json() == r1.to_json()
        assert m0.sim.events_processed == m1.sim.events_processed

    def test_collector_and_checkers_share_probe_both_orders(self):
        m0, r0 = self.run_point(observe=False)
        m1, r1 = self.run_point(observe=True, checkers=True)
        m2, r2 = self.run_point(observe=True, checkers=True,
                                checkers_first=True)
        assert r0.cycles == r1.cycles == r2.cycles
        assert r1.check_report["ok"] and r2.check_report["ok"]
        assert m1.probe is m1.collector.machine.probe
        assert m2.checker_suite.probe is m2.probe

    def test_unobserved_machine_has_no_probe(self):
        machine = build_machine("msa-omu-2", n_cores=4, seed=2015)
        assert machine.probe is None
        assert machine.collector is None
        assert machine.network.probe is None


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
class TestExporters:
    def test_span_jsonl_round_trip(self, tmp_path):
        _, _, obs = observed_run()
        path = tmp_path / "spans.jsonl"
        text = obs.to_jsonl(str(path))
        assert path.read_text() == text
        assert spans_from_jsonl(text) == obs.spans

    def test_jsonl_drop_metadata_line(self):
        spans = [Span(1, "run", "run", 0, 5)]
        text = spans_to_jsonl(spans, dropped={"noc.msg": 7})
        meta = json.loads(text.splitlines()[-1])
        assert meta == {"meta": "obs.spans", "dropped": {"noc.msg": 7}}
        assert spans_from_jsonl(text) == spans

    def test_chrome_trace_schema_valid(self, tmp_path):
        _, _, obs = observed_run()
        path = tmp_path / "trace.json"
        data = json.loads(obs.to_chrome_trace(str(path)))
        events = data["traceEvents"]
        assert events
        for e in events:
            assert isinstance(e["pid"], int), e
            assert isinstance(e["tid"], int), e
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for e in complete:
            assert e["dur"] >= 0
        processes = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert {"obs.run", "obs.sync", "obs.msa", "obs.noc"} <= processes

    def test_chrome_trace_open_spans_become_instants(self):
        spans = [Span(1, "run", "run", 0, None)]
        data = json.loads(spans_to_chrome_trace(spans))
        instants = [e for e in data["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1 and "dur" not in instants[0]

    def test_prometheus_export_from_run(self, tmp_path):
        _, _, obs = observed_run()
        path = tmp_path / "metrics.prom"
        text = obs.registry.to_prometheus(str(path))
        assert path.read_text() == text
        # Every non-comment line is "name{labels} value" parseable.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name.startswith("repro_")
            float(value)


# ---------------------------------------------------------------------------
# api facade
# ---------------------------------------------------------------------------
class TestApiObserve:
    def test_observe_returns_result_and_obs(self):
        from repro import api

        result, obs = api.observe(
            "msa-omu-2", "streamcluster", cores=4, scale=0.05
        )
        assert result.config == "msa-omu-2"
        assert result.cycles > 0
        assert obs.spans and obs.registry.get("run.cycles") is not None

    def test_package_root_exports(self):
        import repro

        assert repro.observe is not None
        assert repro.report is not None
