"""The horizon-sharded kernel (:mod:`repro.sim.shard`).

Three layers of checks:

* **Unit**: the tile-group partition, the conservative-lookahead
  derivation, and the calendar kernel's scheduling/drain contract
  (exception safety, ``max_events``, ``run_chunk``).
* **Kernel differential**: a randomized event program executed on the
  legacy heap and the sharded calendar must fire its callbacks in the
  *exact same total order* -- the bit-identical claim, checked at the
  event level rather than through aggregate counters.
* **Machine differential**: full machines (an open-loop traffic
  workload and a chaos/fault-injection run) built under both kernels
  must agree on every simulated observable, and sharded runs must
  report zero conservative-lookahead violations.
"""

from __future__ import annotations

import random

import pytest

from repro.common import config as repro_config
from repro.common.errors import ConfigError, SimulationError
from repro.common.params import NocParams
from repro.faults import FaultPlan, MessageFault
from repro.harness.configs import build_machine
from repro.harness.runner import run_workload
from repro.machine import resolve_sim_mode
from repro.sim.kernel import Simulator
from repro.sim.shard import (
    DEFAULT_GROUP_BLOCK,
    ShardedSimulator,
    TileGroups,
    conservative_lookahead,
)
from repro.traffic.workload import make_traffic
from repro.workloads.kernels import KERNELS


# ----------------------------------------------------------------------
# Tile groups
# ----------------------------------------------------------------------
def test_tile_groups_partition_the_mesh():
    groups = TileGroups.for_mesh(64)
    assert groups.n_groups == 4  # 8x8 mesh, 4x4 blocks
    seen = set()
    for group in range(groups.n_groups):
        tiles = groups.tiles_in(group)
        assert tiles, f"group {group} is empty"
        assert not seen & set(tiles), "groups overlap"
        seen.update(tiles)
    assert seen == set(range(64))


def test_tile_groups_are_contiguous_blocks():
    groups = TileGroups.for_mesh(64)
    side, block = 8, DEFAULT_GROUP_BLOCK
    for t in range(64):
        x, y = t % side, t // side
        expected = (y // block) * groups.group_side + (x // block)
        assert groups.group_of[t] == expected


def test_tile_groups_scale_with_mesh_size():
    assert TileGroups.for_mesh(16).n_groups == 1  # 4x4 fits one block
    assert TileGroups.for_mesh(256).n_groups == 16  # 16x16 / 4x4
    assert TileGroups.for_mesh(4, block=1).n_groups == 4


def test_tile_groups_reject_bad_block():
    with pytest.raises(SimulationError):
        TileGroups(16, 4, block=0)


# ----------------------------------------------------------------------
# Conservative lookahead
# ----------------------------------------------------------------------
def test_lookahead_is_min_cross_group_noc_latency():
    noc = NocParams()
    expected = noc.injection_latency + max(
        1, noc.link_latency + noc.flits_per_message - 1
    ) + noc.router_latency
    assert conservative_lookahead(noc, 4) == expected


def test_lookahead_degenerates_with_one_group():
    assert conservative_lookahead(NocParams(), 1) == 1


# ----------------------------------------------------------------------
# Kernel differential: exact event order
# ----------------------------------------------------------------------
def _random_program(sim, log, rng, depth=0):
    """Schedule a seed-driven tangle of events that re-schedule more
    events (including same-cycle ones), recording fire order."""

    def fire(tag):
        log.append((sim.now, tag))
        if depth < 3 and rng.random() < 0.55:
            _random_program(sim, log, rng, depth + 1)

    for i in range(rng.randrange(1, 5)):
        tag = rng.randrange(1_000_000)
        delay = rng.choice((0, 0, 1, 2, 3, 7, rng.randrange(20)))
        if rng.random() < 0.5:
            sim.schedule(delay, fire, tag)
        else:
            sim.schedule(delay, lambda t=tag: fire(t))


@pytest.mark.parametrize("seed", range(8))
def test_sharded_fires_events_in_exact_legacy_order(seed):
    logs = []
    for sim in (Simulator(), ShardedSimulator()):
        log = []
        _random_program(sim, log, random.Random(seed))
        sim.run()
        logs.append((log, sim.events_processed))
    assert logs[0] == logs[1]


@pytest.mark.parametrize("chunk", (1, 2, 3, 257))
def test_chunked_drain_replays_monolithic_order(chunk):
    """run_chunk boundaries may fall mid-bucket; consecutive chunks must
    still replay the exact monolithic drain order (the watchdog drives
    the kernel this way)."""
    mono_log, mono_sim = [], ShardedSimulator()
    _random_program(mono_sim, mono_log, random.Random(99))
    mono_sim.run()

    chunk_log, chunk_sim = [], ShardedSimulator()
    _random_program(chunk_sim, chunk_log, random.Random(99))
    total = 0
    while True:
        ran = chunk_sim.run_chunk(chunk)
        if ran == 0:
            break
        assert ran <= chunk
        total += ran
    assert chunk_log == mono_log
    assert total == mono_sim.events_processed == chunk_sim.events_processed


def test_mid_bucket_exception_requeues_remainder():
    sim = ShardedSimulator()
    log = []

    def boom():
        log.append("boom")
        raise RuntimeError("injected")

    sim.schedule(0, log.append, "a")
    sim.schedule(0, boom)
    sim.schedule(0, log.append, "b")
    with pytest.raises(RuntimeError):
        sim.run()
    # The raising event was consumed; the unexecuted remainder stays
    # queued in order, exactly like unpopped heap events.
    assert log == ["a", "boom"]
    assert sim.events_processed == 2
    assert sim.pending_events == 1
    sim.run()
    assert log == ["a", "boom", "b"]


def test_max_events_matches_legacy_semantics():
    for sim in (Simulator(), ShardedSimulator()):
        for _ in range(5):
            sim.schedule(0, lambda: None)
        with pytest.raises(SimulationError):
            sim.run(max_events=3)
        assert sim.events_processed == 3
        assert sim.pending_events == 2


def test_until_stops_the_clock_without_draining():
    for sim in (Simulator(), ShardedSimulator()):
        log = []
        sim.schedule(5, log.append, "early")
        sim.schedule(50, log.append, "late")
        assert sim.run(until=10) == 10
        assert log == ["early"]
        assert sim.pending_events == 1


def test_sharding_info_reports_batch_density():
    groups = TileGroups.for_mesh(64)
    sim = ShardedSimulator(groups, conservative_lookahead(NocParams(), 4))
    for i in range(10):
        sim.schedule(i % 2, lambda: None)
    sim.run()
    info = sim.sharding_info()
    assert info["mode"] == "sharded"
    assert info["n_groups"] == 4
    assert info["lookahead"] >= 1
    assert info["buckets_drained"] == 2
    assert info["batch_density"] == 5.0


# ----------------------------------------------------------------------
# Mode selection
# ----------------------------------------------------------------------
def test_auto_mode_thresholds():
    assert resolve_sim_mode(4, "auto") == "legacy"
    assert resolve_sim_mode(16, "auto") == "sharded"
    assert resolve_sim_mode(256, "auto") == "sharded"
    assert resolve_sim_mode(256, "legacy") == "legacy"
    assert resolve_sim_mode(4, "sharded") == "sharded"


def test_mode_knob_rejects_typos():
    with pytest.raises(ConfigError):
        repro_config.sim_sharding("bogus")


def test_mode_env_knob_selects_kernel(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SHARDING", "legacy")
    machine = build_machine("msa-omu-2", n_cores=64)
    assert not isinstance(machine.sim, ShardedSimulator)
    monkeypatch.setenv("REPRO_SIM_SHARDING", "sharded")
    machine = build_machine("msa-omu-2", n_cores=64)
    assert isinstance(machine.sim, ShardedSimulator)


# ----------------------------------------------------------------------
# Machine differential: sharded vs legacy, byte-identical
# ----------------------------------------------------------------------
def _machine_snapshot(machine, result) -> dict:
    latency = machine.network.stats.histogram("latency")
    return {
        "cycles": result.cycles,
        "events": machine.sim.events_processed,
        "noc": dict(sorted(result.noc_counters.items())),
        "msa": dict(sorted(result.msa_counters.items())),
        "sync": dict(sorted(result.sync_unit_counters.items())),
        "latency_count": latency.count,
        "latency_total": latency.total,
    }


def test_traffic_workload_identical_across_kernels():
    """Open-loop traffic exercises the zero-latency couplings (futex
    wakes, queue futures) that make merged-order draining mandatory."""
    snaps = {}
    for mode in ("legacy", "sharded"):
        machine = build_machine(
            "msa-omu-2", n_cores=16, seed=2015, sim_mode=mode
        )
        result = run_workload(machine, make_traffic(16, 0.5))
        snaps[mode] = _machine_snapshot(machine, result)
        if mode == "sharded":
            info = machine.sharding_info()
            assert info["mode"] == "sharded"
            assert info["lookahead_violations"] == 0
    assert snaps["legacy"] == snaps["sharded"]


def test_chaos_run_identical_across_kernels():
    """Fault injection (drops, retransmissions, duplicate suppression)
    is seed-driven off the same RNG in both kernels, so even a chaos
    run must be bit-identical across modes -- and fault delays only add
    latency, so the lookahead stays conservative."""
    outcomes = {}
    for mode in ("legacy", "sharded"):
        plan = FaultPlan(
            seed=9,
            messages=(MessageFault(kind_prefix="msa", drop_prob=0.10),),
        )
        machine = build_machine(
            "msa-omu-2", n_cores=16, seed=21, fault_plan=plan, sim_mode=mode
        )
        lock = machine.allocator.sync_var()
        counter = machine.allocator.line()

        def body(th):
            for _ in range(8):
                yield from th.lock(lock)
                value = yield from th.load(counter)
                yield from th.store(counter, value + 1)
                yield from th.unlock(lock)

        for _ in range(6):
            machine.scheduler.spawn(body)
        machine.run(max_events=10_000_000)
        outcomes[mode] = {
            "cycles": machine.sim.now,
            "events": machine.sim.events_processed,
            "faults": dict(sorted(machine.fault_counters().items())),
            "value": machine.memory.peek(counter),
        }
        if mode == "sharded":
            assert machine.sharding_info()["lookahead_violations"] == 0
    assert outcomes["legacy"] == outcomes["sharded"]
    assert outcomes["sharded"]["value"] == 6 * 8
    assert outcomes["sharded"]["faults"]["msgs_dropped"] > 0


def test_parsec_kernel_identical_across_kernels():
    """A 64-core run (4 tile groups, real cross-group traffic) on a
    paper workload: full counter equality plus validated lookahead."""
    snaps = {}
    for mode in ("legacy", "sharded"):
        machine = build_machine(
            "msa-omu-2", n_cores=64, seed=2015, sim_mode=mode
        )
        result = run_workload(machine, KERNELS["streamcluster"](64, 0.5))
        snaps[mode] = _machine_snapshot(machine, result)
    assert snaps["legacy"] == snaps["sharded"]


def test_sharded_watchdog_chunked_machine_run_matches_monolithic():
    """Machine-level chunked drain (how the watchdog drives long runs):
    same workload, one machine drained monolithically and one in
    257-event chunks, identical outcome."""

    def outcome(chunked: bool) -> dict:
        machine = build_machine(
            "msa-omu-2", n_cores=16, seed=2015, sim_mode="sharded"
        )
        lock = machine.allocator.sync_var()
        counter = machine.allocator.line()

        def body(th):
            for _ in range(5):
                yield from th.lock(lock)
                value = yield from th.load(counter)
                yield from th.store(counter, value + 1)
                yield from th.unlock(lock)

        for _ in range(4):
            machine.scheduler.spawn(body)
        if chunked:
            while machine.sim.run_chunk(257):
                pass
        else:
            machine.run(max_events=10_000_000)
        return {
            "cycles": machine.sim.now,
            "events": machine.sim.events_processed,
            "value": machine.memory.peek(counter),
        }

    assert outcome(chunked=False) == outcome(chunked=True)
