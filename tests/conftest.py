"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.params import MachineParams
from repro.harness.configs import build_machine
from repro.machine import Machine


@pytest.fixture
def sim():
    from repro.sim.kernel import Simulator

    return Simulator()


@pytest.fixture
def machine16():
    """A default 16-core MSA/OMU-2 machine."""
    return build_machine("msa-omu-2", n_cores=16)


@pytest.fixture
def pthread16():
    return build_machine("pthread", n_cores=16)


def drain(machine: Machine, max_events: int = 5_000_000) -> int:
    """Run a machine's simulation to completion."""
    return machine.run(max_events=max_events)


def run_threads(machine: Machine, bodies, max_events: int = 5_000_000) -> int:
    """Spawn bodies (callables taking a ThreadCtx) and run to completion."""
    for body in bodies:
        machine.scheduler.spawn(body)
    cycles = machine.run(max_events=max_events)
    machine.check_invariants()
    return cycles
