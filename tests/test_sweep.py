"""Tests for the sweep/CSV utilities."""

import pytest

from repro.harness.sweep import add_speedups, from_csv, sweep, to_csv
from repro.workloads.kernels import KERNELS


@pytest.fixture(scope="module")
def points():
    factories = {"streamcluster": KERNELS["streamcluster"]}
    pts = sweep(
        configs=("pthread", "msa-omu-2"),
        workload_factories=factories,
        cores=(16,),
        scale=0.25,
    )
    add_speedups(pts, baseline_config="pthread")
    return pts


class TestSweep:
    def test_grid_size(self, points):
        assert len(points) == 2

    def test_speedup_annotation(self, points):
        by_config = {p.config: p for p in points}
        assert by_config["pthread"].extras["speedup"] == 1.0
        assert by_config["msa-omu-2"].extras["speedup"] > 1.0

    def test_machine_hook_called(self):
        seen = []
        sweep(
            configs=("pthread",),
            workload_factories={"barnes": KERNELS["barnes"]},
            cores=(16,),
            scale=0.25,
            machine_hook=lambda m: seen.append(m.params.n_cores),
        )
        assert seen == [16]


class TestCsv:
    def test_round_trip(self, points, tmp_path):
        path = tmp_path / "sweep.csv"
        text = to_csv(points, path=str(path))
        assert path.read_text() == text
        rows = from_csv(text)
        assert len(rows) == 2
        assert {r["config"] for r in rows} == {"pthread", "msa-omu-2"}
        assert float(rows[0]["cycles"]) > 0

    def test_coverage_column_blank_for_software(self, points):
        rows = from_csv(to_csv(points))
        by_config = {r["config"]: r for r in rows}
        assert by_config["pthread"]["msa_coverage"] == ""
        assert float(by_config["msa-omu-2"]["msa_coverage"]) > 0
