"""Tests for the sweep/CSV utilities."""

import pytest

from repro.harness.runner import RunResult
from repro.harness.sweep import (
    SweepPoint,
    add_speedups,
    from_csv,
    sweep,
    to_csv,
)
from repro.workloads.kernels import KERNELS


@pytest.fixture(scope="module")
def points():
    factories = {"streamcluster": KERNELS["streamcluster"]}
    pts = sweep(
        configs=("pthread", "msa-omu-2"),
        workload_factories=factories,
        cores=(16,),
        scale=0.25,
    )
    add_speedups(pts, baseline_config="pthread")
    return pts


class TestSweep:
    def test_grid_size(self, points):
        assert len(points) == 2

    def test_speedup_annotation(self, points):
        by_config = {p.config: p for p in points}
        assert by_config["pthread"].extras["speedup"] == 1.0
        assert by_config["msa-omu-2"].extras["speedup"] > 1.0

    def test_machine_hook_called(self):
        seen = []
        sweep(
            configs=("pthread",),
            workload_factories={"barnes": KERNELS["barnes"]},
            cores=(16,),
            scale=0.25,
            machine_hook=lambda m: seen.append(m.params.n_cores),
        )
        assert seen == [16]


class TestCsv:
    def test_round_trip(self, points, tmp_path):
        path = tmp_path / "sweep.csv"
        text = to_csv(points, path=str(path))
        assert path.read_text() == text
        rows = from_csv(text)
        assert len(rows) == 2
        assert {r["config"] for r in rows} == {"pthread", "msa-omu-2"}
        assert float(rows[0]["cycles"]) > 0

    def test_coverage_column_blank_for_software(self, points):
        rows = from_csv(to_csv(points))
        by_config = {r["config"]: r for r in rows}
        assert by_config["pthread"]["msa_coverage"] == ""
        assert float(by_config["msa-omu-2"]["msa_coverage"]) > 0

    def test_all_extras_become_columns(self, points):
        points[0].extras["noc_sensitivity"] = 2.5
        try:
            rows = from_csv(to_csv(points))
        finally:
            del points[0].extras["noc_sensitivity"]
        header_extras = {
            k for k in rows[0] if k not in (
                "config", "workload", "n_cores", "scale", "cycles",
                "msa_coverage",
            )
        }
        assert header_extras == {"speedup", "noc_sensitivity"}
        assert float(rows[0]["noc_sensitivity"]) == 2.5
        # Points without that extra get a blank cell, not a crash.
        assert rows[1]["noc_sensitivity"] == ""


def _point(config, cycles, workload="w", n_cores=16):
    return SweepPoint(
        config=config,
        workload=workload,
        n_cores=n_cores,
        scale=1.0,
        result=RunResult(config, workload, n_cores, cycles, None),
    )


class TestAddSpeedups:
    def test_zero_cycle_baseline_warns_instead_of_silently_dropping(self):
        points = [_point("base", 0), _point("fast", 100)]
        with pytest.warns(RuntimeWarning, match="0 cycles"):
            add_speedups(points, baseline_config="base")
        assert "speedup" not in points[1].extras

    def test_zero_cycle_point_warns(self):
        points = [_point("base", 100), _point("fast", 0)]
        with pytest.warns(RuntimeWarning, match="0 cycles"):
            add_speedups(points, baseline_config="base")
        assert "speedup" not in points[1].extras

    def test_missing_baseline_grid_point_is_skipped_quietly(self):
        points = [
            _point("base", 100, n_cores=16),
            _point("fast", 50, n_cores=64),
        ]
        add_speedups(points, baseline_config="base")
        assert "speedup" not in points[1].extras


class TestRunResultJson:
    def test_round_trip(self, points):
        result = points[0].result
        clone = RunResult.from_json(result.to_json())
        assert clone == result
        assert clone.to_json() == result.to_json()

    def test_unknown_keys_ignored(self):
        result = RunResult("c", "w", 16, 100, None)
        blob = result.to_json().replace("{", '{"future_field": 1, ', 1)
        assert RunResult.from_json(blob) == result
