"""Tests for the repro.perf benchmark/regression subsystem.

The compare() gate is what CI trusts, so these tests pin its three
verdicts exactly: identical documents pass, an injected throughput
regression fails, and any change to simulated results (cycles/events)
is a hard determinism failure regardless of throughput.
"""

import copy
import json

import pytest

from repro.perf import (
    SUITES,
    BenchPoint,
    compare,
    load_doc,
    measure_point,
    render_table,
    write_doc,
)


def _doc(points, calibration=20_000.0, label="test"):
    return {
        "schema": "repro.perf/1",
        "label": label,
        "python": "3.x",
        "platform": "test",
        "calibration_kops": calibration,
        "points": points,
    }


def _point(key, cycles=1000, events=5000, eps=100_000.0):
    return {
        "key": key,
        "cycles": cycles,
        "events": events,
        "events_per_sec": eps,
        "wall_s": events / eps,
    }


class TestBenchPoint:
    def test_parse_full_spec(self):
        p = BenchPoint.parse("msa-omu-2:streamcluster:64:8.0")
        assert p == BenchPoint("msa-omu-2", "streamcluster", 64, 8.0)

    def test_parse_defaults(self):
        assert BenchPoint.parse("pthread:canneal") == BenchPoint(
            "pthread", "canneal", 16, 1.0
        )

    def test_parse_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            BenchPoint.parse("just-a-config")

    def test_key_roundtrips_through_suites(self):
        keys = {p.key for suite in SUITES.values() for p in suite}
        assert len(keys) == sum(len(s) for s in SUITES.values())


class TestCompareGate:
    def test_identical_documents_pass(self):
        doc = _doc([_point("a/b/c16/s1"), _point("x/y/c64/s2")])
        result = compare(doc, copy.deepcopy(doc))
        assert result.ok
        assert result.regressions == []
        assert result.determinism_breaks == []
        assert "ok: no events/sec regression" in result.describe()

    def test_injected_throughput_regression_fails(self):
        old = _doc([_point("a/b/c16/s1", eps=100_000.0)])
        new = _doc([_point("a/b/c16/s1", eps=50_000.0)])
        result = compare(new, old, threshold=0.15)
        assert not result.ok
        assert result.regressions == ["a/b/c16/s1"]
        assert "REGRESSION" in "\n".join(result.lines)

    def test_small_slowdown_within_threshold_passes(self):
        old = _doc([_point("a/b/c16/s1", eps=100_000.0)])
        new = _doc([_point("a/b/c16/s1", eps=90_000.0)])
        assert compare(new, old, threshold=0.15).ok

    def test_cycles_change_is_hard_determinism_failure(self):
        old = _doc([_point("a/b/c16/s1", cycles=1000)])
        new = _doc([_point("a/b/c16/s1", cycles=999, eps=1e9)])
        result = compare(new, old)
        assert not result.ok
        assert result.determinism_breaks == ["a/b/c16/s1"]
        assert "DETERMINISM" in result.describe()

    def test_events_change_is_hard_determinism_failure(self):
        old = _doc([_point("a/b/c16/s1", events=5000)])
        new = _doc([_point("a/b/c16/s1", events=5001)])
        assert compare(new, old).determinism_breaks == ["a/b/c16/s1"]

    def test_host_calibration_normalizes_baseline(self):
        # Same simulator speed on a 2x slower host: halved events/sec
        # must NOT read as a regression.
        old = _doc([_point("a/b/c16/s1", eps=100_000.0)], calibration=40_000)
        new = _doc([_point("a/b/c16/s1", eps=50_000.0)], calibration=20_000)
        result = compare(new, old)
        assert result.host_ratio == pytest.approx(0.5)
        assert result.ok

    def test_unmatched_points_reported_but_never_fail(self):
        old = _doc([_point("a/b/c16/s1")])
        new = _doc([_point("a/b/c16/s1"), _point("new/p/c16/s1")])
        result = compare(new, old)
        assert result.ok
        assert result.unmatched == ["new/p/c16/s1"]


class TestDocIO:
    def test_write_then_load_roundtrip(self, tmp_path):
        doc = _doc([_point("a/b/c16/s1")])
        path = str(tmp_path / "bench.json")
        write_doc(doc, path)
        assert load_doc(path)["points"] == doc["points"]

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "points": []}))
        with pytest.raises(ValueError):
            load_doc(str(path))

    def test_render_table_with_baseline_speedup_column(self):
        old = _doc([_point("a/b/c16/s1", eps=100_000.0)])
        new = _doc([_point("a/b/c16/s1", eps=200_000.0)])
        table = render_table(new, baseline=old)
        assert "speedup" in table
        assert "2.00x" in table


@pytest.mark.slow
def test_checked_in_headline_fingerprints_are_live(repo_root=None):
    """The committed BENCH_PR4.json must describe *this* simulator: re-run
    a cheap headline point and require the identical simulated results."""
    import os

    path = os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "BENCH_PR4.json"
    )
    doc = load_doc(path)
    key = "ideal/streamcluster/c64/s8"
    committed = next(p for p in doc["points"] if p["key"] == key)
    live = measure_point(BenchPoint("ideal", "streamcluster", 64, 8.0), repeat=1)
    assert (live["cycles"], live["events"]) == (
        committed["cycles"],
        committed["events"],
    )


class TestMeasurePoint:
    def test_tiny_point_measures_and_fingerprints(self):
        # Small enough for a unit test; repeat=2 exercises the built-in
        # determinism assertion across fresh machines.
        record = measure_point(
            BenchPoint("msa0", "streamcluster", 4, 0.1), repeat=2
        )
        assert record["cycles"] > 0
        assert record["events"] > 0
        assert record["events_per_sec"] > 0
        assert record["repeats"] == 2
        assert record["key"] == "msa0/streamcluster/c4/s0.1"
