"""repro.dse: spaces, strategies, cost model, Pareto extraction, and
the explore driver's caching contract.

The end-to-end tests use a deliberately tiny grid (4 cores, scale 0.2,
one kernel) so a full explore() is a handful of sub-second runs; the
properties under test -- determinism, survivor selection, zero
re-evaluation on resume -- do not depend on grid size.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import api
from repro.common.errors import ConfigError
from repro.dse import (
    CostModel,
    DseResult,
    GridStrategy,
    HalvingStrategy,
    RandomStrategy,
    SpaceSpec,
    dominates,
    explore,
    pareto_front,
    pareto_indices,
    resolve_strategy,
)
from repro.harness.configs import machine_params


def tiny_space(**over):
    """A 2-design space cheap enough for end-to-end tests."""
    defaults = dict(
        config="msa-omu-2",
        workloads=("streamcluster",),
        cores=(4,),
        scale=0.2,
    )
    defaults.update(over)
    return SpaceSpec.make({"msa.entries_per_tile": [1, 2]}, **defaults)


class TestSpaceSpec:
    def test_designs_are_the_cartesian_product_first_axis_slowest(self):
        space = SpaceSpec.make(
            {"msa.entries_per_tile": [1, 2], "omu.enabled": [True, False]}
        )
        assert space.designs() == [
            {"msa.entries_per_tile": 1, "omu.enabled": True},
            {"msa.entries_per_tile": 1, "omu.enabled": False},
            {"msa.entries_per_tile": 2, "omu.enabled": True},
            {"msa.entries_per_tile": 2, "omu.enabled": False},
        ]

    def test_scalar_axis_values_are_promoted(self):
        space = SpaceSpec.make({"msa.entries_per_tile": 4})
        assert space.designs() == [{"msa.entries_per_tile": 4}]

    @pytest.mark.parametrize("axis", ["n_cores", "seed"])
    def test_grid_dimensions_are_not_axes(self, axis):
        with pytest.raises(ConfigError):
            SpaceSpec.make({axis: [1, 2]})

    def test_unknown_workload_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            SpaceSpec.make(
                {"msa.entries_per_tile": [1]}, workloads=("no_such_kernel",)
            )

    def test_unknown_axis_name_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            SpaceSpec.make({"msa.no_such_field": [1, 2]})

    def test_non_square_core_count_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            tiny_space(cores=(6,))

    def test_hash_ignores_the_name_label_only(self):
        a = tiny_space(name="one")
        b = tiny_space(name="two")
        assert a.space_hash() == b.space_hash()
        assert a.space_hash() != tiny_space(scale=0.3).space_hash()

    def test_round_trips_through_dict(self):
        space = tiny_space(name="rt")
        again = SpaceSpec.from_dict(space.to_dict())
        assert again == space
        assert again.space_hash() == space.space_hash()

    def test_resolved_applies_the_design(self):
        space = tiny_space()
        params = space.resolved({"msa.entries_per_tile": 1}, 4)
        assert params.msa.entries_per_tile == 1
        assert params.n_cores == 4


class TestStrategies:
    def test_grid_runs_every_design_at_full_scale(self):
        space = tiny_space(scale=0.7)
        rung = GridStrategy().first_rung(space)
        assert rung.designs == space.designs()
        assert rung.scale == 0.7
        assert GridStrategy().next_rung(space, rung, [1.0, 1.0]) is None

    def test_random_sample_is_a_pure_function_of_the_seed(self):
        space = SpaceSpec.make({"msa.entries_per_tile": [1, 2, 4]})
        a = RandomStrategy(n=2, seed=7).first_rung(space).designs
        b = RandomStrategy(n=2, seed=7).first_rung(space).designs
        assert a == b
        assert len(a) == 2
        for design in a:
            assert design in space.designs()
        # Unseeded, the space's own seed drives the sample.
        c = RandomStrategy(n=2).first_rung(space).designs
        assert c == RandomStrategy(n=2).first_rung(space).designs

    def test_random_n_at_least_space_size_keeps_everything(self):
        space = tiny_space()
        rung = RandomStrategy(n=99).first_rung(space)
        assert rung.designs == space.designs()

    def test_halving_scale_ladder_ends_at_full_scale(self):
        space = tiny_space(scale=1.0)
        strat = HalvingStrategy(eta=2, rungs=3)
        rung = strat.first_rung(space)
        scales = [rung.scale]
        while True:
            rung = strat.next_rung(space, rung, [1.0] * len(rung.designs))
            if rung is None:
                break
            scales.append(rung.scale)
        assert scales == [0.25, 0.5, 1.0]

    def test_halving_promotes_top_scores_and_breaks_ties_by_order(self):
        space = SpaceSpec.make({"msa.entries_per_tile": [1, 2, 4, 8]})
        strat = HalvingStrategy(eta=2, rungs=2)
        rung = strat.first_rung(space)
        # Tie between designs 0 and 2: the stable sort keeps design 0.
        nxt = strat.next_rung(space, rung, [1.5, 1.0, 1.5, 0.5])
        assert [d["msa.entries_per_tile"] for d in nxt.designs] == [1, 4]
        assert strat.next_rung(space, nxt, [1.0, 1.0]) is None

    def test_halving_survivor_count_is_ceil_n_over_eta(self):
        space = SpaceSpec.make({"msa.entries_per_tile": [1, 2, 4]})
        strat = HalvingStrategy(eta=2, rungs=2)
        rung = strat.first_rung(space)
        nxt = strat.next_rung(space, rung, [3.0, 2.0, 1.0])
        assert len(nxt.designs) == math.ceil(3 / 2)

    def test_halving_rejects_score_design_mismatch(self):
        space = tiny_space()
        strat = HalvingStrategy(eta=2, rungs=2)
        with pytest.raises(ConfigError):
            strat.next_rung(space, strat.first_rung(space), [1.0])

    def test_resolve_strategy_accepts_name_class_and_instance(self):
        assert isinstance(resolve_strategy("grid"), GridStrategy)
        assert resolve_strategy("halving", rungs=2).rungs == 2
        assert isinstance(resolve_strategy(RandomStrategy), RandomStrategy)
        inst = HalvingStrategy()
        assert resolve_strategy(inst) is inst

    def test_resolve_strategy_rejects_unknown_and_stray_kwargs(self):
        with pytest.raises(ConfigError):
            resolve_strategy("annealing")
        with pytest.raises(ConfigError):
            resolve_strategy(GridStrategy(), rungs=2)


class TestPareto:
    def test_dominated_points_are_dropped(self):
        pts = [
            {"speedup": 2.0, "cost": 100.0},
            {"speedup": 1.5, "cost": 40.0},
            {"speedup": 1.4, "cost": 90.0},  # dominated by both
        ]
        objs = (("speedup", "max"), ("cost", "min"))
        assert pareto_indices(pts, objs) == [0, 1]
        assert pareto_front(pts, objs) == pts[:2]

    def test_exact_ties_all_survive(self):
        pts = [{"s": 1.0, "c": 5.0}, {"s": 1.0, "c": 5.0}]
        assert pareto_indices(pts, (("s", "max"), ("c", "min"))) == [0, 1]

    def test_degenerate_single_objective(self):
        pts = [{"s": 1.0}, {"s": 3.0}, {"s": 2.0}]
        assert pareto_indices(pts, (("s", "max"),)) == [1]
        assert pareto_indices(pts, (("s", "min"),)) == [0]

    def test_missing_values_rank_worst(self):
        pts = [{"s": 1.0, "c": 5.0}, {"s": None, "c": 5.0},
               {"s": float("nan"), "c": 5.0}]
        assert pareto_indices(pts, (("s", "max"), ("c", "min"))) == [0]

    def test_empty_objectives_rejected(self):
        with pytest.raises(ConfigError):
            pareto_indices([{"s": 1.0}], ())

    def test_dominates_is_strict_over_signed_vectors(self):
        assert dominates((2.0, 5.0), (1.0, 5.0))
        assert not dominates((1.0, 5.0), (1.0, 5.0))  # equal: no
        assert not dominates((2.0, 4.0), (1.0, 5.0))  # trade-off: no


class TestCostModel:
    def test_msa_omu_2_breakdown_matches_hand_arithmetic(self):
        params, _ = machine_params("msa-omu-2", 16)
        model = CostModel()
        # Entry = 46 tag + 4 FSM + 16x1 HWQueue bits + 8 aux = 74 bits;
        # 16 tiles x 2 entries; OMU = 16 x 4 counters x 8 bits.
        breakdown = model.breakdown(params)
        assert breakdown["msa_bits"] == 16 * 2 * 74
        assert breakdown["omu_bits"] == 16 * 4 * 8
        assert breakdown["noc_links"] == 2 * 4 * 3
        assert breakdown["total"] == (
            breakdown["msa_bits"]
            + breakdown["omu_bits"]
            + breakdown["noc_links"] * model.link_bits
        )

    def test_software_configs_pay_only_the_mesh(self):
        params, _ = machine_params("pthread", 16)
        breakdown = CostModel().breakdown(params)
        assert breakdown["msa_bits"] == 0
        assert breakdown["omu_bits"] == 0
        assert breakdown["total"] == 24 * CostModel().link_bits

    def test_msa_inf_is_charged_the_upper_bound(self):
        params, _ = machine_params("msa-inf", 16)
        assert params.msa.entries_per_tile is None
        assert CostModel().breakdown(params)["msa_bits"] == 16 * 64 * 74

    def test_queue_bits_grow_with_core_count(self):
        small, _ = machine_params("msa-omu-2", 16)
        large, _ = machine_params("msa-omu-2", 64)
        model = CostModel()
        assert model.entry_bits(large) > model.entry_bits(small)

    def test_round_trips_through_dict(self):
        model = CostModel(inf_entries=32, link_bits=128.0)
        assert CostModel.from_dict(model.to_dict()) == model


class TestExplore:
    def test_grid_explore_end_to_end(self, tmp_path):
        space = tiny_space()
        result = explore(
            space, "grid", chaos_rate=0.0, cache_dir=str(tmp_path)
        )
        assert len(result.records) == 2
        assert all(r.final for r in result.records)
        assert result.pareto_records  # a non-empty front always exists
        assert result.rung_sizes == [2]
        assert all(r.speedup > 0 for r in result.records)
        assert all(r.cost > 0 for r in result.records)
        # The document landed at the content-hash path and round-trips.
        assert result.path is not None
        loaded = DseResult.load(result.path)
        assert loaded.to_dict() == result.to_dict()

    def test_rerun_is_pure_cache_no_reevaluation(self, tmp_path):
        space = tiny_space()
        first = explore(
            space, "grid", chaos_rate=0.0, cache_dir=str(tmp_path)
        )
        assert first.stats.executed > 0
        again = explore(
            space, "grid", chaos_rate=0.0, cache_dir=str(tmp_path)
        )
        assert again.stats.executed == 0
        assert again.stats.hit_rate == 1.0
        assert [r.speedup for r in again.records] == [
            r.speedup for r in first.records
        ]

    def test_halving_records_eliminated_designs_outside_the_front(
        self, tmp_path
    ):
        space = tiny_space()
        result = explore(
            space, "halving", rungs=2, chaos_rate=0.0,
            cache_dir=str(tmp_path),
        )
        assert result.rung_sizes == [2, 1]
        finals = result.final_records
        assert len(finals) == 1
        eliminated = [r for r in result.records if not r.final]
        assert len(eliminated) == 1
        assert eliminated[0].rung == 0
        assert not eliminated[0].pareto

    def test_chaos_pass_scores_final_survivors(self, tmp_path):
        space = tiny_space()
        result = explore(
            space, "grid", chaos_rate=0.05, cache_dir=str(tmp_path)
        )
        assert result.objectives() == (
            ("speedup", "max"), ("cost", "min"), ("chaos", "min")
        )
        assert all(r.chaos is not None for r in result.final_records)

    def test_chaos_objective_is_refused_with_a_server(self):
        with pytest.raises(ConfigError):
            explore(tiny_space(), server="http://127.0.0.1:1", chaos_rate=0.02)

    def test_csv_covers_axes_and_objectives(self, tmp_path):
        result = explore(
            tiny_space(), "grid", chaos_rate=0.0, cache_dir=str(tmp_path)
        )
        out = tmp_path / "dse.csv"
        text = result.to_csv(str(out))
        assert out.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0].startswith("msa.entries_per_tile,speedup,cost")
        assert len(lines) == 1 + len(result.records)
        assert "" not in lines[1].split(",")[:3]  # no holes in objectives

    def test_api_dse_accepts_a_bare_axes_mapping(self, tmp_path):
        result = api.dse(
            {"msa.entries_per_tile": [1, 2]},
            config="msa-omu-2",
            workloads=("streamcluster",),
            cores=(4,),
            scale=0.2,
            chaos_rate=0.0,
            cache_dir=str(tmp_path),
        )
        assert len(result.records) == 2
        # The persisted document is discoverable for the HTML report.
        docs = list((tmp_path / "dse").glob("*.json"))
        assert len(docs) == 1
        assert json.loads(docs[0].read_text())["schema"] == "repro.dse/1"
