"""Tests for configuration parsing and machine assembly."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    CacheParams,
    MachineParams,
    MSAParams,
    NocParams,
    OMUParams,
)
from repro.harness.configs import CONFIG_NAMES, build_machine, machine_params
from repro.msa.isa import MODE_ALWAYS_FAIL, MODE_HW, MODE_IDEAL


class TestParamValidation:
    def test_non_square_core_count_rejected(self):
        with pytest.raises(ConfigError):
            MachineParams(n_cores=12).validate()

    def test_non_power_of_two_line_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheParams(line_size=48).validate()

    def test_negative_noc_latency_rejected(self):
        with pytest.raises(ConfigError):
            NocParams(router_latency=-1).validate()

    def test_omu_needs_counters(self):
        with pytest.raises(ConfigError):
            OMUParams(n_counters=0).validate()

    def test_msa_inf_is_infinite(self):
        assert MSAParams(entries_per_tile=None).is_infinite
        assert not MSAParams(entries_per_tile=2).is_infinite

    def test_with_returns_modified_copy(self):
        base = MachineParams(n_cores=16)
        changed = base.with_(n_cores=64)
        assert changed.n_cores == 64 and base.n_cores == 16

    def test_mesh_side(self):
        assert MachineParams(n_cores=64).mesh_side == 8


class TestConfigNames:
    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_every_advertised_config_builds(self, name):
        machine = build_machine(name, n_cores=16)
        assert machine.params.n_cores == 16

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigError):
            machine_params("msa-omu-banana")

    def test_msa_omu_entry_counts(self):
        for entries in (1, 2, 4, 8):
            params, lib = machine_params(f"msa-omu-{entries}")
            assert params.msa.entries_per_tile == entries
            assert lib == "hybrid"

    def test_noopt_disables_hwsync(self):
        params, _ = machine_params("msa-omu-2-noopt")
        assert not params.msa.hwsync_opt
        params, _ = machine_params("msa-omu-2")
        assert params.msa.hwsync_opt

    def test_bloom_variant(self):
        params, _ = machine_params("msa-omu-2-bloom")
        assert params.omu.use_bloom

    def test_no_omu_variant(self):
        params, _ = machine_params("msa-2-no-omu")
        assert not params.omu.enabled

    def test_type_restricted_variants(self):
        lockonly, _ = machine_params("msa-lockonly-2")
        assert lockonly.msa.lock_support
        assert not lockonly.msa.barrier_support
        assert not lockonly.msa.condvar_support
        barrieronly, _ = machine_params("msa-barrieronly-4")
        assert barrieronly.msa.barrier_support
        assert not barrieronly.msa.lock_support
        assert barrieronly.msa.entries_per_tile == 4

    def test_software_configs_have_no_msa(self):
        for name in ("pthread", "spinlock", "mcs-tour", "msa0"):
            params, _ = machine_params(name)
            assert params.msa is None

    def test_ideal_flag(self):
        params, _ = machine_params("ideal")
        assert params.ideal_sync


class TestMachineAssembly:
    def test_sync_unit_modes(self):
        assert build_machine("msa-omu-2").sync_mode == MODE_HW
        assert build_machine("msa0").sync_mode == MODE_ALWAYS_FAIL
        assert build_machine("pthread").sync_mode == MODE_ALWAYS_FAIL
        assert build_machine("ideal").sync_mode == MODE_IDEAL

    def test_msa_slices_one_per_tile(self):
        m = build_machine("msa-omu-2", n_cores=16)
        assert len(m.msa_slices) == 16
        m = build_machine("pthread", n_cores=16)
        assert m.msa_slices == []

    def test_coverage_none_without_msa(self):
        assert build_machine("pthread").msa_coverage() is None

    def test_library_names(self):
        assert build_machine("pthread").sync_library.name == "pthread"
        assert build_machine("mcs-tour").sync_library.name == "mcs-tour"
        assert "hybrid" in build_machine("msa-omu-2").sync_library.name

    def test_determinism_same_seed_same_cycles(self):
        from repro.harness.runner import run_workload
        from repro.workloads.kernels import KERNELS

        def run_once():
            m = build_machine("msa-omu-2", n_cores=16, seed=7)
            return run_workload(m, KERNELS["radiosity"](16, 0.3)).cycles

        assert run_once() == run_once()

    def test_different_seed_may_differ_but_valid(self):
        from repro.harness.runner import run_workload
        from repro.workloads.kernels import KERNELS

        for seed in (1, 2):
            m = build_machine("msa-omu-2", n_cores=16, seed=seed)
            result = run_workload(m, KERNELS["cholesky"](16, 0.3))
            assert result.cycles > 0
