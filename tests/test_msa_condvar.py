"""Integration tests: MSA condition-variable protocol (section 4.3),
including the UNLOCK&PIN / LOCK&UNPIN lock-pinning handshake."""

import pytest

from repro.common.types import SyncOp, SyncResult, SyncType
from repro.harness.configs import build_machine
from tests.conftest import run_threads


def entry_of(machine, addr):
    return machine.msa_slice(machine.memory.amap.home_of(addr)).entry_for(addr)


def producer_consumer(m, n_consumers=3, items=4, signal="signal"):
    """Classic condvar workload; returns (consumed_log, shared_addrs)."""
    lock = m.allocator.sync_var()
    cond = m.allocator.sync_var()
    queue_len = m.allocator.line()
    consumed = []

    def consumer(th):
        for _ in range(items):
            yield from th.lock(lock)
            while True:
                n = yield from th.load(queue_len)
                if n > 0:
                    break
                yield from th.cond_wait(cond, lock)
            yield from th.store(queue_len, n - 1)
            consumed.append((th.tid, th.sim.now))
            yield from th.unlock(lock)

    def producer(th):
        for _ in range(items * n_consumers):
            yield from th.compute(60)
            yield from th.lock(lock)
            n = yield from th.load(queue_len)
            yield from th.store(queue_len, n + 1)
            if signal == "signal":
                yield from th.cond_signal(cond)
            else:
                yield from th.cond_broadcast(cond)
            yield from th.unlock(lock)

    return [producer] + [consumer] * n_consumers, consumed, (lock, cond, queue_len)


class TestCondVarHardware:
    def test_signal_wakes_exactly_one_waiter(self, machine16):
        m = machine16
        bodies, consumed, _ = producer_consumer(m, n_consumers=3, items=4)
        run_threads(m, bodies)
        assert len(consumed) == 12

    def test_broadcast_wakes_all(self, machine16):
        m = machine16
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        woken = []

        def waiter(th):
            yield from th.lock(lock)
            while True:
                v = yield from th.load(flag)
                if v:
                    break
                yield from th.cond_wait(cond, lock)
            woken.append(th.tid)
            yield from th.unlock(lock)

        def broadcaster(th):
            yield from th.compute(2000)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from th.cond_broadcast(cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter] * 6 + [broadcaster])
        assert sorted(woken) == [0, 1, 2, 3, 4, 5]

    def test_waiter_holds_lock_on_return(self, machine16):
        m = machine16
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        holder_check = []

        def waiter(th):
            yield from th.lock(lock)
            yield from th.cond_wait(cond, lock)
            # We must own the lock here: the entry's owner is our core.
            entry = entry_of(m, lock)
            holder_check.append(entry is not None and entry.owner == th.core)
            yield from th.unlock(lock)

        def signaler(th):
            yield from th.compute(1500)
            yield from th.lock(lock)
            yield from th.cond_signal(cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter, signaler])
        assert holder_check == [True]

    def test_lock_released_while_waiting(self, machine16):
        """COND_WAIT must release the lock so others can take it."""
        m = machine16
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        progress = []

        def waiter(th):
            yield from th.lock(lock)
            yield from th.cond_wait(cond, lock)
            yield from th.unlock(lock)

        def worker(th):
            yield from th.compute(800)
            yield from th.lock(lock)  # must not deadlock
            progress.append(th.sim.now)
            yield from th.cond_signal(cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter, worker])
        assert progress

    def test_signal_with_no_waiter_fails_to_software_noop(self, machine16):
        m = machine16
        cond = m.allocator.sync_var()
        results = []

        def body(th):
            r = yield from th.sync(SyncOp.COND_SIGNAL, cond)
            results.append(r)

        run_threads(m, [body])
        assert results == [SyncResult.FAIL]

    def test_lock_entry_pinned_while_condvar_active(self, machine16):
        m = machine16
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        observed = []

        def waiter(th):
            yield from th.lock(lock)
            yield from th.cond_wait(cond, lock)
            yield from th.unlock(lock)

        def observer(th):
            yield from th.compute(1200)
            lock_entry = entry_of(m, lock)
            cond_entry = entry_of(m, cond)
            observed.append(
                (
                    lock_entry is not None and lock_entry.pin_count,
                    cond_entry is not None and cond_entry.sync_type,
                )
            )
            yield from th.lock(lock)
            yield from th.cond_signal(cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter, observer])
        assert observed == [(1, SyncType.CONDVAR)]

    def test_pin_released_after_last_waiter(self, machine16):
        m = machine16
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()

        def waiter(th):
            yield from th.lock(lock)
            yield from th.cond_wait(cond, lock)
            yield from th.unlock(lock)

        def signaler(th):
            yield from th.compute(1500)
            yield from th.lock(lock)
            yield from th.cond_signal(cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter, signaler])
        assert entry_of(m, cond) is None
        lock_entry = entry_of(m, lock)
        assert lock_entry is None or lock_entry.pin_count == 0

    def test_cond_wait_fails_when_lock_in_software(self):
        """Figure 4: a condvar whose lock is software-managed must be
        handled in software too."""
        m = build_machine("msa-omu-2", n_cores=16)
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        results = []
        # Force the lock into software via OMU.
        m.msa_slice(m.memory.amap.home_of(lock)).omu.increment(lock)

        def waiter(th):
            yield from th.lock(lock)  # FAILs -> software lock
            r = yield from th.sync(SyncOp.COND_WAIT, cond, aux=lock)
            results.append(r)
            if r is SyncResult.FAIL:
                # Software path: just release and finish.
                yield from th.unlock(lock)
                yield from th.sync(SyncOp.FINISH, cond)

        run_threads(m, [waiter])
        assert results == [SyncResult.FAIL]
        assert entry_of(m, cond) is None


class TestCondVarSoftwareAndHybrid:
    @pytest.mark.parametrize(
        "config", ["pthread", "msa0", "msa-omu-2", "msa-inf", "ideal"]
    )
    def test_producer_consumer_all_configs(self, config):
        m = build_machine(config, n_cores=16)
        bodies, consumed, (lock, cond, qlen) = producer_consumer(
            m, n_consumers=3, items=3
        )
        run_threads(m, bodies)
        assert len(consumed) == 9
        assert m.memory.peek(qlen) == 0
        assert m.omu_totals() == 0

    @pytest.mark.parametrize("config", ["pthread", "msa-omu-2"])
    def test_broadcast_all_configs(self, config):
        m = build_machine(config, n_cores=16)
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        woken = []

        def waiter(th):
            yield from th.lock(lock)
            while True:
                v = yield from th.load(flag)
                if v:
                    break
                yield from th.cond_wait(cond, lock)
            woken.append(th.tid)
            yield from th.unlock(lock)

        def broadcaster(th):
            yield from th.compute(3000)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from th.cond_broadcast(cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter] * 5 + [broadcaster])
        assert len(woken) == 5

    def test_condvar_overflow_to_software(self):
        """1-entry slices: condvar entries compete with the lock entry;
        the workload must still complete correctly."""
        m = build_machine("msa-omu-1", n_cores=16)
        bodies, consumed, _ = producer_consumer(m, n_consumers=2, items=3)
        run_threads(m, bodies)
        assert len(consumed) == 6
        assert m.omu_totals() == 0
