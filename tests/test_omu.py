"""Unit tests for the Overflow Management Unit (counters and counting
Bloom filter)."""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.common.params import OMUParams
from repro.common.stats import StatSet
from repro.msa.omu import CountingBloomOmu, OverflowManagementUnit, make_omu


def counter_omu(n_counters=4, **kwargs):
    return OverflowManagementUnit(
        OMUParams(n_counters=n_counters, **kwargs), StatSet("t")
    )


def bloom_omu(n_counters=16, hashes=2):
    return CountingBloomOmu(
        OMUParams(n_counters=n_counters, use_bloom=True, bloom_hashes=hashes),
        StatSet("t"),
    )


ADDR = 0x1000


class TestCounters:
    def test_fresh_omu_inactive(self):
        omu = counter_omu()
        assert not omu.is_active(ADDR)

    def test_increment_marks_active(self):
        omu = counter_omu()
        omu.increment(ADDR)
        assert omu.is_active(ADDR)

    def test_balanced_decrement_clears(self):
        omu = counter_omu()
        omu.increment(ADDR, 3)
        omu.decrement(ADDR)
        assert omu.is_active(ADDR)
        omu.decrement(ADDR, 2)
        assert not omu.is_active(ADDR)

    def test_aliasing_same_counter(self):
        """Addresses whose lines differ by a multiple of n_counters alias
        (untagged indexing): activity on one steers the other to SW."""
        omu = counter_omu(n_counters=4)
        alias = ADDR + 4 * 64  # 4 lines away with 4 counters
        omu.increment(ADDR)
        assert omu.is_active(alias)

    def test_distinct_counters_independent(self):
        omu = counter_omu(n_counters=4)
        other = ADDR + 64  # next line, different counter
        omu.increment(ADDR)
        assert not omu.is_active(other)

    def test_underflow_clamped_and_counted(self):
        omu = counter_omu()
        omu.decrement(ADDR)
        assert not omu.is_active(ADDR)
        assert omu.stats.counter("omu_underflows").value == 1

    def test_saturation_at_counter_max(self):
        omu = counter_omu(counter_bits=2)  # max 3
        omu.increment(ADDR, 100)
        assert omu.snapshot()[(ADDR >> 6) % 4] == 3

    def test_total_sums_counters(self):
        omu = counter_omu(n_counters=4)
        omu.increment(ADDR)
        omu.increment(ADDR + 64, 2)
        assert omu.total == 3


class TestBloom:
    def test_no_false_negatives(self):
        omu = bloom_omu()
        omu.increment(ADDR)
        assert omu.is_active(ADDR)

    def test_bloom_reduces_aliasing(self):
        """With k=2 hashes over 16 counters, a single active address
        rarely makes another address read active."""
        omu = bloom_omu(n_counters=16, hashes=2)
        omu.increment(ADDR)
        others = [ADDR + i * 64 for i in range(1, 40)]
        false_positives = sum(omu.is_active(a) for a in others)
        simple = counter_omu(n_counters=16)
        simple.increment(ADDR)
        simple_fp = sum(simple.is_active(a) for a in others)
        assert false_positives <= simple_fp

    def test_balanced_ops_clear_bloom(self):
        omu = bloom_omu()
        addrs = [ADDR + i * 64 for i in range(10)]
        for a in addrs:
            omu.increment(a)
        for a in addrs:
            omu.decrement(a)
        for a in addrs:
            assert not omu.is_active(a)

    def test_factory_selects_variant(self):
        assert isinstance(
            make_omu(OMUParams(use_bloom=True), StatSet("t")), CountingBloomOmu
        )
        made = make_omu(OMUParams(), StatSet("t"))
        assert isinstance(made, OverflowManagementUnit)
        assert not isinstance(made, CountingBloomOmu)


class TestStickySaturation:
    """The saturation hazard: an untagged saturating counter that loses
    increments must never count back down to a false 'inactive'."""

    def test_saturate_then_decrement_stays_active(self):
        omu = counter_omu(counter_bits=2)  # max 3
        omu.increment(ADDR, 10)  # 7 increments lost at the ceiling
        for _ in range(10):
            omu.decrement(ADDR)
        # Pre-fix this read inactive after 3 decrements while 7 software
        # operations were still outstanding.
        assert omu.is_active(ADDR)
        assert omu.stats.counter("omu_saturations").value == 1
        assert omu.stats.counter("omu_sticky_holds").value == 10
        assert omu.saturated_counters() == 1

    def test_exact_fill_is_not_sticky(self):
        omu = counter_omu(counter_bits=2)
        omu.increment(ADDR, 3)  # reaches max exactly; nothing lost
        omu.decrement(ADDR, 3)
        assert not omu.is_active(ADDR)
        assert omu.stats.counter("omu_saturations").value == 0
        assert omu.saturated_counters() == 0

    def test_saturation_counted_once_per_counter(self):
        omu = counter_omu(counter_bits=2)
        omu.increment(ADDR, 10)
        omu.increment(ADDR, 10)
        assert omu.stats.counter("omu_saturations").value == 1

    def test_reset_drains_sticky_state(self):
        omu = counter_omu(counter_bits=2)
        omu.increment(ADDR, 100)
        omu.reset()
        assert not omu.is_active(ADDR)
        assert omu.saturated_counters() == 0
        omu.increment(ADDR)
        omu.decrement(ADDR)
        assert not omu.is_active(ADDR)
        assert omu.stats.counter("omu_resets").value == 1


@settings(max_examples=50, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 7), st.booleans()), min_size=1, max_size=100
    ),
    use_bloom=st.booleans(),
)
def test_property_active_whenever_software_activity_outstanding(events, use_bloom):
    """The safety property the MSA relies on: while any address has more
    increments than decrements, is_active(addr) must be True (no false
    'inactive').  Decrements are only applied when legal (balance > 0),
    mirroring how FINISH/UNLOCK pair with earlier failures."""
    params = OMUParams(n_counters=8, use_bloom=use_bloom)
    omu = make_omu(params, StatSet("t"))
    balance = {}
    for slot, is_inc in events:
        addr = 0x4000 + slot * 64
        if is_inc:
            omu.increment(addr)
            balance[addr] = balance.get(addr, 0) + 1
        elif balance.get(addr, 0) > 0:
            omu.decrement(addr)
            balance[addr] -= 1
        for a, b in balance.items():
            if b > 0:
                assert omu.is_active(a)


@settings(max_examples=80, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 5), st.booleans()), min_size=1, max_size=200
    ),
    use_bloom=st.booleans(),
)
# The canonical hazard: saturate a 2-bit counter (4 increments, one
# lost), then decrement three times -- pre-fix the counter reads zero
# with one operation still outstanding.  Pinned so the regression is
# deterministic, not at the mercy of random generation.
@example(events=[(0, True)] * 4 + [(0, False)] * 3, use_bloom=False)
@example(events=[(0, True)] * 4 + [(0, False)] * 3, use_bloom=True)
# Aliased slots (0 and 4 share a counter with n_counters=4): combined
# activity saturates, decrements on one address uncover the other.
@example(
    events=[(0, True)] * 2 + [(4, True)] * 2 + [(4, False)] * 2 + [(0, False)],
    use_bloom=False,
)
def test_property_no_false_inactive_past_saturation(events, use_bloom):
    """Regression for the saturation hazard, on both OMU variants.

    With 2-bit counters, four or more outstanding operations saturate a
    counter; before sticky saturation the lost increments let decrements
    walk the counter to zero while the exact reference map still showed
    live software activity -- a false 'inactive' that let the MSA
    allocate an entry over a live software lock.  Any interleaving of
    increment/decrement must keep every address with a positive exact
    balance reading active."""
    params = OMUParams(
        n_counters=4, counter_bits=2, use_bloom=use_bloom, bloom_hashes=2
    )
    omu = make_omu(params, StatSet("t"))
    balance = {}
    for slot, is_inc in events:
        addr = 0x4000 + slot * 64
        if is_inc:
            omu.increment(addr)
            balance[addr] = balance.get(addr, 0) + 1
        elif balance.get(addr, 0) > 0:
            omu.decrement(addr)
            balance[addr] -= 1
        for a, b in balance.items():
            if b > 0:
                assert omu.is_active(a), (
                    f"false 'inactive' for {a:#x} with {b} outstanding "
                    f"software operation(s)"
                )
