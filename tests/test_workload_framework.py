"""Tests for the workload framework itself: setup/validate hooks, the
controller process, metrics recording, and error reporting."""

import pytest

from repro.common.errors import WorkloadError
from repro.harness.configs import build_machine
from repro.harness.runner import run_workload
from repro.workloads.base import Workload, WorkloadEnv


def trivial_body(th):
    yield from th.compute(10)


class TestHooks:
    def test_setup_hook_runs_before_threads(self):
        order = []

        def setup(env):
            order.append("setup")
            env.shared["lock"] = env.allocator.sync_var()

        def make(env):
            order.append("make")
            assert "lock" in env.shared
            return [trivial_body]

        wl = Workload(
            name="t", n_threads=1, make_threads=make, setup_fn=setup
        )
        run_workload(build_machine("pthread", n_cores=4), wl)
        assert order == ["setup", "make"]

    def test_validate_hook_failure_raises(self):
        wl = Workload(
            name="t",
            n_threads=1,
            make_threads=lambda env: [trivial_body],
            validate_fn=lambda env: env.expect(False, "boom"),
        )
        with pytest.raises(WorkloadError, match="boom"):
            run_workload(build_machine("pthread", n_cores=4), wl)

    def test_validate_skipped_without_check(self):
        wl = Workload(
            name="t",
            n_threads=1,
            make_threads=lambda env: [trivial_body],
            validate_fn=lambda env: env.expect(False, "boom"),
        )
        result = run_workload(
            build_machine("pthread", n_cores=4), wl, check=False
        )
        assert result.cycles >= 0

    def test_wrong_body_count_rejected(self):
        wl = Workload(
            name="t", n_threads=2, make_threads=lambda env: [trivial_body]
        )
        with pytest.raises(WorkloadError, match="expected 2 bodies"):
            run_workload(build_machine("pthread", n_cores=4), wl)

    def test_too_many_threads_rejected(self):
        wl = Workload(
            name="t", n_threads=9, make_threads=lambda env: [trivial_body] * 9
        )
        with pytest.raises(WorkloadError, match="hardware thread contexts"):
            run_workload(build_machine("pthread", n_cores=4), wl)

    def test_metrics_recorded(self):
        def make(env):
            env.record("custom_metric", 42.5)
            return [trivial_body]

        wl = Workload(name="t", n_threads=1, make_threads=make)
        result = run_workload(build_machine("pthread", n_cores=4), wl)
        assert result.workload_metrics["custom_metric"] == 42.5


class TestController:
    def test_controller_drives_scheduler_events(self):
        """A workload controller process can inject suspensions: the
        canonical use is scripted OS interference."""

        def make(env):
            lock = env.allocator.sync_var()
            env.shared["lock"] = lock
            log = env.shared.setdefault("log", [])

            def holder(th):
                yield from th.lock(lock)
                yield from th.compute(2000)
                yield from th.unlock(lock)

            def waiter(th):
                yield from th.compute(100)
                yield from th.lock(lock)
                log.append(th.sim.now)
                yield from th.unlock(lock)

            return [holder, waiter]

        def controller(env):
            # Suspend the waiter mid-wait, resume later.
            yield 600
            waiter_thread = env.machine.scheduler.threads[1]
            env.machine.scheduler.suspend(waiter_thread)
            yield 3000
            env.machine.scheduler.resume(waiter_thread)

        wl = Workload(
            name="scripted",
            n_threads=2,
            make_threads=make,
            controller=controller,
        )
        machine = build_machine("msa-omu-2", n_cores=16)
        result = run_workload(machine, wl)
        log = machine.scheduler.contexts  # threads completed
        assert result.cycles >= 3600
        assert machine.msa_counters().get("lock_suspends", 0) == 1
