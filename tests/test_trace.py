"""Tests for the structured tracing subsystem."""

import pytest

from repro.harness.configs import build_machine
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceEvent, Tracer
from tests.conftest import run_threads


class TestTracerUnit:
    def test_disabled_by_default(self):
        tracer = Tracer(Simulator())
        tracer.record("msa", "x", "y")
        assert tracer.events == []
        assert not tracer.active

    def test_enable_records_only_that_category(self):
        tracer = Tracer(Simulator())
        tracer.enable("msa")
        tracer.record("msa", "slice0", "allocate", "lock")
        tracer.record("sched", "thread0", "suspend")
        assert len(tracer.events) == 1
        assert tracer.events[0].what == "allocate"

    def test_disable_specific_and_all(self):
        tracer = Tracer(Simulator())
        tracer.enable("a", "b")
        tracer.disable("a")
        tracer.record("a", "x", "y")
        tracer.record("b", "x", "y")
        assert len(tracer.events) == 1
        tracer.disable()
        tracer.record("b", "x", "y")
        assert len(tracer.events) == 1

    def test_capacity_drops_counted(self):
        tracer = Tracer(Simulator(), max_events=3)
        tracer.enable("t")
        for _ in range(5):
            tracer.record("t", "x", "y")
        assert len(tracer.events) == 3
        assert tracer.dropped == 2
        assert "dropped" in tracer.format()

    def test_filter_and_counts(self):
        tracer = Tracer(Simulator())
        tracer.enable("t")
        tracer.record("t", "a", "open")
        tracer.record("t", "a", "close")
        tracer.record("t", "b", "open")
        assert len(tracer.filter(where="a")) == 2
        assert len(tracer.filter(what="open")) == 2
        assert tracer.counts()[("t", "open")] == 2

    def test_event_str_contains_fields(self):
        event = TraceEvent(42, "msa", "slice3", "respond", ("success",))
        text = str(event)
        assert "42" in text and "msa" in text and "respond" in text


class TestMachineTracing:
    def test_msa_events_traced(self, machine16):
        m = machine16
        m.tracer.enable("msa")
        addr = m.allocator.sync_var()

        def body(th):
            yield from th.lock(addr)
            yield from th.unlock(addr)

        run_threads(m, [body])
        whats = {e.what for e in m.tracer.events}
        assert "allocate" in whats
        assert "respond" in whats

    def test_scheduler_events_traced(self):
        m = build_machine("msa-omu-2", n_cores=16)
        m.tracer.enable("sched")

        def body(th):
            yield from th.compute(5000)

        t = m.scheduler.spawn(body, core=0)
        m.sim.schedule(100, lambda: m.scheduler.suspend(t))
        m.sim.schedule(900, lambda: m.scheduler.resume(t, core=5))
        m.run()
        whats = [e.what for e in m.tracer.events]
        assert whats == ["suspend", "migrate"]

    def test_tracing_off_costs_nothing_visible(self):
        """Runs with tracing disabled produce identical cycle counts to
        a machine that never had a tracer touched."""
        from repro.harness.runner import run_workload
        from repro.workloads.kernels import KERNELS

        def run(enable):
            m = build_machine("msa-omu-2", n_cores=16, seed=3)
            if enable:
                m.tracer.enable("msa")
            return run_workload(m, KERNELS["streamcluster"](16, 0.25)).cycles

        assert run(False) == run(True)
