"""Tests for the structured tracing subsystem."""

import pytest

from repro.harness.configs import build_machine
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceEvent, Tracer
from tests.conftest import run_threads


class TestTracerUnit:
    def test_disabled_by_default(self):
        tracer = Tracer(Simulator())
        tracer.record("msa", "x", "y")
        assert tracer.events == []
        assert not tracer.active

    def test_enable_records_only_that_category(self):
        tracer = Tracer(Simulator())
        tracer.enable("msa")
        tracer.record("msa", "slice0", "allocate", "lock")
        tracer.record("sched", "thread0", "suspend")
        assert len(tracer.events) == 1
        assert tracer.events[0].what == "allocate"

    def test_disable_specific_and_all(self):
        tracer = Tracer(Simulator())
        tracer.enable("a", "b")
        tracer.disable("a")
        tracer.record("a", "x", "y")
        tracer.record("b", "x", "y")
        assert len(tracer.events) == 1
        tracer.disable()
        tracer.record("b", "x", "y")
        assert len(tracer.events) == 1

    def test_capacity_drops_counted(self):
        tracer = Tracer(Simulator(), max_events=3)
        tracer.enable("t")
        for _ in range(5):
            tracer.record("t", "x", "y")
        assert len(tracer.events) == 3
        assert tracer.dropped == 2
        assert "dropped" in tracer.format()

    def test_filter_and_counts(self):
        tracer = Tracer(Simulator())
        tracer.enable("t")
        tracer.record("t", "a", "open")
        tracer.record("t", "a", "close")
        tracer.record("t", "b", "open")
        assert len(tracer.filter(where="a")) == 2
        assert len(tracer.filter(what="open")) == 2
        assert tracer.counts()[("t", "open")] == 2

    def test_event_str_contains_fields(self):
        event = TraceEvent(42, "msa", "slice3", "respond", ("success",))
        text = str(event)
        assert "42" in text and "msa" in text and "respond" in text


class TestMachineTracing:
    def test_msa_events_traced(self, machine16):
        m = machine16
        m.tracer.enable("msa")
        addr = m.allocator.sync_var()

        def body(th):
            yield from th.lock(addr)
            yield from th.unlock(addr)

        run_threads(m, [body])
        whats = {e.what for e in m.tracer.events}
        assert "allocate" in whats
        assert "respond" in whats

    def test_scheduler_events_traced(self):
        m = build_machine("msa-omu-2", n_cores=16)
        m.tracer.enable("sched")

        def body(th):
            yield from th.compute(5000)

        t = m.scheduler.spawn(body, core=0)
        m.sim.schedule(100, lambda: m.scheduler.suspend(t))
        m.sim.schedule(900, lambda: m.scheduler.resume(t, core=5))
        m.run()
        whats = [e.what for e in m.tracer.events]
        assert whats == ["suspend", "migrate"]

    def test_tracing_off_costs_nothing_visible(self):
        """Runs with tracing disabled produce identical cycle counts to
        a machine that never had a tracer touched."""
        from repro.harness.runner import run_workload
        from repro.workloads.kernels import KERNELS

        def run(enable):
            m = build_machine("msa-omu-2", n_cores=16, seed=3)
            if enable:
                m.tracer.enable("msa")
            return run_workload(m, KERNELS["streamcluster"](16, 0.25)).cycles

        assert run(False) == run(True)


class TestExport:
    def _tracer(self):
        import json  # noqa: F401  (exercised below)

        sim = Simulator()
        tracer = Tracer(sim)
        tracer.enable("msa", "sync")
        sim.now = 10
        tracer.record("msa", "slice0", "allocate", 0x4000, "lock")
        sim.now = 25
        tracer.record("sync", "core1", "lock_acq", 0x4000)
        sim.now = 40
        tracer.record("msa", "slice0", "respond", "success")
        return tracer

    def test_jsonl_roundtrip(self, tmp_path):
        import json

        tracer = self._tracer()
        path = tmp_path / "trace.jsonl"
        text = tracer.to_jsonl(str(path))
        assert path.read_text() == text
        records = [json.loads(line) for line in text.splitlines()]
        assert [r["time"] for r in records] == [10, 25, 40]
        assert records[0]["category"] == "msa"
        assert records[0]["where"] == "slice0"
        assert records[0]["what"] == "allocate"
        assert records[0]["detail"] == [0x4000, "lock"]

    def test_jsonl_respects_filters(self):
        import json

        tracer = self._tracer()
        records = [
            json.loads(line)
            for line in tracer.to_jsonl(category="sync").splitlines()
        ]
        assert [r["what"] for r in records] == ["lock_acq"]

    def test_jsonl_reports_drops(self):
        import json

        sim = Simulator()
        tracer = Tracer(sim, max_events=2)
        tracer.enable("t")
        for _ in range(5):
            tracer.record("t", "x", "tick")
        lines = tracer.to_jsonl().splitlines()
        meta = json.loads(lines[-1])
        assert meta == {"meta": "tracer", "dropped": 3}
        assert tracer.counts()[("tracer", "dropped")] == 3

    def test_empty_tracer_exports_empty(self):
        sim = Simulator()
        tracer = Tracer(sim)
        assert tracer.to_jsonl() == ""

    def test_chrome_trace_structure(self, tmp_path):
        import json

        tracer = self._tracer()
        path = tmp_path / "trace.json"
        text = tracer.to_chrome_trace(str(path))
        assert path.read_text() == text
        data = json.loads(text)
        events = data["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        # One thread-name record per distinct `where`, plus the process
        # name, shared pid.
        assert {m["args"]["name"] for m in meta} == {
            "repro.tracer", "slice0", "core1",
        }
        assert len(instants) == 3
        by_name = {e["name"]: e for e in instants}
        assert by_name["allocate"]["ts"] == 10
        assert by_name["allocate"]["cat"] == "msa"
        assert by_name["lock_acq"]["tid"] != by_name["allocate"]["tid"]
        assert by_name["respond"]["args"]["detail"] == ["success"]

    def test_chrome_trace_schema_valid_with_drops(self):
        """Every record -- including the capacity-drop marker -- must
        carry integer pid/tid (viewers silently discard records without
        them), and drops must be visible in the export."""
        import json

        sim = Simulator()
        tracer = Tracer(sim, max_events=2)
        tracer.enable("t")
        for _ in range(5):
            tracer.record("t", "x", "tick")
        events = json.loads(tracer.to_chrome_trace())["traceEvents"]
        for e in events:
            assert isinstance(e["pid"], int), e
            assert isinstance(e["tid"], int), e
        markers = [e for e in events if e.get("cat") == "tracer"]
        assert len(markers) == 1
        assert markers[0]["args"]["dropped"] == 3
        assert markers[0]["ph"] == "i"
