"""Golden regression guards.

These pin down *relative* invariants that must survive refactoring
(determinism, monotonicity, conservation laws) without baking in exact
cycle numbers that legitimate timing-model changes would churn.
"""

import pytest

from repro.harness.configs import build_machine
from repro.harness.runner import run_workload
from repro.workloads.kernels import KERNELS


class TestDeterminism:
    @pytest.mark.parametrize("config", ["pthread", "msa-omu-2", "ideal"])
    def test_bit_identical_reruns(self, config):
        def run():
            m = build_machine(config, n_cores=16, seed=1234)
            r = run_workload(m, KERNELS["volrend"](16, 0.3))
            return (
                r.cycles,
                r.noc_counters["messages_sent"],
                tuple(sorted(r.msa_counters.items())),
            )

        assert run() == run()

    def test_seed_changes_schedule_but_not_results(self):
        cycles = set()
        for seed in (1, 2, 3):
            m = build_machine("msa-omu-2", n_cores=16, seed=seed)
            r = run_workload(m, KERNELS["canneal"](16, 0.3))
            cycles.add(r.cycles)
        # canneal's random swaps depend on the seed, so cycle counts
        # may differ -- but every run validated (run_workload checks).
        assert all(c > 0 for c in cycles)


class TestConservationLaws:
    def test_message_conservation(self):
        """Every injected NoC message is delivered exactly once."""
        m = build_machine("msa-omu-2", n_cores=16)
        r = run_workload(m, KERNELS["dedup"](16, 0.3))
        assert (
            r.noc_counters["messages_sent"]
            == r.noc_counters["messages_delivered"]
        )

    def test_omu_increment_decrement_balance(self):
        """Over a complete legal run, OMU increments equal decrements
        (underflows zero) across the whole suite sample."""
        for app in ("radiosity", "fluidanimate", "volrend"):
            m = build_machine("msa-omu-1", n_cores=16)
            r = run_workload(m, KERNELS[app](16, 0.3))
            c = r.msa_counters
            assert c.get("omu_increments", 0) == c.get("omu_decrements", 0), app
            assert c.get("omu_underflows", 0) == 0, app
            assert m.omu_totals() == 0, app

    def test_entry_alloc_free_balance(self):
        """With the OMU, entries allocated == freed + still-resident."""
        m = build_machine("msa-omu-2", n_cores=16)
        r = run_workload(m, KERNELS["cholesky"](16, 0.3))
        c = r.msa_counters
        resident = sum(len(s.entries) for s in m.msa_slices)
        allocated = c.get("entries_allocated", 0)
        gone = c.get("entries_freed", 0) + c.get("entries_evicted", 0)
        assert allocated == gone + resident

    def test_lock_grant_conservation(self):
        """Hardware lock grants + silent acquires == hardware-side
        acquisitions; every one is eventually released."""
        m = build_machine("msa-omu-2", n_cores=16)
        run_workload(m, KERNELS["fluidanimate"](16, 0.3))
        c = m.msa_counters()
        acquisitions = c.get("lock_grants", 0) + c.get("silent_acquires", 0)
        assert acquisitions > 0
        # At quiescence no lock is owned.
        for s in m.msa_slices:
            for entry in s.entries.values():
                assert entry.owner is None


class TestMonotonicity:
    def test_more_cores_more_total_work_cycles(self):
        """Per-thread-constant kernels: 64-core runs take at least as
        long as 16-core runs under software sync (more contention)."""
        small = build_machine("pthread", n_cores=16)
        big = build_machine("pthread", n_cores=64)
        c16 = run_workload(small, KERNELS["streamcluster"](16, 0.3)).cycles
        c64 = run_workload(big, KERNELS["streamcluster"](64, 0.3)).cycles
        assert c64 > c16

    def test_ideal_is_a_lower_bound(self):
        for app in ("raytrace", "water-sp", "bodytrack"):
            ideal = run_workload(
                build_machine("ideal", n_cores=16), KERNELS[app](16, 0.3)
            ).cycles
            for config in ("pthread", "msa-omu-2", "mcs-tour"):
                other = run_workload(
                    build_machine(config, n_cores=16), KERNELS[app](16, 0.3)
                ).cycles
                assert ideal <= other, (app, config)
