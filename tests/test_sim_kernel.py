"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.kernel import Delay, Future, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(10, lambda: order.append("b"))
        sim.schedule(5, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_cycle_events_fire_in_schedule_order(self, sim):
        order = []
        for tag in "abcde":
            sim.schedule(7, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_last_event(self, sim):
        sim.schedule(42, lambda: None)
        assert sim.run() == 42

    def test_zero_delay_runs_this_cycle(self, sim):
        seen = []
        sim.schedule(5, lambda: sim.schedule(0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_run_until_bounds_clock(self, sim):
        fired = []
        sim.schedule(10, lambda: fired.append(1))
        sim.schedule(100, lambda: fired.append(2))
        assert sim.run(until=50) == 50
        assert fired == [1]
        assert sim.pending_events == 1

    def test_max_events_guard(self, sim):
        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_nested_scheduling_from_callback(self, sim):
        seen = []
        sim.schedule(1, lambda: sim.schedule(2, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [3]


class TestFuture:
    def test_complete_resolves_value(self, sim):
        fut = Future(sim)
        fut.complete(42)
        assert fut.done and fut.value == 42

    def test_double_complete_rejected(self, sim):
        fut = Future(sim)
        fut.complete(1)
        with pytest.raises(SimulationError):
            fut.complete(2)

    def test_value_before_completion_rejected(self, sim):
        fut = Future(sim)
        with pytest.raises(SimulationError):
            _ = fut.value

    def test_complete_at_delay(self, sim):
        fut = Future(sim)
        seen = []
        fut.add_callback(lambda v: seen.append((sim.now, v)))
        fut.complete_at(13, "x")
        sim.run()
        assert seen == [(13, "x")]

    def test_callback_on_already_complete_future_fires_immediately(self, sim):
        fut = Future(sim)
        fut.complete("y")
        seen = []
        fut.add_callback(seen.append)
        assert seen == ["y"]


class TestProcess:
    def test_process_yields_int_delay(self, sim):
        marks = []

        def body():
            marks.append(sim.now)
            yield 10
            marks.append(sim.now)
            yield 5
            marks.append(sim.now)

        sim.process(body())
        sim.run()
        assert marks == [0, 10, 15]

    def test_process_yields_delay_object(self, sim):
        marks = []

        def body():
            yield Delay(7)
            marks.append(sim.now)

        sim.process(body())
        sim.run()
        assert marks == [7]

    def test_process_waits_on_future_and_receives_value(self, sim):
        fut = Future(sim)
        got = []

        def body():
            value = yield fut
            got.append((sim.now, value))

        sim.process(body())
        sim.schedule(30, lambda: fut.complete("payload"))
        sim.run()
        assert got == [(30, "payload")]

    def test_process_return_value_and_on_exit(self, sim):
        def body():
            yield 1
            return "done"

        proc = sim.process(body())
        sim.run()
        assert proc.finished and proc.result == "done"
        assert proc.on_exit.done and proc.on_exit.value == "done"

    def test_yield_from_composition(self, sim):
        log = []

        def inner():
            yield 5
            return "inner-result"

        def outer():
            result = yield from inner()
            log.append((sim.now, result))

        sim.process(outer())
        sim.run()
        assert log == [(5, "inner-result")]

    def test_bad_yield_type_raises(self, sim):
        def body():
            yield "not-a-valid-yield"

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_unfinished_process_listed(self, sim):
        fut = Future(sim)

        def body():
            yield fut

        proc = sim.process(body())
        sim.run()
        assert proc in sim.unfinished_processes()
        assert proc.blocked_on is fut


class TestDeterminism:
    def test_identical_runs_identical_event_counts(self):
        def build_and_run():
            sim = Simulator()
            results = []

            def worker(n):
                for _ in range(n):
                    yield n
                results.append((sim.now, n))

            for n in (3, 5, 7):
                sim.process(worker(n))
            sim.run()
            return sim.now, sim.events_processed, tuple(results)

        assert build_and_run() == build_and_run()
