"""Integration tests: thread suspension, resumption, and migration
(paper sections 4.1.2, 4.2.2, 4.3.2)."""

import pytest

from repro.common.types import SyncOp, SyncResult
from repro.harness.configs import build_machine
from tests.conftest import run_threads


def controller_process(machine, actions):
    """A sim process that performs (time, fn) scheduler actions."""

    def body():
        now = 0
        for when, fn in actions:
            if when > now:
                yield when - now
                now = when
            fn()

    return body


class TestLockSuspension:
    def test_suspended_waiter_dequeued_and_reacquires_after_resume(self):
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        log = []

        def holder(th):
            yield from th.lock(addr)
            yield from th.compute(3000)
            yield from th.unlock(addr)
            log.append(("holder_released", th.sim.now))

        def waiter(th):
            yield from th.compute(200)
            yield from th.lock(addr)  # blocks; suspended mid-wait
            log.append(("waiter_got", th.sim.now))
            yield from th.unlock(addr)

        t_holder = m.scheduler.spawn(holder, core=0)
        t_waiter = m.scheduler.spawn(waiter, core=1)
        m.sim.schedule(1000, lambda: m.scheduler.suspend(t_waiter))
        m.sim.schedule(5000, lambda: m.scheduler.resume(t_waiter))
        m.run(max_events=2_000_000)
        m.check_invariants()
        got = dict(log)
        # The waiter only gets the lock after it resumes (>= 5000),
        # even though the holder released at ~3000.
        assert got["waiter_got"] >= 5000
        assert m.msa_counters().get("lock_suspends", 0) == 1

    def test_waiter_migrates_and_reacquires_on_new_core(self):
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        cores_seen = []

        def holder(th):
            yield from th.lock(addr)
            yield from th.compute(2500)
            yield from th.unlock(addr)

        def waiter(th):
            yield from th.compute(100)
            yield from th.lock(addr)
            cores_seen.append(th.core)
            yield from th.unlock(addr)

        m.scheduler.spawn(holder, core=0)
        t_waiter = m.scheduler.spawn(waiter, core=1)
        m.sim.schedule(800, lambda: m.scheduler.suspend(t_waiter))
        m.sim.schedule(1500, lambda: m.scheduler.resume(t_waiter, core=9))
        m.run(max_events=2_000_000)
        m.check_invariants()
        assert cores_seen == [9]

    def test_owner_migration_unlock_from_other_core_aborts_waiters(self):
        """The paper's 4.1.2 scenario: the owner unlocks from a core
        whose HWQueue bit is not set; waiters get ABORT and fall back to
        software; the OMU keeps them safe."""
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        events = []

        def owner(th):
            yield from th.lock(addr)
            yield from th.compute(4000)  # suspended + migrated in here
            yield from th.unlock(addr)
            events.append(("owner_unlocked", th.core))

        def waiter(th):
            yield from th.compute(500)
            yield from th.lock(addr)
            events.append(("waiter_got", th.sim.now))
            yield from th.unlock(addr)

        t_owner = m.scheduler.spawn(owner, core=0)
        for c in (1, 2):
            m.scheduler.spawn(waiter, core=c)
        m.sim.schedule(1000, lambda: m.scheduler.suspend(t_owner))
        m.sim.schedule(1400, lambda: m.scheduler.resume(t_owner, core=7))
        m.run(max_events=2_000_000)
        m.check_invariants()
        tags = [tag for tag, _ in events]
        assert tags.count("waiter_got") == 2
        assert ("owner_unlocked", 7) in events
        assert m.msa_counters().get("migrated_unlocks", 0) == 1
        assert m.msa_counters().get("ops_aborted", 0) >= 1
        assert m.omu_totals() == 0  # balanced after software fallback


class TestBarrierSuspension:
    def test_suspension_forces_whole_barrier_to_software(self):
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        passed = []

        def make_body(i):
            def body(th):
                yield from th.compute(50 * i)
                yield from th.barrier(addr, 6)
                passed.append(i)
            return body

        threads = [m.scheduler.spawn(make_body(i)) for i in range(6)]
        # Suspend thread 0 while it waits at the barrier (arrives ~cycle
        # 30; last arrival would be ~cycle 300).
        m.sim.schedule(150, lambda: m.scheduler.suspend(threads[0]))
        m.sim.schedule(2000, lambda: m.scheduler.resume(threads[0]))
        m.run(max_events=4_000_000)
        m.check_invariants()
        assert sorted(passed) == [0, 1, 2, 3, 4, 5]
        assert m.msa_counters().get("barrier_suspends", 0) == 1
        assert m.omu_totals() == 0

    def test_barrier_suspension_no_double_release(self):
        """Threads already aborted to software must not also be released
        by a later hardware episode."""
        m = build_machine("msa-omu-2", n_cores=16)
        addr = m.allocator.sync_var()
        release_counts = {i: 0 for i in range(4)}

        def make_body(i):
            def body(th):
                for _ in range(3):
                    yield from th.compute(30 * (i + 1))
                    yield from th.barrier(addr, 4)
                    release_counts[i] += 1
            return body

        threads = [m.scheduler.spawn(make_body(i)) for i in range(4)]
        m.sim.schedule(100, lambda: m.scheduler.suspend(threads[3]))
        m.sim.schedule(3000, lambda: m.scheduler.resume(threads[3]))
        m.run(max_events=4_000_000)
        m.check_invariants()
        assert all(count == 3 for count in release_counts.values())


class TestCondVarSuspension:
    def test_suspended_waiter_aborts_with_spurious_wakeup(self):
        """A condvar waiter interrupted mid-wait completes with ABORT,
        re-acquires the lock, and re-checks its predicate (the POSIX
        spurious-wakeup contract)."""
        m = build_machine("msa-omu-2", n_cores=16)
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()
        wakeups = []

        def waiter(th):
            yield from th.lock(lock)
            while True:
                v = yield from th.load(flag)
                if v:
                    break
                yield from th.cond_wait(cond, lock)
                wakeups.append(th.sim.now)
            yield from th.unlock(lock)

        def setter(th):
            yield from th.compute(6000)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from th.cond_signal(cond)
            yield from th.unlock(lock)

        t_waiter = m.scheduler.spawn(waiter, core=0)
        m.scheduler.spawn(setter, core=1)
        m.sim.schedule(1000, lambda: m.scheduler.suspend(t_waiter))
        m.sim.schedule(2000, lambda: m.scheduler.resume(t_waiter))
        m.run(max_events=4_000_000)
        m.check_invariants()
        # At least two wakeups: the spurious one (ABORT) and the real one.
        assert len(wakeups) >= 2
        assert m.msa_counters().get("cond_suspends", 0) == 1
        assert m.omu_totals() == 0

    def test_suspend_last_waiter_unpins_lock(self):
        m = build_machine("msa-omu-2", n_cores=16)
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        flag = m.allocator.line()

        def waiter(th):
            yield from th.lock(lock)
            while True:
                v = yield from th.load(flag)
                if v:
                    break
                yield from th.cond_wait(cond, lock)
            yield from th.unlock(lock)

        def setter(th):
            yield from th.compute(5000)
            yield from th.lock(lock)
            yield from th.store(flag, 1)
            yield from th.cond_broadcast(cond)
            yield from th.unlock(lock)

        t_waiter = m.scheduler.spawn(waiter, core=0)
        m.scheduler.spawn(setter, core=1)
        m.sim.schedule(1200, lambda: m.scheduler.suspend(t_waiter))
        m.sim.schedule(2400, lambda: m.scheduler.resume(t_waiter))
        m.run(max_events=4_000_000)
        m.check_invariants()
        home = m.memory.amap.home_of(lock)
        entry = m.msa_slice(home).entry_for(lock)
        assert entry is None or entry.pin_count == 0


class TestSchedulerBasics:
    def test_suspend_resume_mid_compute(self):
        m = build_machine("pthread", n_cores=4)
        marks = []

        def body(th):
            yield from th.compute(100)
            yield from th.load(1 << 22)
            marks.append(th.sim.now)

        t = m.scheduler.spawn(body, core=0)
        m.sim.schedule(50, lambda: m.scheduler.suspend(t))
        m.sim.schedule(800, lambda: m.scheduler.resume(t))
        m.run()
        # The load completes only after resume (plus context switch).
        assert marks and marks[0] >= 800

    def test_resume_to_busy_core_rejected(self):
        from repro.common.errors import SimulationError

        m = build_machine("pthread", n_cores=4)

        def body(th):
            yield from th.compute(10_000)

        t0 = m.scheduler.spawn(body, core=0)
        m.scheduler.spawn(body, core=1)
        m.scheduler.suspend(t0)
        with pytest.raises(SimulationError):
            m.scheduler.resume(t0, core=1)
        m.scheduler.resume(t0, core=2)
        m.run()

    def test_spawn_more_threads_than_cores_rejected(self):
        from repro.common.errors import SimulationError

        m = build_machine("pthread", n_cores=4)

        def body(th):
            yield from th.compute(1)

        for core in range(4):
            m.scheduler.spawn(body)
        with pytest.raises(SimulationError):
            m.scheduler.spawn(body)
