"""Integration tests: the HWSync-bit / LOCK_SILENT optimization
(paper section 5) and its revocation protocol."""

import pytest

from repro.common.types import SyncOp, SyncResult
from repro.harness.configs import build_machine
from tests.conftest import run_threads


def lock_entry(machine, addr):
    return machine.msa_slice(machine.memory.amap.home_of(addr)).entry_for(addr)


class TestSilentReacquire:
    def test_same_core_reacquire_is_silent(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()

        def body(th):
            for _ in range(10):
                yield from th.lock(addr)
                yield from th.unlock(addr)
                yield from th.compute(100)  # let the re-arm land

        run_threads(m, [body])
        counters = m.sync_unit_counters()
        assert counters["silent_lock_hits"] >= 8
        assert counters["silent_unlock_hits"] >= 9

    def test_silent_acquire_faster_than_roundtrip(self):
        def time_config(config):
            m = build_machine(config, n_cores=16)
            addr = m.allocator.sync_var(home=15)  # far from core 0
            span = {}

            def body(th):
                # Two warm-up acquires: the first allocates, the second
                # trips the reuse predictor and arms the re-arm path.
                for _ in range(2):
                    yield from th.lock(addr)
                    yield from th.unlock(addr)
                    yield from th.compute(200)
                t0 = th.sim.now
                yield from th.lock(addr)
                span["lock"] = th.sim.now - t0
                yield from th.unlock(addr)

            run_threads(m, [body])
            return span["lock"]

        assert time_config("msa-omu-2") < time_config("msa-omu-2-noopt")

    def test_noopt_config_never_silent(self):
        m = build_machine("msa-omu-2-noopt", n_cores=16)
        addr = m.allocator.sync_var()

        def body(th):
            for _ in range(5):
                yield from th.lock(addr)
                yield from th.unlock(addr)
                yield from th.compute(50)

        run_threads(m, [body])
        assert m.sync_unit_counters().get("silent_lock_hits", 0) == 0

    def test_msa_sees_silent_acquires(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()

        def body(th):
            for _ in range(6):
                yield from th.lock(addr)
                yield from th.unlock(addr)
                yield from th.compute(120)

        run_threads(m, [body])
        assert m.msa_counters().get("silent_acquires", 0) >= 4


class TestRevocation:
    def test_cross_core_acquire_revokes_bit(self, machine16):
        m = machine16
        addr = m.allocator.sync_var()
        order = []

        def first(th):
            # Acquire twice so the reuse predictor arms the bit across
            # the idle period (which is what forces the revoke).
            yield from th.lock(addr)
            yield from th.unlock(addr)
            yield from th.compute(80)
            yield from th.lock(addr)
            yield from th.unlock(addr)
            order.append(("first_done", th.sim.now))

        def second(th):
            yield from th.compute(400)
            yield from th.lock(addr)
            order.append(("second_got", th.sim.now))
            yield from th.unlock(addr)

        run_threads(m, [first, second])
        assert m.msa_counters()["revokes_sent"] >= 1
        assert not m.sync_units[0].holds_hwsync(addr)
        # Core 1's single use does not enter reuse mode, so its bit is
        # disarmed after its unlock -- but it is the owner of record.
        entry = lock_entry(m, addr)
        assert entry is not None and entry.last_owner == 1

    def test_mutual_exclusion_with_silent_contention(self, machine16):
        """Two cores alternating on one lock with silent re-acquire in
        the mix: mutual exclusion and counter integrity must hold."""
        m = machine16
        addr = m.allocator.sync_var()
        counter = m.allocator.line()
        in_cs = [0]
        max_cs = [0]

        def make_body(i):
            def body(th):
                for k in range(12):
                    yield from th.lock(addr)
                    in_cs[0] += 1
                    max_cs[0] = max(max_cs[0], in_cs[0])
                    v = yield from th.load(counter)
                    yield from th.compute(5)
                    yield from th.store(counter, v + 1)
                    in_cs[0] -= 1
                    yield from th.unlock(addr)
                    # Small random-ish gaps create every interleaving of
                    # silent acquires vs remote requests.
                    yield from th.compute((i * 37 + k * 13) % 90)
            return body

        run_threads(m, [make_body(i) for i in range(4)])
        assert max_cs[0] == 1
        assert m.memory.peek(counter) == 48

    def test_entry_reclaimed_under_capacity_pressure(self):
        """Idle-cached entries (HWSync pinned) are reclaimed when new
        addresses need the slice: the colliding request is deferred one
        revoke round-trip and then served in hardware."""
        m = build_machine("msa-omu-1", n_cores=16)
        lock_a = m.allocator.sync_var(home=4)
        lock_b = m.allocator.sync_var(home=4)
        results = []
        times = []

        def body(th):
            # Two acquires arm lock_a's across-idle bit (reuse mode), so
            # its idle entry is HWSync-pinned, not instantly evictable.
            yield from th.lock(lock_a)
            yield from th.unlock(lock_a)
            yield from th.compute(80)
            yield from th.lock(lock_a)
            yield from th.unlock(lock_a)
            # lock_a's entry is now idle-cached.  First touch of lock_b
            # waits out the reclamation revoke and still succeeds.
            t0 = th.sim.now
            r1 = yield from th.sync(SyncOp.LOCK, lock_b)
            times.append(th.sim.now - t0)
            results.append(r1)
            yield from th.sync(SyncOp.UNLOCK, lock_b)
            # A later acquire is a plain hit/allocate (no reclaim wait).
            t0 = th.sim.now
            yield from th.lock(lock_b)
            times.append(th.sim.now - t0)
            yield from th.unlock(lock_b)

        run_threads(m, [body])
        assert results == [SyncResult.SUCCESS]
        assert lock_entry(m, lock_a) is None  # reclaimed
        counters = m.msa_counters()
        assert counters["reclaims_started"] >= 1
        assert counters["alloc_deferred"] >= 1

    def test_hwsync_invariant_bit_implies_entry(self, machine16):
        """Whenever a core holds an armed HWSync bit, the MSA entry for
        that address exists with hwsync_core == that core -- the
        property that makes silent acquisition safe."""
        m = machine16
        addrs = [m.allocator.sync_var() for _ in range(4)]
        checks = []

        def make_body(i):
            def body(th):
                for k in range(8):
                    addr = addrs[(i + k) % 4]
                    yield from th.lock(addr)
                    yield from th.compute(10)
                    # Inside the critical section we hold the grant
                    # token (silent UNLOCK eligible): the entry must
                    # exist with us as owner of record.
                    if m.sync_units[th.core].holds_lock_grant(addr):
                        entry = lock_entry(m, addr)
                        checks.append(
                            entry is not None and entry.owner == th.core
                        )
                    yield from th.unlock(addr)
                    yield from th.compute(40)
                    # Any idle-armed bit implies a pinned entry.
                    for a in addrs:
                        if m.sync_units[th.core].holds_hwsync(a):
                            entry = lock_entry(m, a)
                            checks.append(
                                entry is not None
                                and entry.hwsync_core == th.core
                            )
            return body

        run_threads(m, [make_body(i) for i in range(4)])
        assert checks and all(checks)


class TestHwsyncWithCondvars:
    def test_cond_wait_disarms_lock_bit(self, machine16):
        """COND_WAIT releases the lock at the MSA; the local HWSync bit
        must be disarmed so no silent re-acquire races the release."""
        m = machine16
        lock = m.allocator.sync_var()
        cond = m.allocator.sync_var()
        observed = []

        def waiter(th):
            yield from th.lock(lock)
            observed.append(
                ("armed_before", m.sync_units[th.core].holds_lock_grant(lock))
            )
            yield from th.cond_wait(cond, lock)
            yield from th.unlock(lock)

        def signaler(th):
            yield from th.compute(1500)
            observed.append(("waiter_bit", m.sync_units[0].holds_lock_grant(lock)))
            yield from th.lock(lock)
            yield from th.cond_signal(cond)
            yield from th.unlock(lock)

        run_threads(m, [waiter, signaler])
        assert ("armed_before", True) in observed
        assert ("waiter_bit", False) in observed
