"""Tests for the RunResult.describe() run-summary report."""

import pytest

from repro.harness.configs import build_machine
from repro.harness.runner import run_workload
from repro.workloads.kernels import KERNELS


class TestDescribe:
    def test_describe_msa_run(self):
        m = build_machine("msa-omu-2", n_cores=16)
        result = run_workload(
            m, KERNELS["fluidanimate"](16, 0.25), config="msa-omu-2"
        )
        text = result.describe()
        assert "fluidanimate on msa-omu-2" in text
        assert "MSA coverage" in text
        assert "sync instructions" in text
        assert "NoC messages" in text
        assert f"{result.cycles:,}" in text

    def test_describe_software_run_omits_msa_lines(self):
        m = build_machine("pthread", n_cores=16)
        result = run_workload(m, KERNELS["barnes"](16, 0.25), config="pthread")
        text = result.describe()
        assert "MSA coverage" not in text
        assert "barnes on pthread" in text

    def test_describe_includes_workload_metrics(self):
        from repro.workloads import microbench

        m = build_machine("msa-omu-2", n_cores=16)
        result = run_workload(m, microbench.lock_acquire(16), config="x")
        assert "lock_acquire_cycles" in result.describe()
