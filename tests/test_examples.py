"""Smoke tests: every example script runs to completion and validates
its own output (examples assert functional correctness internally)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert "observability.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
