#!/usr/bin/env python
"""Documentation hygiene checker (run by the CI docs job and
tests/test_docs.py).

Three passes over README.md and docs/*.md:

1. **Links** -- every relative markdown link target must exist on disk
   (anchors are stripped; external http(s)/mailto links are skipped).
2. **Path references** -- backticked repo paths (`docs/FOO.md`,
   `examples/x.py`, `src/repro/...`, `tests/...`, `tools/...`,
   `benchmarks/...`) must exist; stale references to renamed files
   fail.
3. **Orphans** -- every file under docs/ must be reachable from
   docs/INDEX.md.

With --doctest (the default), fenced ```python blocks that contain
doctest prompts (>>>) are additionally executed with `doctest`, so the
examples in the docs cannot rot.

    PYTHONPATH=src python tools/check_docs.py
    python tools/check_docs.py --no-doctest      # links/orphans only
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: [text](target) -- excluding images; target captured up to the ')'.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

#: Backticked repo-relative paths worth verifying.
_PATH_RE = re.compile(
    r"`((?:docs|examples|tests|tools|benchmarks|src/repro|repro)/"
    r"[A-Za-z0-9_./-]+\.(?:py|md|json|yml))(?:::[A-Za-z0-9_.:]+)?`"
)

#: Fenced python code blocks (the info string may carry extras).
_FENCE_RE = re.compile(r"```python[^\n]*\n(.*?)```", re.DOTALL)


def doc_files() -> List[Path]:
    """README plus everything under docs/, sorted for stable output."""
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


def _resolve(base: Path, target: str) -> Path:
    target = target.split("#", 1)[0]
    return (base.parent / target).resolve()


def _rel(doc: Path) -> str:
    try:
        return str(doc.relative_to(REPO))
    except ValueError:
        return str(doc)


def check_links(files=None) -> List[str]:
    """Return one error string per dangling relative link."""
    errors = []
    for doc in files or doc_files():
        text = doc.read_text()
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            if not _resolve(doc, target).exists():
                errors.append(
                    f"{_rel(doc)}: dangling link -> {target}"
                )
    return errors


def check_path_refs(files=None) -> List[str]:
    """Return one error string per backticked path that does not exist."""
    errors = []
    for doc in files or doc_files():
        text = doc.read_text()
        for match in _PATH_RE.finditer(text):
            ref = match.group(1)
            # `repro/...` is shorthand for the package under src/.
            candidates = [REPO / ref]
            if ref.startswith("repro/"):
                candidates.append(REPO / "src" / ref)
            if not any(c.exists() for c in candidates):
                errors.append(
                    f"{_rel(doc)}: stale path reference `{ref}`"
                )
    return errors


def check_orphans() -> List[str]:
    """Every doc under docs/ must be mentioned in docs/INDEX.md."""
    index = REPO / "docs" / "INDEX.md"
    if not index.exists():
        return ["docs/INDEX.md is missing"]
    text = index.read_text()
    errors = []
    for doc in sorted((REPO / "docs").glob("*.md")):
        if doc.name != "INDEX.md" and doc.name not in text:
            errors.append(f"docs/{doc.name}: not referenced by docs/INDEX.md")
    return errors


def doctest_blocks(files=None) -> Iterator[Tuple[Path, int, str]]:
    """Yield (doc, block_index, source) for python fences with >>> lines."""
    for doc in files or doc_files():
        text = doc.read_text()
        for i, match in enumerate(_FENCE_RE.finditer(text)):
            block = match.group(1)
            if ">>>" in block:
                yield doc, i, block


def run_doctests(files=None, verbose: bool = False) -> List[str]:
    """Execute every doctest-bearing snippet; return failure strings."""
    errors = []
    parser = doctest.DocTestParser()
    for doc, i, block in doctest_blocks(files):
        name = f"{_rel(doc)}[block {i}]"
        test = parser.get_doctest(block, {}, name, str(doc), 0)
        runner = doctest.DocTestRunner(
            verbose=verbose, optionflags=doctest.ELLIPSIS
        )
        out: List[str] = []
        runner.run(test, out=out.append)
        if runner.failures:
            errors.append(f"{name}: {runner.failures} doctest failure(s)\n"
                          + "".join(out))
    return errors


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--no-doctest", action="store_true",
                    help="skip executing docs snippets (links/orphans only)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    errors = check_links() + check_path_refs() + check_orphans()
    if not args.no_doctest:
        errors += run_doctests(verbose=args.verbose)

    for err in errors:
        print(err, file=sys.stderr)
    n_docs = len(doc_files())
    n_blocks = sum(1 for _ in doctest_blocks())
    print(f"checked {n_docs} docs, {n_blocks} doctest blocks: "
          f"{len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
