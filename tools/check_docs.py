#!/usr/bin/env python
"""Documentation hygiene checker (run by the CI docs job and
tests/test_docs.py).

Five passes over README.md and docs/*.md:

1. **Links** -- every relative markdown link target must exist on disk
   (anchors are stripped; external http(s)/mailto links are skipped).
2. **Path references** -- backticked repo paths (`docs/FOO.md`,
   `examples/x.py`, `src/repro/...`, `tests/...`, `tools/...`,
   `benchmarks/...`) must exist; stale references to renamed files
   fail.
3. **Orphans** -- every file under docs/ must be reachable from
   docs/INDEX.md.
4. **CLI verbs** -- every ``python -m repro <verb>`` the docs mention
   must exist in the live argparse tree, and every live subcommand
   must be documented somewhere (docs drift in both directions fails).
5. **REPRO_ knobs** -- every ``REPRO_*`` variable the docs mention
   must exist in ``repro.common.config.KNOBS``, and every knob must
   appear in docs/SERVICE.md's knob table.

With --doctest (the default), fenced ```python blocks that contain
doctest prompts (>>>) are additionally executed with `doctest`, so the
examples in the docs cannot rot.

    PYTHONPATH=src python tools/check_docs.py
    python tools/check_docs.py --no-doctest      # links/orphans only
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: [text](target) -- excluding images; target captured up to the ')'.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

#: Backticked repo-relative paths worth verifying.
_PATH_RE = re.compile(
    r"`((?:docs|examples|tests|tools|benchmarks|src/repro|repro)/"
    r"[A-Za-z0-9_./-]+\.(?:py|md|json|yml))(?:::[A-Za-z0-9_.:]+)?`"
)

#: Fenced python code blocks (the info string may carry extras).
_FENCE_RE = re.compile(r"```python[^\n]*\n(.*?)```", re.DOTALL)


def doc_files() -> List[Path]:
    """README plus everything under docs/, sorted for stable output."""
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


def _resolve(base: Path, target: str) -> Path:
    target = target.split("#", 1)[0]
    return (base.parent / target).resolve()


def _rel(doc: Path) -> str:
    try:
        return str(doc.relative_to(REPO))
    except ValueError:
        return str(doc)


def check_links(files=None) -> List[str]:
    """Return one error string per dangling relative link."""
    errors = []
    for doc in files or doc_files():
        text = doc.read_text()
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            if not _resolve(doc, target).exists():
                errors.append(
                    f"{_rel(doc)}: dangling link -> {target}"
                )
    return errors


def check_path_refs(files=None) -> List[str]:
    """Return one error string per backticked path that does not exist."""
    errors = []
    for doc in files or doc_files():
        text = doc.read_text()
        for match in _PATH_RE.finditer(text):
            ref = match.group(1)
            # `repro/...` is shorthand for the package under src/.
            candidates = [REPO / ref]
            if ref.startswith("repro/"):
                candidates.append(REPO / "src" / ref)
            if not any(c.exists() for c in candidates):
                errors.append(
                    f"{_rel(doc)}: stale path reference `{ref}`"
                )
    return errors


def check_orphans() -> List[str]:
    """Every doc under docs/ must be mentioned in docs/INDEX.md."""
    index = REPO / "docs" / "INDEX.md"
    if not index.exists():
        return ["docs/INDEX.md is missing"]
    text = index.read_text()
    errors = []
    for doc in sorted((REPO / "docs").glob("*.md")):
        if doc.name != "INDEX.md" and doc.name not in text:
            errors.append(f"docs/{doc.name}: not referenced by docs/INDEX.md")
    return errors


#: ``python -m repro <verb>`` mentions (verbs are lowercase words with
#: optional dashes; placeholders like ``<command>`` don't match).
_VERB_RE = re.compile(r"python -m repro\s+([a-z][a-z0-9-]*)")

#: Environment-variable mentions of the repro knob namespace.
_KNOB_RE = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*\b")


def _import_repro():
    """Make the package importable even when PYTHONPATH=src is unset."""
    src = str(REPO / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def live_verbs() -> set:
    """Subcommand names of the live ``python -m repro`` argparse tree
    (read from the parser itself, not a hand-maintained list)."""
    _import_repro()
    from repro.__main__ import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:
        if action.choices:
            return set(action.choices)
    return set()


def check_cli_verbs(files=None) -> List[str]:
    """Cross-check documented ``python -m repro`` verbs against the
    parser, in both directions: a documented verb that does not parse
    is stale docs; a live verb no doc mentions is undocumented UI."""
    verbs = live_verbs()
    errors = []
    documented: set = set()
    for doc in files or doc_files():
        text = doc.read_text()
        for match in _VERB_RE.finditer(text):
            verb = match.group(1)
            documented.add(verb)
            if verb not in verbs:
                errors.append(
                    f"{_rel(doc)}: documents `python -m repro {verb}`, "
                    f"which is not a live subcommand (have: "
                    f"{', '.join(sorted(verbs))})"
                )
    if files is None:
        for verb in sorted(verbs - documented):
            errors.append(
                f"`python -m repro {verb}` exists but no doc mentions it "
                "(add it to README.md or a docs/ page)"
            )
    return errors


def check_knobs(files=None) -> List[str]:
    """Cross-check documented ``REPRO_*`` variables against
    ``repro.common.config.KNOBS``, in both directions; the full knob
    table must live in docs/SERVICE.md."""
    _import_repro()
    from repro.common.config import KNOBS

    known = {knob.env for knob in KNOBS.values()}
    errors = []
    for doc in files or doc_files():
        text = doc.read_text()
        for var in sorted(set(_KNOB_RE.findall(text))):
            if var not in known:
                errors.append(
                    f"{_rel(doc)}: documents {var}, which is not a knob "
                    f"in repro.common.config (have: {', '.join(sorted(known))})"
                )
    if files is None:
        service = REPO / "docs" / "SERVICE.md"
        table = service.read_text() if service.exists() else ""
        for var in sorted(known):
            if var not in table:
                errors.append(
                    f"docs/SERVICE.md: knob table is missing {var} "
                    "(every repro.common.config knob must be documented "
                    "there)"
                )
    return errors


def doctest_blocks(files=None) -> Iterator[Tuple[Path, int, str]]:
    """Yield (doc, block_index, source) for python fences with >>> lines."""
    for doc in files or doc_files():
        text = doc.read_text()
        for i, match in enumerate(_FENCE_RE.finditer(text)):
            block = match.group(1)
            if ">>>" in block:
                yield doc, i, block


def run_doctests(files=None, verbose: bool = False) -> List[str]:
    """Execute every doctest-bearing snippet; return failure strings."""
    errors = []
    parser = doctest.DocTestParser()
    for doc, i, block in doctest_blocks(files):
        name = f"{_rel(doc)}[block {i}]"
        test = parser.get_doctest(block, {}, name, str(doc), 0)
        runner = doctest.DocTestRunner(
            verbose=verbose, optionflags=doctest.ELLIPSIS
        )
        out: List[str] = []
        runner.run(test, out=out.append)
        if runner.failures:
            errors.append(f"{name}: {runner.failures} doctest failure(s)\n"
                          + "".join(out))
    return errors


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--no-doctest", action="store_true",
                    help="skip executing docs snippets (links/orphans only)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    errors = (
        check_links()
        + check_path_refs()
        + check_orphans()
        + check_cli_verbs()
        + check_knobs()
    )
    if not args.no_doctest:
        errors += run_doctests(verbose=args.verbose)

    for err in errors:
        print(err, file=sys.stderr)
    n_docs = len(doc_files())
    n_blocks = sum(1 for _ in doctest_blocks())
    print(f"checked {n_docs} docs, {n_blocks} doctest blocks: "
          f"{len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
