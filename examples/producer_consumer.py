#!/usr/bin/env python
"""A bounded-buffer pipeline built on the hybrid condition-variable API
(paper section 4.3): two producers, four consumers, one lock and two
condition variables (not-empty / not-full).

Demonstrates that the same application code runs unmodified on a
software-only machine, an MSA-accelerated machine, and an MSA-0 machine
(ISA present, no accelerator hardware) -- the decoupling argument of
the paper's ISA design.

    python examples/producer_consumer.py
"""

from repro.harness import build_machine, run_workload
from repro.workloads.base import Workload

N_PRODUCERS = 2
N_CONSUMERS = 4
ITEMS_PER_PRODUCER = 12
BUFFER_CAP = 4


def make_threads(env):
    lock = env.allocator.sync_var()
    not_empty = env.allocator.sync_var()
    not_full = env.allocator.sync_var()
    count = env.allocator.line()
    consumed = env.shared.setdefault("consumed", [])
    produced = env.shared.setdefault("produced", [0])

    def producer(th):
        for i in range(ITEMS_PER_PRODUCER):
            yield from th.compute(80)  # produce an item
            yield from th.lock(lock)
            while True:
                n = yield from th.load(count)
                if n < BUFFER_CAP:
                    break
                yield from th.cond_wait(not_full, lock)
            yield from th.store(count, n + 1)
            produced[0] += 1
            yield from th.cond_signal(not_empty)
            yield from th.unlock(lock)

    def consumer(th):
        quota = ITEMS_PER_PRODUCER * N_PRODUCERS // N_CONSUMERS
        for _ in range(quota):
            yield from th.lock(lock)
            while True:
                n = yield from th.load(count)
                if n > 0:
                    break
                yield from th.cond_wait(not_empty, lock)
            yield from th.store(count, n - 1)
            consumed.append(th.sim.now)
            yield from th.cond_signal(not_full)
            yield from th.unlock(lock)
            yield from th.compute(60)  # consume the item

    return [producer] * N_PRODUCERS + [consumer] * N_CONSUMERS


def validate(env):
    total = ITEMS_PER_PRODUCER * N_PRODUCERS
    env.expect(len(env.shared["consumed"]) == total, "items lost or duplicated")
    env.expect(env.shared["produced"][0] == total, "production incomplete")


def main():
    workload = Workload(
        name="producer_consumer",
        n_threads=N_PRODUCERS + N_CONSUMERS,
        make_threads=make_threads,
        validate_fn=validate,
    )
    print(f"{'config':<12} {'cycles':>8}  note")
    for config, note in (
        ("pthread", "futex condvars in software"),
        ("msa0", "sync ISA present, always FAILs (library overhead only)"),
        ("msa-omu-2", "condvars + lock pinning in hardware"),
        ("ideal", "zero-latency oracle"),
    ):
        machine = build_machine(config, n_cores=16)
        result = run_workload(machine, workload, config=config)
        print(f"{config:<12} {result.cycles:>8}  {note}")
    print(f"\nAll {ITEMS_PER_PRODUCER * N_PRODUCERS} items moved through "
          f"the bounded buffer under every configuration.")


if __name__ == "__main__":
    main()
