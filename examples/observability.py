#!/usr/bin/env python
"""Observability tour: run one workload with the span collector
attached, print where the synchronization cycles went, and export
every interchange format (span JSONL, Chrome trace, Prometheus text,
HTML run report).

    python examples/observability.py

Observation is passive -- the observed run is bit-for-bit identical to
an unobserved one, which this example also demonstrates.
"""

import json
import tempfile
from pathlib import Path

from repro import api
from repro.obs import render_run_report, spans_from_jsonl


def main():
    # An OMU-pressured point, so the overflow timeline has content.
    config, kernel, cores, scale = "msa-omu-1", "fluidanimate", 4, 0.2

    result, obs = api.observe(config, kernel, cores=cores, scale=scale)
    print(result.describe())
    print()
    print(obs.describe())

    # Observation never perturbs the simulation: re-run unobserved.
    bare = api.run(config, kernel, cores=cores, scale=scale)
    assert bare.to_json() == result.to_json(), "observation perturbed the run!"
    print("\nunobserved re-run is bit-for-bit identical (passive observation)")

    # Cycle attribution: the paper-style "where did sync time go" view.
    attribution = obs.attribution()
    assert "lock.acquire" in attribution and "msa.entry" in attribution
    steers = [t for t in obs.omu_timeline if t[2] == "steer"]
    assert len(steers) == result.msa_counters["omu_steered_sw"]
    print(f"OMU steered {len(steers)} allocations to software "
          f"(timeline has {len(obs.omu_timeline)} transitions)")

    out = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    spans_path = out / "spans.jsonl"
    obs.to_jsonl(spans_path)
    assert spans_from_jsonl(spans_path.read_text()) == obs.spans

    trace_path = out / "trace.json"
    obs.to_chrome_trace(trace_path)
    events = json.loads(trace_path.read_text())["traceEvents"]
    assert all("pid" in e and "tid" in e for e in events)

    prom_path = out / "metrics.prom"
    obs.registry.to_prometheus(prom_path)
    assert "# TYPE repro_noc_latency summary" in prom_path.read_text()

    html_path = out / "run.html"
    html_path.write_text(render_run_report(result, obs))
    assert "OMU transitions" in html_path.read_text()

    print(f"\nwrote {spans_path.name}, {trace_path.name}, "
          f"{prom_path.name}, {html_path.name} to {out}")
    print("open trace.json in Perfetto (ui.perfetto.dev) for the timeline")


if __name__ == "__main__":
    main()
