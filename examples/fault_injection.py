#!/usr/bin/env python
"""Fault injection: the accelerator protocols surviving a hostile NoC
and a dying MSA slice.

Two demos:

1. A drop-plan sweep -- 0%, 5%, and 15% of ``msa.*`` messages silently
   dropped on the wire.  The reliable transport retransmits, the sync
   units retry, and every lock-protected increment still lands; the
   only visible cost is cycles.

2. A slice kill -- tile 3's MSA dies mid-run.  The victims' requests
   time out, the fault plane declares the home dead, the orphaned lock
   hands over through the recovery table, and from then on tile 3's
   variables run in software while every other tile keeps its hardware
   coverage.

    python examples/fault_injection.py
"""

from repro.common.params import FaultParams
from repro.faults import KILL, FaultPlan, SliceFault, drop_plan
from repro.harness.configs import build_machine, machine_params
from repro.machine import Machine

N_THREADS = 8
ITERS = 12


def spawn_lock_workload(m, locks, counters):
    def body(th):
        for _ in range(ITERS):
            for lock, counter in zip(locks, counters):
                yield from th.lock(lock)
                value = yield from th.load(counter)
                yield from th.compute(10)
                yield from th.store(counter, value + 1)
                yield from th.unlock(lock)

    for _ in range(N_THREADS):
        m.scheduler.spawn(body)


def demo_drop_sweep():
    print("== NoC drop sweep (msa.* messages dropped on the wire) ==")
    print(f"{'drop':>5} {'cycles':>9} {'dropped':>8} {'retransmits':>11} "
          f"{'retries':>8}")
    baseline = None
    for rate in (0.0, 0.05, 0.15):
        plan = drop_plan(rate, seed=1) if rate else None
        m = build_machine("msa-omu-2", n_cores=16, seed=7, fault_plan=plan)
        locks = [m.allocator.sync_var(home=t) for t in (2, 9, 14)]
        counters = [m.allocator.line() for _ in locks]
        spawn_lock_workload(m, locks, counters)
        cycles = m.run(max_events=20_000_000)
        m.check_invariants()
        for counter in counters:
            assert m.memory.peek(counter) == N_THREADS * ITERS
        fc = m.fault_counters() if plan else {}
        baseline = baseline or cycles
        print(f"{rate:>5.0%} {cycles:>9} {fc.get('msgs_dropped', 0):>8} "
              f"{fc.get('retransmits', 0):>11} {fc.get('retries', 0):>8}")
    print("Every run kept the counters exact; losses only cost cycles.\n")


def demo_slice_kill():
    print("== Killing tile 3's MSA slice at cycle 2000 ==")
    plan = FaultPlan(seed=3, slices=(SliceFault(tile=3, at=2000, mode=KILL),))
    params, library = machine_params("msa-omu-2", n_cores=16, seed=11)
    # Tighten the recovery clock so detection takes thousands of cycles
    # instead of the production default's tens of thousands.
    params = params.with_(
        faults=FaultParams(request_timeout=200, request_timeout_max=3200,
                           max_retries=4)
    )
    m = Machine(params, library=library, fault_plan=plan)
    locks = [m.allocator.sync_var(home=t) for t in (1, 3, 6)]
    counters = [m.allocator.line() for _ in locks]
    spawn_lock_workload(m, locks, counters)
    cycles = m.run(max_events=20_000_000)
    m.check_invariants()
    for counter in counters:
        assert m.memory.peek(counter) == N_THREADS * ITERS
    fc = m.fault_counters()
    print(f"completed in {cycles} cycles, no lost increments")
    print(f"degraded tiles: {sorted(m.degraded_tiles())} "
          f"(timeouts={fc['timeouts']}, degraded_fails={fc['degraded_fails']})")
    for tile in (1, 3, 6):
        if tile in m.degraded_tiles():
            shown = "degraded -- post-kill ops served in software"
        else:
            cov = m.msa_tile_coverage(tile)
            shown = "n/a" if cov is None else f"{cov:.0%}"
        print(f"  tile {tile}: hardware coverage {shown}")
    assert m.degraded_tiles() == {3}
    print("Only the dead home degraded; its lock handed over through the\n"
          "fault plane and finished the run in software.")


def main():
    demo_drop_sweep()
    demo_slice_kill()


if __name__ == "__main__":
    main()
