#!/usr/bin/env python
"""Writing your own workload kernel and comparing configurations.

A tiny pipelined wavefront: each thread owns a row and may only start
row segment ``k`` after its upstream neighbor finished segment ``k``
(signaled through a condition variable), with a barrier per sweep --
the kind of producer-chain synchronization real stencil pipelines use.

    python examples/custom_kernel.py
"""

from repro.harness import build_machine, run_workload
from repro.workloads.base import Workload

N_THREADS = 8
SEGMENTS = 6
SEGMENT_COMPUTE = 300


def make_threads(env):
    lock = env.allocator.sync_var()
    cond = env.allocator.sync_var()
    progress = [env.allocator.line() for _ in range(N_THREADS)]
    done = env.shared.setdefault("done", [0])

    def mkbody(i):
        def body(th):
            for k in range(SEGMENTS):
                if i > 0:
                    # Wait until the upstream row finished segment k.
                    yield from th.lock(lock)
                    while True:
                        v = yield from th.load(progress[i - 1])
                        if v > k:
                            break
                        yield from th.cond_wait(cond, lock)
                    yield from th.unlock(lock)
                yield from th.compute(SEGMENT_COMPUTE)
                yield from th.lock(lock)
                yield from th.store(progress[i], k + 1)
                yield from th.cond_broadcast(cond)
                yield from th.unlock(lock)
            done[0] += 1
        return body

    return [mkbody(i) for i in range(N_THREADS)]


def validate(env):
    env.expect(env.shared["done"][0] == N_THREADS, "wavefront incomplete")
    for i, addr in enumerate(env.shared.get("progress", [])):
        env.expect(
            env.machine.memory.peek(addr) == SEGMENTS, f"row {i} unfinished"
        )


def main():
    workload = Workload(
        name="wavefront",
        n_threads=N_THREADS,
        make_threads=make_threads,
        validate_fn=validate,
    )
    print(f"{'config':<12} {'cycles':>8} {'speedup':>8}")
    baseline = None
    for config in ("pthread", "mcs-tour", "msa0", "msa-omu-2", "msa-inf", "ideal"):
        machine = build_machine(config, n_cores=16)
        result = run_workload(machine, workload, config=config)
        if baseline is None:
            baseline = result
        print(
            f"{config:<12} {result.cycles:>8} "
            f"{baseline.cycles / result.cycles:>7.2f}x"
        )


if __name__ == "__main__":
    main()
