#!/usr/bin/env python
"""Quickstart: build a machine, run a small multi-threaded workload
through the hybrid synchronization API, and inspect the results.

    python examples/quickstart.py
"""

from repro.harness import build_machine, run_workload
from repro.workloads.base import Workload


def make_threads(env):
    """Eight threads increment a shared counter under one lock, then
    meet at a barrier and report."""
    lock = env.allocator.sync_var()
    barrier = env.allocator.sync_var()
    counter = env.allocator.line()
    env.shared["counter"] = counter

    def body(th):
        for _ in range(10):
            yield from th.lock(lock)
            value = yield from th.load(counter)
            yield from th.compute(25)  # critical-section work
            yield from th.store(counter, value + 1)
            yield from th.unlock(lock)
            yield from th.compute(100)  # parallel work
        yield from th.barrier(barrier, 8)

    return [body] * 8


def validate(env):
    env.expect(
        env.machine.memory.peek(env.shared["counter"]) == 80,
        "lost updates: mutual exclusion violated",
    )


def main():
    workload = Workload(
        name="quickstart",
        n_threads=8,
        make_threads=make_threads,
        validate_fn=validate,
    )
    print(f"{'config':<12} {'cycles':>8} {'MSA coverage':>13}")
    for config in ("pthread", "mcs-tour", "msa0", "msa-omu-2", "ideal"):
        machine = build_machine(config, n_cores=16)
        result = run_workload(machine, workload, config=config)
        coverage = (
            f"{100 * result.msa_coverage:.0f}%"
            if result.msa_coverage is not None
            else "-"
        )
        print(f"{config:<12} {result.cycles:>8} {coverage:>13}")
    print("\nAll runs verified: counter == 80 under every configuration.")


if __name__ == "__main__":
    main()
