#!/usr/bin/env python
"""Overflow stress: a program that uses far more synchronization
variables than the MSA has entries, showing how the OMU keeps the
accelerator useful (and correct) anyway.

Each of 16 threads walks a private sequence over 128 distinct locks
(8 per home tile against 2 MSA entries per tile).  Without the OMU the
first locks to touch each slice keep its entries forever and coverage
collapses; with the OMU entries turn over with the active set.

    python examples/overflow_stress.py
"""

from repro.harness import build_machine, run_workload
from repro.workloads.base import Workload

N_THREADS = 16
LOCKS_PER_TILE = 8
ROUNDS = 3


def make_workload():
    def make_threads(env):
        n = env.n_cores
        locks = [
            env.allocator.sync_var(home=tile)
            for tile in range(n)
            for _ in range(LOCKS_PER_TILE)
        ]
        counters = {lock: env.allocator.line() for lock in locks}
        env.shared["locks"] = locks
        env.shared["counters"] = counters

        def mkbody(i):
            def body(th):
                # Phased walk: at any moment a thread holds one lock and
                # the per-tile active set stays small, but over the run
                # every lock gets used by several threads.
                for r in range(ROUNDS):
                    for k in range(0, len(locks), N_THREADS):
                        lock = locks[(k + i) % len(locks)]
                        yield from th.lock(lock)
                        v = yield from th.load(counters[lock])
                        yield from th.compute(30)
                        yield from th.store(counters[lock], v + 1)
                        yield from th.unlock(lock)
                        yield from th.compute(50)
            return body

        return [mkbody(i) for i in range(N_THREADS)]

    def validate(env):
        total = sum(env.machine.memory.peek(c) for c in env.shared["counters"].values())
        expected = N_THREADS * ROUNDS * (len(env.shared["locks"]) // N_THREADS)
        env.expect(total == expected, f"counter sum {total} != {expected}")

    return Workload(
        name="overflow_stress",
        n_threads=N_THREADS,
        make_threads=make_threads,
        validate_fn=validate,
    )


def main():
    print(f"{'config':<16} {'cycles':>8} {'coverage':>9} {'entries alloc':>14}")
    for config in ("msa-2-no-omu", "msa-omu-2", "msa-omu-2-bloom", "msa-inf"):
        machine = build_machine(config, n_cores=16)
        result = run_workload(machine, make_workload(), config=config)
        cov = f"{100 * result.msa_coverage:.0f}%"
        allocs = result.msa_counters.get("entries_allocated", 0)
        print(f"{config:<16} {result.cycles:>8} {cov:>9} {allocs:>14}")
    print(
        "\n128 locks vs 32 MSA entries: the OMU recycles entries with the"
        "\nactive set (high coverage); without it the first 32 locks"
        "\nmonopolize the accelerator."
    )


if __name__ == "__main__":
    main()
