#!/usr/bin/env python
"""Thread suspension and migration interacting with the MSA (paper
sections 4.1.2 / 4.2.2 / 4.3.2).

The scenario: a lock owner is context-switched off its core mid
critical section and resumed on a *different* core.  Its eventual
UNLOCK arrives from a core whose HWQueue bit is not set, so the MSA
replies SUCCESS to the unlocker, ABORTs every hardware waiter (they
fall back to the software lock), frees the entry, and charges the OMU
so hardware stays off that lock until the software activity drains.

    python examples/migration.py
"""

from repro.harness import build_machine


def main():
    machine = build_machine("msa-omu-2", n_cores=16)
    lock = machine.allocator.sync_var()
    counter = machine.allocator.line()
    log = []

    def owner(th):
        yield from th.lock(lock)
        log.append(f"[{th.sim.now:>6}] owner acquired lock on core {th.core}")
        yield from th.compute(4000)  # suspended + migrated in here
        v = yield from th.load(counter)
        yield from th.store(counter, v + 1)
        yield from th.unlock(lock)
        log.append(f"[{th.sim.now:>6}] owner unlocked from core {th.core}")

    def waiter(th):
        yield from th.compute(500)
        yield from th.lock(lock)
        log.append(
            f"[{th.sim.now:>6}] waiter on core {th.core} got the lock "
            "(after ABORT -> software fallback)"
        )
        v = yield from th.load(counter)
        yield from th.store(counter, v + 1)
        yield from th.unlock(lock)

    t_owner = machine.scheduler.spawn(owner, core=0)
    for core in (1, 2, 3):
        machine.scheduler.spawn(waiter, core=core)

    def suspend():
        log.append(f"[{machine.sim.now:>6}] OS suspends the owner (core 0)")
        machine.scheduler.suspend(t_owner)

    def resume():
        log.append(f"[{machine.sim.now:>6}] OS resumes the owner on core 7")
        machine.scheduler.resume(t_owner, core=7)

    machine.sim.schedule(1000, suspend)
    machine.sim.schedule(1500, resume)
    machine.run()
    machine.check_invariants()

    print("\n".join(log))
    counters = machine.msa_counters()
    print(f"\ncounter value            : {machine.memory.peek(counter)} (expected 4)")
    print(f"migrated-owner unlocks   : {counters.get('migrated_unlocks', 0)}")
    print(f"waiters ABORTed          : {counters.get('ops_aborted', 0)}")
    print(f"OMU balance after drain  : {machine.omu_totals()} (expected 0)")
    assert machine.memory.peek(counter) == 4
    assert machine.omu_totals() == 0


if __name__ == "__main__":
    main()
