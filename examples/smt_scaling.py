#!/usr/bin/env python
"""Hardware multithreading (SMT): the paper's HWQueue-bit-per-hardware-
thread extension in action.

The same 16-tile chip runs streamcluster with 16 threads (one per core)
and then with 32 threads (two hardware threads per core).  The MSA's
HWQueue simply grows to one bit per hardware thread; pthread barriers,
by contrast, pay an even larger release cost with more participants.

    python examples/smt_scaling.py
"""

from repro.common.params import CoreParams
from repro.harness import run_workload
from repro.harness.configs import machine_params
from repro.machine import Machine
from repro.workloads.kernels import KERNELS


def build(config, hw_threads):
    params, library = machine_params(config, n_cores=16)
    params = params.with_(core=CoreParams(hw_threads=hw_threads))
    return Machine(params, library=library)


def main():
    print(f"{'threads':>8} {'config':<12} {'cycles':>9} {'speedup':>8}")
    for hw_threads in (1, 2):
        n_threads = 16 * hw_threads
        baseline = None
        for config in ("pthread", "msa-omu-2"):
            machine = build(config, hw_threads)
            result = run_workload(
                machine, KERNELS["streamcluster"](n_threads, 0.5)
            )
            if baseline is None:
                baseline = result
            print(
                f"{n_threads:>8} {config:<12} {result.cycles:>9} "
                f"{baseline.cycles / result.cycles:>7.2f}x"
            )
    print(
        "\nDoubling the hardware threads per core doubles the barrier"
        "\nparticipants; the MSA's advantage grows because the pthread"
        "\nbarrier's release cost is linear in waiters while the MSA"
        "\nrelease is a message fan-out."
    )


if __name__ == "__main__":
    main()
