"""Figure 5: raw synchronization latency.

Regenerates the five latency probes (LockAcquire, LockHandoff,
BarrierHandoff, CondSignal, CondBroadcast) across the paper's five
configurations and asserts the figure's shape claims.
"""

import pytest

from repro.harness.experiments import FIG5_CONFIGS, fig5


@pytest.fixture(scope="module")
def fig5_results(bench_cores, bench_engine):
    return fig5(cores=bench_cores, print_out=True, **bench_engine)


def test_fig5_regenerate(benchmark, bench_cores, bench_engine):
    # One probe timed (full grid printed by the module fixture run).
    result = benchmark.pedantic(
        lambda: fig5(cores=(bench_cores[0],), print_out=False, **bench_engine),
        rounds=1,
        iterations=1,
    )
    assert set(result) == {
        "LockAcquire",
        "LockHandoff",
        "BarrierHandoff",
        "CondSignal",
        "CondBroadcast",
    }


class TestFig5Shapes:
    def test_msa_lowest_in_every_probe(self, fig5_results, bench_cores):
        for probe, grid in fig5_results.items():
            for n in bench_cores:
                msa = grid[("msa-omu-2", n)]
                for config in FIG5_CONFIGS:
                    if config != "msa-omu-2":
                        assert msa < grid[(config, n)], (probe, config, n)

    def test_no_contention_acquire_all_similar_except_msa(
        self, fig5_results, bench_cores
    ):
        """Paper: all approaches perform similarly for no-contention
        acquire except MSA/OMU-2 (HWSync silent fast path)."""
        grid = fig5_results["LockAcquire"]
        for n in bench_cores:
            values = [
                grid[(c, n)] for c in FIG5_CONFIGS if c != "msa-omu-2"
            ]
            assert max(values) / min(values) < 5
            assert grid[("msa-omu-2", n)] < min(values)

    def test_msa0_overhead_small_vs_pthread(self, fig5_results, bench_cores):
        """Paper: MSA-0 incurs minimal overhead over the baseline --
        the ISA can be adopted without accelerator hardware."""
        for probe in ("LockAcquire", "LockHandoff", "BarrierHandoff"):
            grid = fig5_results[probe]
            for n in bench_cores:
                overhead = grid[("msa0", n)] / grid[("pthread", n)]
                assert overhead < 1.25, (probe, n, overhead)

    def test_mcs_scales_better_than_pthread_handoff(
        self, fig5_results, bench_cores
    ):
        grid = fig5_results["LockHandoff"]
        n = bench_cores[-1]
        assert grid[("mcs-tour", n)] < grid[("pthread", n)]
        assert grid[("mcs-tour", n)] < grid[("spinlock", n)]

    def test_barrier_msa_order_of_magnitude_over_tournament(
        self, fig5_results, bench_cores
    ):
        grid = fig5_results["BarrierHandoff"]
        for n in bench_cores:
            assert grid[("mcs-tour", n)] / grid[("msa-omu-2", n)] > 8

    @pytest.mark.skipif(
        True, reason="enable with REPRO_BENCH_FULL to check 16->64 scaling"
    )
    def test_placeholder_scaling(self):
        pass


def test_fig5_scaling_when_two_core_counts(fig5_results, bench_cores):
    if len(bench_cores) < 2:
        pytest.skip("single core count grid")
    lo, hi = bench_cores[0], bench_cores[-1]
    handoff = fig5_results["LockHandoff"]
    barrier = fig5_results["BarrierHandoff"]
    # Poor software scaling vs much flatter MSA scaling.
    assert handoff[("spinlock", hi)] / handoff[("spinlock", lo)] > 2
    assert barrier[("pthread", hi)] / barrier[("pthread", lo)] > 2
    assert (
        barrier[("msa-omu-2", hi)] / barrier[("msa-omu-2", lo)]
        < barrier[("pthread", hi)] / barrier[("pthread", lo)]
    )
