"""Figure 6: overall application speedup over the pthread baseline.

Regenerates the speedup grid over the kernel suite for MSA-0, MCS-Tour,
MSA/OMU-1, MSA/OMU-2, MSA-inf, and Ideal, and asserts the figure's
shape claims (orderings, MSA-0 ~= baseline, MSA/OMU-2 close to MSA-inf,
everything bounded by Ideal).
"""

import pytest

from repro.harness.experiments import FIG6_CONFIGS, fig6


@pytest.fixture(scope="module")
def grid(bench_cores, bench_scale, bench_engine):
    return fig6(
        cores=bench_cores, scale=bench_scale, print_out=True, **bench_engine
    )


def test_fig6_regenerate(benchmark, bench_cores, bench_scale, bench_engine):
    result = benchmark.pedantic(
        lambda: fig6(
            cores=(bench_cores[0],),
            apps=("streamcluster", "raytrace"),
            scale=bench_scale,
            print_out=False,
            **bench_engine,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.speedups


class TestFig6Shapes:
    def test_msa0_within_noise_of_baseline(self, grid):
        gm = grid.geomeans()
        for n in grid.cores:
            assert 0.9 < gm[("msa0", n)] < 1.15

    def test_ordering_baseline_mcs_msa_ideal(self, grid):
        """The paper's headline ordering: software < MCS-Tour <
        MSA/OMU-2 <= MSA-inf <= Ideal on the suite geomean."""
        gm = grid.geomeans()
        for n in grid.cores:
            assert gm[("mcs-tour", n)] > 1.0
            assert gm[("msa-omu-2", n)] > gm[("mcs-tour", n)]
            assert gm[("msa-inf", n)] >= gm[("msa-omu-2", n)] * 0.99
            assert gm[("ideal", n)] >= gm[("msa-inf", n)] * 0.99

    def test_msa_omu2_close_to_inf(self, grid):
        """Paper: MSA/OMU-2 performs similar to MSA-inf (suite level)."""
        gm = grid.geomeans()
        for n in grid.cores:
            assert gm[("msa-omu-2", n)] > 0.8 * gm[("msa-inf", n)]

    def test_omu1_within_reach_of_inf(self, grid):
        """Paper: MSA/OMU-1 averages within ~6% of MSA-inf; we accept a
        wider band on the scaled-down grid."""
        gm = grid.geomeans()
        for n in grid.cores:
            assert gm[("msa-omu-1", n)] > 0.75 * gm[("msa-inf", n)]

    def test_streamcluster_biggest_winner(self, grid):
        n = grid.cores[-1]
        sc = grid.speedups[("streamcluster", "msa-omu-2", n)]
        for app in grid.apps:
            assert sc >= grid.speedups[(app, "msa-omu-2", n)] * 0.95

    def test_every_app_bounded_by_ideal(self, grid):
        for app in grid.apps:
            for n in grid.cores:
                assert (
                    grid.speedups[(app, "msa-omu-2", n)]
                    <= grid.speedups[(app, "ideal", n)] * 1.1
                )

    def test_low_sync_apps_near_one(self, grid):
        for app in ("barnes", "lu"):
            for n in grid.cores:
                assert 0.9 < grid.speedups[(app, "msa-omu-2", n)] < 2.2
