"""Figure 9: speedup when the MSA supports only one synchronization
type (64 cores in the paper).

Asserts the figure's complementarity claims: barrier-intensive apps
(ocean, streamcluster) lose their speedup under MSA-LockOnly;
lock-intensive apps (radiosity, fluidanimate) lose most of theirs under
MSA-BarrierOnly; full MSA/OMU-2 dominates both restrictions on the
suite geomean."""

import pytest

from repro.harness.experiments import fig9


@pytest.fixture(scope="module")
def speedups(bench_cores, bench_scale, bench_engine):
    return fig9(
        n_cores=bench_cores[-1], scale=bench_scale, print_out=True, **bench_engine
    )


def test_fig9_regenerate(benchmark, bench_cores, bench_scale, bench_engine):
    result = benchmark.pedantic(
        lambda: fig9(
            n_cores=bench_cores[0],
            apps=("streamcluster", "radiosity"),
            scale=bench_scale,
            print_out=False,
            **bench_engine,
        ),
        rounds=1,
        iterations=1,
    )
    assert result


class TestFig9Shapes:
    def test_barrier_apps_lose_speedup_under_lockonly(self, speedups):
        for app in ("ocean", "ocean-nc", "streamcluster"):
            full = speedups[(app, "msa-omu-2")]
            lockonly = speedups[(app, "msa-lockonly-2")]
            assert lockonly < full
            assert lockonly < 1.0 + 0.6 * (full - 1.0)

    def test_lock_apps_lose_speedup_under_barrieronly(self, speedups):
        for app in ("radiosity", "fluidanimate", "raytrace"):
            full = speedups[(app, "msa-omu-2")]
            barrieronly = speedups[(app, "msa-barrieronly-2")]
            assert barrieronly < full

    def test_full_msa_dominates_geomean(self, speedups):
        full = speedups[("GeoMean", "msa-omu-2")]
        assert full > speedups[("GeoMean", "msa-lockonly-2")]
        assert full > speedups[("GeoMean", "msa-barrieronly-2")]
