"""Figure 7: coverage of synchronization operations with and without
the OMU.

Regenerates the four bar groups (MSA-1/MSA-2 x core counts) and asserts
the paper's claim: the OMU raises the fraction of operations the MSA
services dramatically (paper: 56% -> 93% for 64-tile MSA-2), because
entries can be reclaimed when their HWQueues drain instead of being
monopolized by the first addresses to touch each slice.
"""

import pytest

from repro.harness.experiments import fig7


@pytest.fixture(scope="module")
def coverage(bench_cores, bench_scale, bench_engine):
    return fig7(
        cores=bench_cores, scale=bench_scale, print_out=True, **bench_engine
    )


def test_fig7_regenerate(benchmark, bench_cores, bench_scale, bench_engine):
    result = benchmark.pedantic(
        lambda: fig7(
            cores=(bench_cores[0],),
            entries=(2,),
            apps=("radiosity", "streamcluster"),
            scale=bench_scale,
            print_out=False,
            **bench_engine,
        ),
        rounds=1,
        iterations=1,
    )
    assert result


class TestFig7Shapes:
    def test_omu_improves_coverage_everywhere(self, coverage, bench_cores):
        for e in (1, 2):
            for n in bench_cores:
                assert coverage[(e, n, True)] > coverage[(e, n, False)]

    def test_with_omu_high_absolute_coverage(self, coverage, bench_cores):
        """Paper: 93% for MSA-2 at 64 tiles; we require >75% on the
        scaled grid."""
        for n in bench_cores:
            assert coverage[(2, n, True)] > 75.0

    def test_more_entries_help_without_omu(self, coverage, bench_cores):
        for n in bench_cores:
            assert coverage[(2, n, False)] >= coverage[(1, n, False)]

    def test_omu_gap_substantial(self, coverage, bench_cores):
        """The with/without gap is the figure's point: clearly more
        than noise.  (The paper's gap is ~37 points on a 26-app suite
        whose lock arrays run to the thousands; our synthetic suite's
        footprints are smaller, so the gap is smaller -- see
        EXPERIMENTS.md.)"""
        gaps = [
            coverage[(e, n, True)] - coverage[(e, n, False)]
            for e in (1, 2)
            for n in bench_cores
        ]
        assert max(gaps) > 8.0
