"""Figure 8: effect of the HWSync-bit optimization on fluidanimate.

Regenerates the two-bar comparison at each core count and asserts the
paper's shape: with the optimization the accelerated run beats the
software baseline; without it, the per-acquire round trip to the home
tile erases the gains (a slowdown at 64 cores)."""

import pytest

from repro.harness.experiments import fig8


@pytest.fixture(scope="module")
def speedups(bench_cores, bench_scale, bench_engine):
    return fig8(
        cores=bench_cores, scale=bench_scale, print_out=True, **bench_engine
    )


def test_fig8_regenerate(benchmark, bench_cores, bench_scale, bench_engine):
    result = benchmark.pedantic(
        lambda: fig8(
            cores=(bench_cores[0],),
            scale=bench_scale,
            print_out=False,
            **bench_engine,
        ),
        rounds=1,
        iterations=1,
    )
    assert result


class TestFig8Shapes:
    def test_optimization_beats_no_optimization(self, speedups, bench_cores):
        for n in bench_cores:
            assert speedups[("with_opt", n)] > speedups[("without_opt", n)]

    def test_with_optimization_beats_software(self, speedups, bench_cores):
        for n in bench_cores:
            assert speedups[("with_opt", n)] > 1.0

    def test_without_optimization_loses_at_scale(self, speedups, bench_cores):
        """Paper: the 64-core machine shows a slowdown without the
        HWSync bit.  At 16 cores the two sit close to 1.0."""
        n = bench_cores[-1]
        if n >= 64:
            assert speedups[("without_opt", n)] < 1.0
        else:
            assert speedups[("without_opt", n)] < 1.25
