"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures on a
scaled-down grid (16 cores by default, plus 64 cores where the paper's
claim is specifically about 64-core behaviour).  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_FULL=1`` to run the paper-sized grid (16 and 64
cores, full workload scale) -- slower but closer to the published
numbers.  The printed tables are the deliverable; the benchmark timings
just record how long each experiment takes to regenerate.
"""

import os

import pytest

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: (core counts, workload scale) for the default and full grids.
CORES = (16, 64) if FULL else (16,)
SCALE = 1.0 if FULL else 0.4


@pytest.fixture(scope="session")
def bench_cores():
    return CORES


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE
