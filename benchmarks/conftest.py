"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures on a
scaled-down grid (16 cores by default, plus 64 cores where the paper's
claim is specifically about 64-core behaviour).  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_FULL=1`` to run the paper-sized grid (16 and 64
cores, full workload scale) -- slower but closer to the published
numbers.  The printed tables are the deliverable; the benchmark timings
just record how long each experiment takes to regenerate.

The figure drivers run on the parallel experiment engine
(:mod:`repro.harness.jobs`): set ``REPRO_BENCH_WORKERS=8`` to fan each
figure's grid across processes and ``REPRO_BENCH_CACHE=.repro-cache``
to serve repeated grid points from the on-disk result cache (the
second benchmark run of an unchanged tree is then nearly free).
"""

import pytest

from repro.common import config

FULL = config.bench_full()

#: (core counts, workload scale) for the default and full grids.
CORES = (16, 64) if FULL else (16,)
SCALE = 1.0 if FULL else 0.4

#: Engine fan-out/caching for the figure drivers (resolved through the
#: :mod:`repro.common.config` knob table).
WORKERS = config.bench_workers()
CACHE_DIR = config.bench_cache()


@pytest.fixture(scope="session")
def bench_cores():
    return CORES


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE


@pytest.fixture(scope="session")
def bench_engine():
    """Keyword arguments forwarded to every figure driver's engine."""
    return {"workers": WORKERS, "cache_dir": CACHE_DIR}
