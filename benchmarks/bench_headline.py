"""The paper's headline claims (abstract / conclusion).

Paper, at 64 cores: a 2-entry-per-tile MSA with the OMU services 93% of
synchronization operations, achieves a 1.43x mean speedup over pthreads
(up to 7.59x on streamcluster), and performs within 3% of ideal
zero-latency synchronization.  We assert the same *shape* on our
simulated substrate: high coverage, a solid mean speedup with
streamcluster the top winner, and most of the ideal machine's benefit
captured."""

import pytest

from repro.harness.experiments import headline


@pytest.fixture(scope="module")
def numbers(bench_cores, bench_scale, bench_engine):
    return headline(
        n_cores=bench_cores[-1], scale=bench_scale, print_out=True, **bench_engine
    )


def test_headline_regenerate(benchmark, bench_cores, bench_scale, bench_engine):
    result = benchmark.pedantic(
        lambda: headline(
            n_cores=bench_cores[0], scale=bench_scale, print_out=False,
            **bench_engine,
        ),
        rounds=1,
        iterations=1,
    )
    assert result["mean_speedup"] > 1.0


class TestHeadlineShapes:
    def test_mean_speedup_solid(self, numbers):
        assert numbers["mean_speedup"] > 1.3

    def test_max_speedup_in_streamcluster_class(self, numbers):
        assert numbers["max_speedup"] > 2.0
        assert numbers["max_speedup_app"] in ("streamcluster", "raytrace")

    def test_high_coverage(self, numbers):
        assert numbers["mean_coverage_pct"] > 75.0

    def test_most_of_ideal_captured(self, numbers):
        """Paper: within 3% of ideal.  Our substrate keeps a larger gap
        on some kernels (documented in EXPERIMENTS.md); require that
        MSA/OMU-2 lands within 2x of the zero-latency oracle while the
        software baseline is much further away."""
        assert numbers["mean_fraction_of_ideal"] > 0.5
