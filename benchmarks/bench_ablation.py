"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper -- these sweep the knobs the paper fixes
(entry count, OMU counter count, simple counters vs counting Bloom
filter, HWSync on/off) and check that each mechanism earns its place.
"""

import pytest

from repro.common.params import MSAParams, OMUParams
from repro.harness.jobs import JobSpec, execute_spec
from repro.workloads.kernels import KERNELS

assert KERNELS  # kernels registry backs the specs' workload names


def run_with(msa=None, omu=None, app="radiosity", n_cores=16, scale=0.4, seed=2015):
    """One ablation point through the engine's spec/executor path:
    parameter overrides ride in ``JobSpec.params`` so the same spec is
    poolable and content-hashable for caching."""
    overrides = {}
    if msa is not None:
        overrides["msa"] = msa
    if omu is not None:
        overrides["omu"] = omu
    return execute_spec(
        JobSpec(
            config="msa-omu-2",
            workload=app,
            cores=n_cores,
            scale=scale,
            seed=seed,
            params=overrides,
        )
    )


class TestEntryCountSweep:
    """More entries help until the active working set fits; the paper's
    point is that 2 already captures most of the benefit."""

    @pytest.fixture(scope="class")
    def sweep(self, bench_scale):
        results = {}
        for entries in (1, 2, 4, 8, None):
            r = run_with(
                msa=MSAParams(entries_per_tile=entries),
                app="radiosity",
                scale=bench_scale,
            )
            results[entries] = r
        label = lambda e: "inf" if e is None else str(e)
        print("\nAblation: MSA entries per tile (radiosity, 16 cores)")
        for e, r in results.items():
            print(
                f"  entries={label(e):>3}: cycles={r.cycles:>8} "
                f"coverage={100 * r.msa_coverage:.1f}%"
            )
        return results

    def test_sweep_timing(self, benchmark, bench_scale):
        benchmark.pedantic(
            lambda: run_with(
                msa=MSAParams(entries_per_tile=2), scale=bench_scale
            ),
            rounds=1,
            iterations=1,
        )

    def test_coverage_monotone_in_entries(self, sweep):
        coverages = [sweep[e].msa_coverage for e in (1, 2, 4, 8)]
        assert all(
            b >= a - 0.02 for a, b in zip(coverages, coverages[1:])
        )

    def test_more_entries_never_much_worse(self, sweep):
        assert sweep[8].cycles <= sweep[1].cycles * 1.1

    def test_infinite_is_the_bound(self, sweep):
        assert sweep[None].msa_coverage >= sweep[2].msa_coverage - 0.01


class TestOmuCounterSweep:
    """Fewer counters -> more aliasing -> more software steering; the
    effect is performance-only (runs stay correct)."""

    @pytest.fixture(scope="class")
    def sweep(self, bench_scale):
        results = {}
        for n_counters in (1, 2, 4, 16):
            r = run_with(
                omu=OMUParams(n_counters=n_counters),
                app="radiosity",
                scale=bench_scale,
            )
            results[n_counters] = r
        print("\nAblation: OMU counters per slice (radiosity, 16 cores)")
        for n, r in results.items():
            steered = r.msa_counters.get("omu_steered_sw", 0)
            print(
                f"  counters={n:>2}: cycles={r.cycles:>8} "
                f"aliasing-steered={steered}"
            )
        return results

    def test_sweep_timing(self, benchmark, bench_scale):
        benchmark.pedantic(
            lambda: run_with(omu=OMUParams(n_counters=1), scale=bench_scale),
            rounds=1,
            iterations=1,
        )

    def test_aliasing_steering_decreases_with_counters(self, sweep):
        steered = {
            n: sweep[n].msa_counters.get("omu_steered_sw", 0) for n in sweep
        }
        assert steered[1] >= steered[16]

    def test_single_counter_still_correct(self, sweep):
        # validation hook ran inside run_workload; reaching here means
        # the 1-counter machine completed the workload correctly.
        assert sweep[1].cycles > 0


class TestBloomVsSimple:
    def test_bloom_reduces_steering(self, benchmark, bench_scale):
        simple = benchmark.pedantic(
            lambda: run_with(
                omu=OMUParams(n_counters=8), app="radiosity", scale=bench_scale
            ),
            rounds=1,
            iterations=1,
        )
        bloom = run_with(
            omu=OMUParams(n_counters=8, use_bloom=True, bloom_hashes=2),
            app="radiosity",
            scale=bench_scale,
        )
        s = simple.msa_counters.get("omu_steered_sw", 0)
        b = bloom.msa_counters.get("omu_steered_sw", 0)
        print(f"\nAblation: OMU steering simple={s} bloom={b}")
        assert b <= s + 5  # Bloom never much worse, usually better


class TestHwsyncAblation:
    def test_hwsync_earns_its_place_on_fluidanimate(
        self, benchmark, bench_scale
    ):
        with_opt = benchmark.pedantic(
            lambda: run_with(
                msa=MSAParams(entries_per_tile=2, hwsync_opt=True),
                app="fluidanimate",
                scale=bench_scale,
            ),
            rounds=1,
            iterations=1,
        )
        without = run_with(
            msa=MSAParams(entries_per_tile=2, hwsync_opt=False),
            app="fluidanimate",
            scale=bench_scale,
        )
        print(
            f"\nAblation: HWSync on fluidanimate "
            f"with={with_opt.cycles} without={without.cycles}"
        )
        assert with_opt.cycles <= without.cycles * 1.05

    def test_hwsync_harmless_on_barrier_app(self, bench_scale):
        with_opt = run_with(
            msa=MSAParams(entries_per_tile=2, hwsync_opt=True),
            app="streamcluster",
            scale=bench_scale,
        )
        without = run_with(
            msa=MSAParams(entries_per_tile=2, hwsync_opt=False),
            app="streamcluster",
            scale=bench_scale,
        )
        assert with_opt.cycles <= without.cycles * 1.1


class TestNocSensitivity:
    """The MSA's benefit comes from eliminating round trips, so it must
    grow as the interconnect gets slower -- a sanity anchor for the
    latency model."""

    def _run_noc(self, config, router_latency, scale):
        from repro.common.params import NocParams

        return execute_spec(
            JobSpec(
                config=config,
                workload="streamcluster",
                cores=16,
                scale=scale,
                params={"noc": NocParams(router_latency=router_latency)},
            )
        )

    def test_sweep_timing(self, benchmark, bench_scale):
        benchmark.pedantic(
            lambda: self._run_noc("msa-omu-2", 2, bench_scale),
            rounds=1,
            iterations=1,
        )

    def test_msa_gap_over_spinning_software_grows_with_noc_latency(
        self, bench_scale
    ):
        """Tournament-barrier software is coherence-bound: its cost (and
        therefore the MSA's absolute cycle advantage) scales with the
        interconnect.  (The *futex* baseline is kernel-constant-bound,
        so its ratio is NoC-insensitive -- that contrast is itself a
        property of the model worth pinning.)"""
        gaps = {}
        for router_latency in (1, 8):
            sw = self._run_noc("mcs-tour", router_latency, bench_scale)
            hw = self._run_noc("msa-omu-2", router_latency, bench_scale)
            gaps[router_latency] = sw.cycles - hw.cycles
        print(f"\nAblation: MSA absolute advantage vs router latency {gaps}")
        assert gaps[8] > gaps[1]

    def test_futex_baseline_noc_insensitive(self, bench_scale):
        ratios = {}
        for router_latency in (1, 8):
            sw = self._run_noc("pthread", router_latency, bench_scale)
            hw = self._run_noc("msa-omu-2", router_latency, bench_scale)
            ratios[router_latency] = sw.cycles / hw.cycles
        # Kernel costs dominate the pthread path: the ratio moves by
        # only a few percent across an 8x router-latency change.
        assert abs(ratios[8] - ratios[1]) / ratios[1] < 0.15

    def test_everything_slower_on_slow_noc(self, bench_scale):
        fast = self._run_noc("msa-omu-2", 1, bench_scale)
        slow = self._run_noc("msa-omu-2", 8, bench_scale)
        assert slow.cycles > fast.cycles


class TestSmtAblation:
    """Hardware multithreading (the paper's HWQueue-bit-per-hw-thread
    extension): double the threads on the same 16 tiles."""

    def _run_smt(self, config, hw_threads, scale, app="streamcluster"):
        # Thread count (16 * hw_threads) deliberately exceeds spec.cores,
        # which the registry call convention cannot express -- this one
        # stays on the direct build path.
        from repro.common.params import CoreParams
        from repro.harness.configs import machine_params
        from repro.harness.runner import run_workload
        from repro.machine import Machine

        params, library = machine_params(config, n_cores=16)
        params = params.with_(core=CoreParams(hw_threads=hw_threads))
        machine = Machine(params, library=library)
        return run_workload(
            machine, KERNELS[app](16 * hw_threads, scale)
        )

    def test_smt_doubles_participants_correctly(self, benchmark, bench_scale):
        result = benchmark.pedantic(
            lambda: self._run_smt("msa-omu-2", 2, bench_scale),
            rounds=1,
            iterations=1,
        )
        assert result.cycles > 0

    def test_msa_advantage_survives_smt(self, bench_scale):
        msa = self._run_smt("msa-omu-2", 2, bench_scale)
        sw = self._run_smt("pthread", 2, bench_scale)
        print(
            f"\nAblation: SMT x2 streamcluster pthread={sw.cycles} "
            f"msa={msa.cycles} ({sw.cycles / msa.cycles:.2f}x)"
        )
        assert msa.cycles < sw.cycles
