"""Table 1: taxonomy of hardware synchronization approaches.

Regenerates the paper's related-work comparison table and checks its
headline claims: only MSA/OMU covers all three primitives with direct
notification, no dedicated network, O(N_core) state, and hardware
overflow handling.
"""

from repro.harness.experiments import table1
from repro.harness.related_work import RELATED_WORK, supports_all_three


def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: table1(print_out=True), rounds=1, iterations=1
    )
    assert len(rows) == 13
    ours = [s for s in RELATED_WORK if "MSA/OMU" in s.name]
    assert len(ours) == 1 and supports_all_three(ours[0])
    assert sum(supports_all_three(s) for s in RELATED_WORK) == 1
    assert ours[0].notification == "direct"
    assert not ours[0].dedicated_network
    assert ours[0].overflow == "HW"
    # No prior barrier accelerator handles resource overflow.
    for scheme in RELATED_WORK:
        if scheme.primitives == ("barrier",):
            assert scheme.overflow in ("Stall", "None")
