"""High-level facade: build machines, run workloads, sweep grids.

One import gives the whole reproduction workflow with consistent
keyword names (``cores``, ``seed``, ``scale``) everywhere::

    from repro import api

    machine = api.build("msa-omu-2", cores=16)
    result = api.run("msa-omu-2", "streamcluster", cores=16, scale=0.5)
    points = api.sweep(
        configs=("pthread", "msa-omu-2"),
        workloads=("canneal", "swaptions"),
        cores=(16,),
        workers=4,                  # fan out across processes
        cache_dir="~/.cache/repro", # repeat runs are free
    )

Everything here is re-exported from the package root, so
``repro.build(...)`` / ``repro.run(...)`` / ``repro.sweep(...)`` work
too.  The lower-level modules (:mod:`repro.harness.jobs`,
:mod:`repro.harness.configs`, :mod:`repro.harness.runner`) remain the
extension points; this module only composes them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.configs import CONFIG_NAMES, build_machine
from repro.harness.jobs import (
    Engine,
    EngineStats,
    JobResult,
    JobSpec,
    resolve_factory,
    run_jobs,
)
from repro.harness.runner import RunResult, run_workload
from repro.harness.sweep import SweepPoint, add_speedups, to_csv
from repro.harness.sweep import sweep as _sweep_impl
from repro.machine import Machine
from repro.workloads.base import Workload

__all__ = [
    "build",
    "run",
    "sweep",
    "traffic",
    "bench",
    "dse",
    "observe",
    "report",
    "fsck",
    "chaos_harness",
    "serve",
    "submit",
    "status",
    "wait",
    "fetch",
    "Machine",
    "RunResult",
    "SweepPoint",
    "Engine",
    "EngineStats",
    "JobSpec",
    "JobResult",
    "run_jobs",
    "add_speedups",
    "to_csv",
    "CONFIG_NAMES",
]

DEFAULT_SEED = 2015


def build(
    config: str,
    cores: int = 16,
    seed: int = DEFAULT_SEED,
    fault_plan=None,
    **params,
) -> Machine:
    """Build a ready-to-run machine for a named configuration.

    Extra keyword arguments override top-level :class:`MachineParams`
    fields (e.g. ``msa=MSAParams(entries_per_tile=4)``,
    ``ideal_sync=True``)."""
    return build_machine(
        config, n_cores=cores, seed=seed, fault_plan=fault_plan, **params
    )


def run(
    machine_or_config: Union[Machine, str],
    workload: Union[Workload, str, Callable],
    cores: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    max_events: Optional[int] = 50_000_000,
    check: bool = True,
    fault_plan=None,
    checkers=(),
    raise_violations: bool = True,
    **params,
) -> RunResult:
    """Run one workload to completion and return its :class:`RunResult`.

    ``machine_or_config`` is either a prebuilt :class:`Machine` or a
    configuration name (which is built here with ``cores``/``seed``/
    parameter overrides).  ``workload`` is a :class:`Workload` instance,
    a registry name (kernels or microbenches), or a factory callable
    ``factory(cores[, scale])``.

    ``checkers`` attaches :mod:`repro.verify` invariant monitors
    (``True`` = all, or a sequence of monitor names); the finalized
    report lands on ``result.check_report`` and violations raise
    :class:`~repro.common.errors.InvariantViolation` unless
    ``raise_violations`` is false.
    """
    if isinstance(machine_or_config, Machine):
        machine = machine_or_config
        config = machine.library_name
        if cores is not None and cores != machine.params.n_cores:
            raise ValueError(
                f"cores={cores} conflicts with the prebuilt machine's "
                f"{machine.params.n_cores} cores"
            )
    else:
        config = machine_or_config
        machine = build(
            config,
            cores=cores if cores is not None else 16,
            seed=seed,
            fault_plan=fault_plan,
            **params,
        )
    if not isinstance(workload, Workload):
        from repro.harness.jobs import _instantiate

        factory = (
            resolve_factory(workload) if isinstance(workload, str) else workload
        )
        workload = _instantiate(factory, machine.params.n_cores, scale)
    return run_workload(
        machine,
        workload,
        max_events=max_events,
        check=check,
        config=config if isinstance(machine_or_config, str) else "",
        checkers=checkers,
        raise_violations=raise_violations,
    )


def traffic(
    scenario: str = "traffic.poisson",
    configs: Sequence[str] = None,
    loads: Sequence[float] = None,
    cores: int = 16,
    seed: int = DEFAULT_SEED,
    checkers: Sequence[str] = (),
    fault_plan=None,
    workers: Optional[int] = None,
    cache_dir=None,
    manifest=None,
    progress: bool = False,
    return_stats: bool = False,
) -> List[SweepPoint]:
    """Run an open-loop load sweep: offered load vs tail latency.

    ``scenario`` names a :data:`repro.traffic.TRAFFIC` workload
    (``traffic.poisson``/``bursty``/``diurnal``/``pareto``); ``loads``
    are offered-load multipliers (each becomes a cached ``JobSpec``
    with that ``scale``); ``configs`` are the sync backends to compare.
    Returns :class:`SweepPoint` rows with the request-latency SLO
    extras (p50/p99/p999, goodput, shed/timeout) annotated for
    :func:`to_csv` and the HTML report.  ``fault_plan`` runs the whole
    sweep under fault injection (overload plus failures).  With
    ``return_stats`` the engine's :class:`EngineStats` (cache hits,
    executions, retries) come back as a second value.  See
    docs/TRAFFIC.md and ``python -m repro traffic``.
    """
    from repro.traffic import DEFAULT_CONFIGS, DEFAULT_LOADS, load_sweep

    engine = Engine(
        workers=workers, cache_dir=cache_dir, manifest=manifest, progress=progress
    )
    points = load_sweep(
        scenario=scenario,
        configs=tuple(configs) if configs else DEFAULT_CONFIGS,
        loads=tuple(loads) if loads else DEFAULT_LOADS,
        cores=cores,
        seed=seed,
        checkers=checkers,
        fault_plan=fault_plan,
        engine=engine,
    )
    if return_stats:
        return points, engine.stats
    return points


def bench(
    suite: str = "smoke",
    points: Optional[Sequence] = None,
    repeat: int = 3,
    seed: int = DEFAULT_SEED,
    label: str = "",
    out: Optional[str] = None,
    compare_to: Optional[str] = None,
    threshold: float = 0.15,
) -> Dict:
    """Microbenchmark the simulator (see :mod:`repro.perf`).

    Measures events/sec, wall time, and peak RSS for every point of the
    named ``suite`` (or an explicit list of
    :class:`~repro.perf.BenchPoint`/spec strings) and returns the
    benchmark document.  ``out`` also writes it as JSON; ``compare_to``
    gates against a baseline document and raises ``RuntimeError`` on a
    regression beyond ``threshold`` or any determinism break.
    """
    from repro import perf

    if points is not None:
        resolved = [
            p if isinstance(p, perf.BenchPoint) else perf.BenchPoint.parse(p)
            for p in points
        ]
    else:
        resolved = list(perf.SUITES[suite])
    doc = perf.run_suite(resolved, repeat=repeat, seed=seed, label=label)
    if out:
        perf.write_doc(doc, out)
    if compare_to:
        result = perf.compare(
            doc, perf.load_doc(compare_to), threshold=threshold
        )
        if not result.ok:
            raise RuntimeError(
                "benchmark regression gate failed:\n" + result.describe()
            )
    return doc


def observe(
    machine_or_config: Union[Machine, str],
    workload: Union[Workload, str, Callable],
    cores: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    span_limit: Optional[int] = None,
    checkers=(),
    **run_kwargs,
):
    """Run one workload with the observability collector attached.

    Same signature spirit as :func:`run`, returning ``(result, obs)``
    where ``obs`` is the finalized :class:`repro.obs.ObsResult` (span
    forest, unified metrics registry, OMU timeline).  Observation is
    passive: ``result`` is bit-for-bit identical to an unobserved
    :func:`run` of the same point.

    >>> result, obs = observe("msa-omu-2", "streamcluster",
    ...                       cores=4, scale=0.05)
    >>> result.cycles == run("msa-omu-2", "streamcluster",
    ...                      cores=4, scale=0.05).cycles
    True
    >>> sorted(obs.attribution())[:2]
    ['barrier.wait', 'lock.acquire']
    """
    from repro.obs import DEFAULT_SPAN_LIMIT, Collector

    if isinstance(machine_or_config, Machine):
        machine = machine_or_config
    else:
        machine = build(machine_or_config, cores=cores or 16, seed=seed)
    collector = Collector.attach(
        machine,
        span_limit=span_limit if span_limit is not None else DEFAULT_SPAN_LIMIT,
    )
    result = run(
        machine,
        workload,
        scale=scale,
        checkers=checkers,
        **run_kwargs,
    )
    if isinstance(machine_or_config, str):
        result.config = machine_or_config
    return result, collector.finalize()


def report(cache_dir, out, baseline: Optional[str] = None, title=None):
    """Render the cross-sweep HTML report from a result cache -- pure
    deserialization, nothing is re-simulated.  Returns the output path.
    See :func:`repro.obs.report_from_cache` (and ``python -m repro
    report`` for the CLI form)."""
    from repro.obs import report_from_cache

    return report_from_cache(cache_dir, out, baseline=baseline, title=title)


def dse(
    space,
    strategy="grid",
    baseline: str = "pthread",
    **kwargs,
):
    """Explore a machine-parameter design space and return the Pareto
    front as a :class:`repro.dse.DseResult`.

    ``space`` is a :class:`repro.dse.SpaceSpec`, a space dict (the
    ``to_dict`` / space-file format), or a mapping of axes
    (``{"msa.entries_per_tile": [1, 2, 4]}``; grid keywords --
    ``config``, ``workloads``, ``cores``, ``scale``, ``seed``,
    ``name`` -- then shape the space, everything else defaults).  ``strategy`` is ``"grid"``, ``"random"``, or
    ``"halving"`` (or a :class:`repro.dse.Strategy`); remaining keyword
    arguments go to :func:`repro.dse.explore` (``cache_dir``,
    ``workers``, ``server``, ``chaos_rate``, strategy knobs...).  Every
    design point is an ordinary cached sweep point, so re-running the
    same space resumes from the cache.  See docs/DSE.md; the CLI form
    is ``python -m repro dse``."""
    from repro.dse import SpaceSpec, explore

    if isinstance(space, SpaceSpec):
        spec = space
    elif isinstance(space, dict) and "axes" in space:
        spec = SpaceSpec.from_dict(space)
    elif isinstance(space, dict):
        # Bare axes mapping: grid keywords (config/workloads/cores/...)
        # belong to the space, not to explore().
        make_kwargs = {
            k: kwargs.pop(k)
            for k in ("config", "workloads", "cores", "scale", "seed", "name")
            if k in kwargs
        }
        spec = SpaceSpec.make(space, **make_kwargs)
    else:
        from repro.common.errors import ConfigError

        raise ConfigError(
            "space must be a SpaceSpec, a space document dict, or an "
            f"axes mapping, got {type(space).__name__}"
        )
    return explore(spec, strategy=strategy, baseline=baseline, **kwargs)


def fsck(cache_dir, manifest=None, repair: bool = True):
    """Scan (and by default repair) a result cache, its job store, and
    optionally a sweep manifest: torn writes, checksum mismatches,
    schema drift, expired leases.  Corrupt entries are evicted (a
    corrupt entry is a cache miss by contract -- the point re-runs).
    Returns a :class:`repro.resilience.FsckReport`; see ``python -m
    repro fsck`` for the CLI form."""
    from repro.resilience import fsck as _fsck_impl

    return _fsck_impl(cache_dir, manifest=manifest, repair=repair)


def chaos_harness(**kwargs):
    """Run the harness-level chaos gauntlet (worker SIGKILLs, cache
    corruption, simulated disk-full) and verify the sweep still
    converges byte-identically to an undisturbed serial run.  Returns a
    :class:`repro.resilience.ChaosHarnessResult`; see ``python -m repro
    chaos-harness`` and docs/HARNESS.md."""
    from repro.resilience import chaos_harness as _chaos_impl

    return _chaos_impl(**kwargs)


def serve(
    cache_dir=None,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: Optional[int] = None,
    **kwargs,
):
    """Run the experiment service until SIGTERM/SIGINT: an HTTP/JSON
    server over the durable job store, the supervised worker fleet, and
    the result cache, so many clients share one execution backend.  See
    :mod:`repro.serve`, :mod:`repro.client`, and docs/SERVICE.md; the
    CLI form is ``python -m repro serve``."""
    from repro.serve import serve as _serve_impl

    return _serve_impl(
        cache_dir=cache_dir, host=host, port=port, workers=workers, **kwargs
    )


def submit(
    configs: Union[str, Sequence[str]],
    workloads: Union[str, Sequence[str]],
    cores: Union[int, Sequence[int]] = (16,),
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    server: Optional[str] = None,
    **kwargs,
) -> str:
    """Submit a sweep grid to a running service (``server`` or
    ``REPRO_SERVER``) without waiting; returns the content-addressed
    sweep id for :func:`status` / :func:`wait` / :func:`fetch`.
    Same grid keywords as :func:`sweep`."""
    from repro.client import Client

    return Client(server).submit(
        configs=configs,
        workloads=workloads,
        cores=cores,
        scale=scale,
        seed=seed,
        **kwargs,
    )


def status(sweep_id: str, server: Optional[str] = None) -> Dict:
    """A submitted sweep's status document (per-job statuses, counts,
    ``done``/``ok`` rollups) from the service."""
    from repro.client import Client

    return Client(server).status(sweep_id)


def wait(
    sweep_id: str,
    server: Optional[str] = None,
    timeout_s: Optional[float] = None,
) -> Dict:
    """Block (long-polling the service) until every job of the sweep is
    terminal; returns the final status document, raising
    :class:`~repro.common.errors.ServiceError` on failures/timeout."""
    from repro.client import Client

    return Client(server).wait(sweep_id, timeout_s=timeout_s)


def fetch(sweep_id: str, server: Optional[str] = None) -> List[SweepPoint]:
    """Fetch a finished sweep's points from the service -- byte-identical
    to running the same grid locally."""
    from repro.client import Client

    return Client(server).fetch(sweep_id)


def _sweep_remote(server, configs, workloads, cores, scale, seed, checkers,
                  params, return_stats, rejected):
    """The ``server=`` path of :func:`sweep`: submit, wait, fetch."""
    from repro.client import Client
    from repro.common.errors import ConfigError

    for name, value in rejected.items():
        if value:
            raise ConfigError(
                f"sweep({name}=...) does not combine with server=: the "
                "service owns its own engine; set that up server-side"
            )
    if isinstance(workloads, dict):
        raise ConfigError(
            "explicit workload factories do not cross the wire; pass "
            "registry workload names when sweeping through a server"
        )
    client = Client(server)
    sid = client.submit(
        configs=configs,
        workloads=workloads,
        cores=cores,
        scale=scale,
        seed=seed,
        params=params,
        checkers=tuple(checkers),
    )
    client.wait(sid)
    points = client.fetch(sid)
    if return_stats:
        created = client.submissions[sid]["created_jobs"]
        stats = EngineStats(
            total=len(points),
            cache_hits=len(points) - created,
            executed=created,
        )
        return points, stats
    return points


def sweep(
    configs: Sequence[str],
    workloads: Union[Dict[str, Callable], Sequence[str], str],
    cores: Sequence[int] = (16,),
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
    cache_dir=None,
    manifest=None,
    progress=False,
    machine_hook: Optional[Callable] = None,
    return_stats: bool = False,
    checkers: Sequence[str] = (),
    server: Optional[str] = None,
    params: Optional[Dict] = None,
    fault_plan=None,
) -> Union[List[SweepPoint], Tuple[List[SweepPoint], EngineStats]]:
    """Run a (config x workload x cores) grid through the engine.

    ``workloads`` may be registry names (string or sequence of strings)
    or an explicit ``{name: factory}`` mapping.  ``workers`` > 1 fans
    points out across processes; ``cache_dir`` serves repeated points
    from the on-disk result cache; ``manifest`` makes the sweep
    resumable.  With ``return_stats`` the engine's
    :class:`EngineStats` (cache hits, retries, failures) ride along.

    ``params`` applies machine-parameter overrides to every point of
    the grid -- top-level :class:`MachineParams` fields or dotted
    scalar paths like ``{"msa.entries_per_tile": 4}`` (this is how
    :mod:`repro.dse` evaluates design points); ``fault_plan`` runs the
    grid under fault injection.  Both fold into each point's cache key.

    With ``server`` (a ``repro serve`` URL), the grid is submitted to
    that service instead of running locally -- the call blocks until the
    service finishes and returns the same points, byte-identical; the
    engine knobs (``workers``/``cache_dir``/...) then belong to the
    server, not this call.  Dotted ``params`` cross the wire; fault
    plans are process-local and do not.
    """
    if server is not None:
        if fault_plan is not None:
            from repro.common.errors import ConfigError

            raise ConfigError(
                "fault_plan does not combine with server=: fault plans "
                "are process-local; run chaos sweeps locally"
            )
        return _sweep_remote(
            server, configs, workloads, cores, scale, seed, checkers,
            params, return_stats,
            rejected={
                "workers": workers, "cache_dir": cache_dir,
                "manifest": manifest, "machine_hook": machine_hook,
            },
        )
    if isinstance(workloads, str):
        workloads = (workloads,)
    if not isinstance(workloads, dict):
        workloads = {name: resolve_factory(name) for name in workloads}
    engine = Engine(
        workers=workers, cache_dir=cache_dir, manifest=manifest, progress=progress
    )
    points = _sweep_impl(
        configs=configs,
        workload_factories=workloads,
        cores=cores,
        scale=scale,
        seed=seed,
        machine_hook=machine_hook,
        engine=engine if machine_hook is None else None,
        checkers=tuple(checkers),
        params=params,
        fault_plan=fault_plan,
    )
    if return_stats:
        return points, engine.stats
    return points
