"""Hardware cost model for MiSAR design points.

The paper's pitch is *minimalism*: the MSA beats lock cache / SSB /
MiSB style accelerators not by being faster but by being drastically
smaller.  To rank design points the way the paper does, the DSE layer
needs a cost axis next to the performance axis; this module prices a
:class:`~repro.common.params.MachineParams` in storage bits, following
the structure-size accounting of the paper (section 4, Table 1):

* one **MSA entry** holds an address tag, the FSM state of the
  synchronization variable, the HWQueue bit-vector (one bit per
  hardware thread in the machine -- this is the term that grows with
  the core count), and a few auxiliary bits (head/count fields);
* one **OMU slice** holds ``n_counters`` saturating counters of
  ``counter_bits`` each (scaled by ``bloom_hashes`` when the counting
  Bloom filter variant is enabled);
* the **NoC** contributes one link-width worth of wiring per mesh
  link -- constant across MSA sizing but it separates machines swept
  over ``noc``-level axes.

Every constant is a dataclass field, so studies that disagree with the
defaults (different tag width, different link width) override them and
re-rank without touching the search code.  Costs are *relative* units
for Pareto ranking, not area in mm^2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.params import MachineParams


@dataclass(frozen=True)
class CostModel:
    """Storage-bit cost accounting (override any field to re-price)."""

    entry_tag_bits: int = 46
    """Synchronization-address tag per MSA entry (paper: 46-bit tag)."""

    entry_state_bits: int = 4
    """FSM state of the entry (free/lock/barrier/condvar sub-states)."""

    entry_aux_bits: int = 8
    """Head pointer / waiter-count / bookkeeping bits per entry."""

    inf_entries: int = 64
    """Entries charged for MSA-inf (``entries_per_tile=None``): enough
    to never overflow any evaluated workload, i.e. the upper bound the
    paper argues against building."""

    link_bits: float = 64.0
    """Wiring charged per mesh link (one flit width)."""

    # ------------------------------------------------------------------
    def entry_bits(self, params: MachineParams) -> float:
        """Bits in one MSA entry on this machine.  The HWQueue term is
        one bit per hardware thread *in the whole machine*, which is why
        entry cost -- and therefore the minimalism argument -- scales
        with core count."""
        hwqueue = params.n_cores * params.core.hw_threads
        return (
            self.entry_tag_bits
            + self.entry_state_bits
            + hwqueue
            + self.entry_aux_bits
        )

    def msa_bits(self, params: MachineParams) -> float:
        """Total MSA storage across all tiles (0 for software-only)."""
        if params.msa is None:
            return 0.0
        entries = params.msa.entries_per_tile
        if entries is None:
            entries = self.inf_entries
        return params.n_cores * entries * self.entry_bits(params)

    def omu_bits(self, params: MachineParams) -> float:
        """Total OMU counter storage across all tiles (0 when disabled
        or when there is no MSA to manage overflow for)."""
        if params.msa is None or not params.omu.enabled:
            return 0.0
        per_slice = params.omu.n_counters * params.omu.counter_bits
        if params.omu.use_bloom:
            per_slice *= params.omu.bloom_hashes
        return params.n_cores * per_slice

    def noc_links(self, params: MachineParams) -> int:
        """Bidirectional links in the 2D mesh: ``2 * side * (side-1)``."""
        side = params.mesh_side
        return 2 * side * (side - 1)

    def breakdown(self, params: MachineParams) -> Dict[str, float]:
        """All cost components plus their sum (the ``total`` key is the
        scalar the Pareto front minimizes)."""
        msa = self.msa_bits(params)
        omu = self.omu_bits(params)
        links = self.noc_links(params)
        return {
            "msa_bits": msa,
            "omu_bits": omu,
            "noc_links": float(links),
            "total": msa + omu + links * self.link_bits,
        }

    def total(self, params: MachineParams) -> float:
        return self.breakdown(params)["total"]

    def to_dict(self) -> Dict[str, float]:
        return {
            "entry_tag_bits": self.entry_tag_bits,
            "entry_state_bits": self.entry_state_bits,
            "entry_aux_bits": self.entry_aux_bits,
            "inf_entries": self.inf_entries,
            "link_bits": self.link_bits,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "CostModel":
        return cls(
            entry_tag_bits=int(data.get("entry_tag_bits", 46)),
            entry_state_bits=int(data.get("entry_state_bits", 4)),
            entry_aux_bits=int(data.get("entry_aux_bits", 8)),
            inf_entries=int(data.get("inf_entries", 64)),
            link_bits=float(data.get("link_bits", 64.0)),
        )
