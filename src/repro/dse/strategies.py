"""Search strategies: which designs run, at what scale, in what order.

Every strategy speaks the same rung protocol, driven by
:func:`repro.dse.explore.explore`:

* :meth:`Strategy.first_rung` returns the opening :class:`Rung` -- a
  set of designs and the workload scale to evaluate them at;
* after the rung's sweeps finish, :meth:`Strategy.next_rung` receives
  the per-design scores (geomean speedup over the baseline) and either
  returns the next rung or ``None`` to stop.  The last rung's designs
  are the candidates the Pareto front is drawn from.

``grid`` runs every design once at full scale; ``random`` runs a
seeded sample of them (for spaces too large to enumerate); ``halving``
is successive halving: start *all* designs at a cheap scale
(``scale / eta**(rungs-1)``), keep the top ``1/eta`` fraction by
score, re-run the survivors at the next scale, and repeat until the
final rung runs at full scale.  Because every (design, scale) pair is
an ordinary cached sweep point, the early cheap rungs of a halving run
are shared verbatim with any other search that visits them.

All strategies are deterministic: same space + same strategy arguments
produce the same rung sequence (``random`` derives its RNG purely from
its ``seed``; halving breaks score ties by design order).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.dse.space import SpaceSpec


@dataclass
class Rung:
    """One evaluation round: ``designs`` at workload ``scale``."""

    index: int
    scale: float
    designs: List[Dict[str, Any]]

    def describe(self) -> str:
        return (
            f"rung {self.index}: {len(self.designs)} design(s) "
            f"at scale {self.scale:g}"
        )


class Strategy:
    """Base protocol; subclasses set ``name`` and the rung logic."""

    name = "base"

    def first_rung(self, space: SpaceSpec) -> Rung:
        raise NotImplementedError

    def next_rung(
        self, space: SpaceSpec, rung: Rung, scores: Sequence[float]
    ) -> Optional[Rung]:
        return None

    def describe(self) -> str:
        return self.name


class GridStrategy(Strategy):
    """Exhaustive: every design, one rung, full scale."""

    name = "grid"

    def first_rung(self, space: SpaceSpec) -> Rung:
        return Rung(index=0, scale=space.scale, designs=space.designs())


class RandomStrategy(Strategy):
    """Seeded uniform sample of ``n`` designs, one rung, full scale.

    Sampling is without replacement and driven entirely by ``seed``
    (falling back to the space's seed), so the same call explores the
    same designs -- and therefore replays entirely from cache.
    """

    name = "random"

    def __init__(self, n: int = 8, seed: Optional[int] = None):
        if n < 1:
            raise ConfigError(f"random strategy needs n >= 1, got {n}")
        self.n = n
        self.seed = seed

    def first_rung(self, space: SpaceSpec) -> Rung:
        designs = space.designs()
        seed = space.seed if self.seed is None else self.seed
        if self.n < len(designs):
            rng = random.Random(seed)
            designs = rng.sample(designs, self.n)
        return Rung(index=0, scale=space.scale, designs=designs)

    def describe(self) -> str:
        return f"random(n={self.n})"


class HalvingStrategy(Strategy):
    """Successive halving across ``rungs`` rungs with reduction ``eta``.

    Rung *i* (0-based) runs at ``space.scale / eta**(rungs-1-i)``, so
    the last rung is exactly full scale.  Survivors are the top
    ``ceil(n / eta)`` designs by score; ties keep the earlier design
    (stable sort over design order), which makes promotion
    deterministic.
    """

    name = "halving"

    def __init__(self, eta: int = 2, rungs: int = 3):
        if eta < 2:
            raise ConfigError(f"halving needs eta >= 2, got {eta}")
        if rungs < 1:
            raise ConfigError(f"halving needs rungs >= 1, got {rungs}")
        self.eta = eta
        self.rungs = rungs

    def _scale(self, space: SpaceSpec, index: int) -> float:
        return space.scale / (self.eta ** (self.rungs - 1 - index))

    def first_rung(self, space: SpaceSpec) -> Rung:
        return Rung(
            index=0, scale=self._scale(space, 0), designs=space.designs()
        )

    def next_rung(
        self, space: SpaceSpec, rung: Rung, scores: Sequence[float]
    ) -> Optional[Rung]:
        if rung.index + 1 >= self.rungs:
            return None
        if len(scores) != len(rung.designs):
            raise ConfigError(
                f"halving rung {rung.index}: got {len(scores)} scores "
                f"for {len(rung.designs)} designs"
            )
        keep = max(1, math.ceil(len(rung.designs) / self.eta))
        order = sorted(
            range(len(rung.designs)), key=lambda i: -scores[i]
        )
        survivors = sorted(order[:keep])  # restore design order
        return Rung(
            index=rung.index + 1,
            scale=self._scale(space, rung.index + 1),
            designs=[rung.designs[i] for i in survivors],
        )

    def describe(self) -> str:
        return f"halving(eta={self.eta}, rungs={self.rungs})"


#: Registry for the CLI / ``explore(strategy="name")`` spelling.
STRATEGIES = {
    "grid": GridStrategy,
    "random": RandomStrategy,
    "halving": HalvingStrategy,
}


def resolve_strategy(strategy, **kwargs) -> Strategy:
    """Accept a name, a class, or an instance; reject the unknown."""
    if isinstance(strategy, Strategy):
        if kwargs:
            raise ConfigError(
                "strategy arguments only apply when resolving by name"
            )
        return strategy
    if isinstance(strategy, type) and issubclass(strategy, Strategy):
        return strategy(**kwargs)
    if isinstance(strategy, str):
        if strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown strategy {strategy!r}; "
                f"choose from {sorted(STRATEGIES)}"
            )
        return STRATEGIES[strategy](**kwargs)
    raise ConfigError(
        f"strategy must be a name, Strategy class, or instance, "
        f"got {type(strategy).__name__}"
    )
