"""The DSE driver: strategy rungs -> cached sweeps -> Pareto front.

:func:`explore` walks a :class:`~repro.dse.space.SpaceSpec` with a
search strategy and returns a :class:`DseResult`.  Every evaluation is
an ordinary :func:`repro.api.sweep` call -- one per design per rung,
plus one baseline sweep per rung scale -- so all the machinery built
for sweeps applies unchanged: the result cache dedups repeated points
(across rungs, across strategies, across re-runs), ``server=`` pushes
the grid to a ``repro serve`` instance, and killing the process loses
nothing that already finished.

Objectives per design (all computed over the *final* rung, where the
designs ran at full scale):

``speedup``   geomean over the (workload x cores) grid of
              ``baseline_cycles / design_cycles`` (max).
``cost``      storage bits from the :class:`~repro.dse.cost.CostModel`
              at the largest evaluated core count (min).
``chaos``     resilience under a :func:`repro.faults.drop_plan`: for
              traffic workloads the worst p99 sojourn across the grid;
              for kernels the geomean slowdown vs the clean run (min).
              Fault plans never cross the service wire, so the chaos
              pass is local-only; with ``server=`` pass
              ``chaos_rate=0``.

Designs eliminated on early (cheap) rungs are kept in the record --
with the rung they reached and the score that eliminated them -- but
only full-scale designs enter the Pareto front: scores at different
scales are not comparable.

The result persists as ``<cache_dir>/dse/<space_hash>.json`` (schema
:data:`~repro.common.schema.DSE_SCHEMA`), which is what ``python -m
repro report`` reads to render Pareto scatter and heatmap pages
without re-running anything.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.schema import DSE_SCHEMA, check_schema
from repro.common.stats import geomean
from repro.dse.cost import CostModel
from repro.dse.pareto import pareto_indices
from repro.dse.space import SpaceSpec
from repro.dse.strategies import Strategy, resolve_strategy
from repro.harness.jobs import EngineStats

#: Default message-drop probability for the chaos objective.
DEFAULT_CHAOS_RATE = 0.02


@dataclass
class DesignRecord:
    """One evaluated design and everything we learned about it."""

    design: Dict[str, Any]
    """The axis values (``{"msa.entries_per_tile": 4, ...}``)."""

    speedup: float
    """Geomean speedup over the baseline at the last rung it ran."""

    cost: float
    """Cost-model total (storage bits) -- scale-independent."""

    cost_breakdown: Dict[str, float] = field(default_factory=dict)
    chaos: Optional[float] = None
    """Chaos objective (final-rung survivors only; lower is better)."""

    rung: int = 0
    """Last rung index this design was evaluated at."""

    final: bool = False
    """True when the design survived to the full-scale rung (only
    these enter the Pareto front)."""

    pareto: bool = False

    def label(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.design.items())

    def objectives(self) -> Dict[str, Optional[float]]:
        return {
            "speedup": self.speedup,
            "cost": self.cost,
            "chaos": self.chaos,
        }


@dataclass
class DseResult:
    """Outcome of one :func:`explore` run (JSON round-trippable)."""

    space: SpaceSpec
    strategy: str
    baseline: str
    records: List[DesignRecord]
    cost_model: CostModel = field(default_factory=CostModel)
    chaos_rate: float = 0.0
    stats: EngineStats = field(default_factory=EngineStats)
    rung_sizes: List[int] = field(default_factory=list)
    """Designs evaluated per rung (budget audit trail)."""

    path: Optional[str] = None
    """Where :meth:`save` last wrote this document, if anywhere."""

    # ------------------------------------------------------------------
    @property
    def pareto_records(self) -> List[DesignRecord]:
        return [r for r in self.records if r.pareto]

    @property
    def final_records(self) -> List[DesignRecord]:
        return [r for r in self.records if r.final]

    def objectives(self) -> Tuple[Tuple[str, str], ...]:
        """The objective set this result was ranked on (chaos only when
        a chaos pass actually ran)."""
        objs: List[Tuple[str, str]] = [("speedup", "max"), ("cost", "min")]
        if self.chaos_rate > 0:
            objs.append(("chaos", "min"))
        return tuple(objs)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": DSE_SCHEMA,
            "space": self.space.to_dict(),
            "space_hash": self.space.space_hash(),
            "strategy": self.strategy,
            "baseline": self.baseline,
            "cost_model": self.cost_model.to_dict(),
            "chaos_rate": self.chaos_rate,
            "rung_sizes": list(self.rung_sizes),
            "stats": asdict(self.stats),
            "records": [asdict(r) for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DseResult":
        check_schema(data.get("schema"), DSE_SCHEMA, what="dse")
        try:
            records = [
                DesignRecord(
                    design=dict(r["design"]),
                    speedup=float(r["speedup"]),
                    cost=float(r["cost"]),
                    cost_breakdown=dict(r.get("cost_breakdown", {})),
                    chaos=r.get("chaos"),
                    rung=int(r.get("rung", 0)),
                    final=bool(r.get("final", False)),
                    pareto=bool(r.get("pareto", False)),
                )
                for r in data["records"]
            ]
            stats_data = data.get("stats", {})
            stats = EngineStats(
                **{
                    k: int(v)
                    for k, v in stats_data.items()
                    if k in EngineStats.__dataclass_fields__
                }
            )
            return cls(
                space=SpaceSpec.from_dict(data["space"]),
                strategy=str(data.get("strategy", "grid")),
                baseline=str(data.get("baseline", "pthread")),
                records=records,
                cost_model=CostModel.from_dict(data.get("cost_model", {})),
                chaos_rate=float(data.get("chaos_rate", 0.0)),
                stats=stats,
                rung_sizes=[int(n) for n in data.get("rung_sizes", [])],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed DSE document: {exc}") from None

    # ------------------------------------------------------------------
    def save(self, cache_dir: str) -> str:
        """Persist under ``<cache_dir>/dse/<space_hash>.json`` (written
        atomically: same directory tmp file + rename)."""
        dse_dir = os.path.join(str(cache_dir), "dse")
        os.makedirs(dse_dir, exist_ok=True)
        path = os.path.join(dse_dir, f"{self.space.space_hash()}.json")
        fd, tmp = tempfile.mkstemp(dir=dse_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(self.to_dict(), f, indent=2, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        self.path = path
        return path

    @classmethod
    def load(cls, path: str) -> "DseResult":
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read DSE document {path}: {exc}")
        result = cls.from_dict(data)
        result.path = str(path)
        return result

    # ------------------------------------------------------------------
    def to_csv(self, path: Optional[str] = None) -> str:
        """Flat CSV: one row per design, axis columns then objectives."""
        import csv
        import io

        axis_names = [name for name, _ in self.space.axes]
        header = axis_names + [
            "speedup", "cost", "msa_bits", "omu_bits", "noc_links",
            "chaos", "rung", "final", "pareto",
        ]
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(header)
        for r in self.records:
            row: List[Any] = [r.design.get(a, "") for a in axis_names]
            row.append(f"{r.speedup:.4f}")
            row.append(f"{r.cost:.1f}")
            for part in ("msa_bits", "omu_bits", "noc_links"):
                value = r.cost_breakdown.get(part)
                row.append(f"{value:.1f}" if value is not None else "")
            row.append(f"{r.chaos:.4f}" if r.chaos is not None else "")
            row.append(r.rung)
            row.append(int(r.final))
            row.append(int(r.pareto))
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    def describe(self) -> str:
        lines = [
            self.space.describe(),
            f"strategy {self.strategy}, baseline {self.baseline}, "
            f"rungs {self.rung_sizes}",
            f"engine: {self.stats.describe()}",
            f"pareto front ({len(self.pareto_records)} of "
            f"{len(self.final_records)} full-scale designs):",
        ]
        for r in sorted(self.pareto_records, key=lambda r: -r.speedup):
            chaos = f", chaos {r.chaos:.3f}" if r.chaos is not None else ""
            lines.append(
                f"  {r.label()}: speedup {r.speedup:.3f}, "
                f"cost {r.cost:.0f} bits{chaos}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def _add(total: EngineStats, part: Optional[EngineStats]) -> None:
    if part is None:
        return
    total.total += part.total
    total.cache_hits += part.cache_hits
    total.resumed += part.resumed
    total.executed += part.executed
    total.retried += part.retried
    total.failed += part.failed


def _grid_cycles(points) -> Dict[Tuple[str, int], int]:
    return {(p.workload, p.n_cores): p.result.cycles for p in points}


def _score(
    design_points, baselines: Dict[Tuple[str, int], int]
) -> float:
    """Geomean speedup of one design over the baseline grid."""
    ratios = []
    for p in design_points:
        base = baselines.get((p.workload, p.n_cores))
        if not base or not p.result.cycles:
            continue
        ratios.append(base / p.result.cycles)
    return geomean(ratios) if ratios else 0.0


def _chaos_objective(chaos_points, clean_cycles) -> float:
    """Traffic grids: worst p99 under chaos.  Kernel grids: geomean
    slowdown vs the clean run (1.0 = unaffected)."""
    p99s = [
        (p.result.workload_metrics or {}).get("traffic.p99")
        for p in chaos_points
    ]
    p99s = [v for v in p99s if v is not None]
    if p99s:
        return max(p99s)
    ratios = []
    for p in chaos_points:
        clean = clean_cycles.get((p.workload, p.n_cores))
        if not clean or not p.result.cycles:
            continue
        ratios.append(p.result.cycles / clean)
    return geomean(ratios) if ratios else 0.0


def explore(
    space: SpaceSpec,
    strategy="grid",
    baseline: str = "pthread",
    cost_model: Optional[CostModel] = None,
    chaos_rate: float = DEFAULT_CHAOS_RATE,
    chaos_seed: int = 0,
    workers: Optional[int] = None,
    cache_dir=None,
    server: Optional[str] = None,
    progress: bool = False,
    save: bool = True,
    **strategy_kwargs,
) -> DseResult:
    """Explore ``space`` with ``strategy`` and return the ranked result.

    ``strategy`` is a name from
    :data:`~repro.dse.strategies.STRATEGIES`, a class, or an instance;
    extra keyword arguments go to the strategy constructor (e.g.
    ``explore(space, "halving", rungs=2)``).  ``workers`` /
    ``cache_dir`` / ``server`` / ``progress`` are passed straight to
    :func:`repro.api.sweep` for every rung; ``chaos_rate=0`` skips the
    chaos pass (mandatory with ``server=``, since fault plans do not
    cross the wire).  With ``save`` and a cache dir, the document lands
    in ``<cache_dir>/dse/`` for the HTML report.
    """
    from repro import api
    from repro.common import config as repro_config
    from repro.faults import drop_plan

    space.validate()
    strat: Strategy = resolve_strategy(strategy, **strategy_kwargs)
    model = cost_model or CostModel()
    server = repro_config.server(server)
    if server is not None and chaos_rate > 0:
        raise ConfigError(
            "the chaos objective is local-only (fault plans do not cross "
            "the service wire); pass chaos_rate=0 when using server=..."
        )
    if chaos_rate < 0 or chaos_rate >= 1:
        raise ConfigError(f"chaos_rate must be in [0, 1), got {chaos_rate}")

    def run_sweep(configs, scale, params=None, fault_plan=None):
        points, stats = api.sweep(
            configs,
            list(space.workloads),
            cores=list(space.cores),
            scale=scale,
            seed=space.seed,
            workers=workers,
            cache_dir=cache_dir,
            server=server,
            progress=progress,
            return_stats=True,
            params=params,
            fault_plan=fault_plan,
        )
        return points, stats

    totals = EngineStats()
    rung_sizes: List[int] = []
    # design key -> (rung index, score) for everything ever evaluated
    evaluated: Dict[str, Tuple[Dict[str, Any], int, float]] = {}
    rung = strat.first_rung(space)
    final_rung = rung
    final_points: Dict[str, list] = {}
    while True:
        rung_sizes.append(len(rung.designs))
        base_points, base_stats = run_sweep([baseline], rung.scale)
        _add(totals, base_stats)
        baselines = _grid_cycles(base_points)
        scores: List[float] = []
        points_by_design: Dict[str, list] = {}
        for design in rung.designs:
            points, stats = run_sweep(
                [space.config], rung.scale, params=design
            )
            _add(totals, stats)
            score = _score(points, baselines)
            scores.append(score)
            key = json.dumps(design, sort_keys=True, default=repr)
            points_by_design[key] = points
            evaluated[key] = (design, rung.index, score)
        nxt = strat.next_rung(space, rung, scores)
        if nxt is None:
            final_rung = rung
            final_points = points_by_design
            break
        rung = nxt

    # Chaos pass over the full-scale survivors.
    chaos_by_key: Dict[str, float] = {}
    if chaos_rate > 0:
        plan = drop_plan(chaos_rate, seed=chaos_seed)
        for design in final_rung.designs:
            key = json.dumps(design, sort_keys=True, default=repr)
            points, stats = run_sweep(
                [space.config], final_rung.scale,
                params=design, fault_plan=plan,
            )
            _add(totals, stats)
            chaos_by_key[key] = _chaos_objective(
                points, _grid_cycles(final_points[key])
            )

    # Assemble records: survivors first (design order), then eliminated.
    cost_cores = max(space.cores)
    final_keys = {
        json.dumps(d, sort_keys=True, default=repr)
        for d in final_rung.designs
    }
    records: List[DesignRecord] = []
    for key, (design, rung_idx, score) in evaluated.items():
        breakdown = model.breakdown(space.resolved(design, cost_cores))
        records.append(
            DesignRecord(
                design=design,
                speedup=score,
                cost=breakdown["total"],
                cost_breakdown=breakdown,
                chaos=chaos_by_key.get(key),
                rung=rung_idx,
                final=key in final_keys,
            )
        )
    records.sort(key=lambda r: (not r.final, -r.speedup))

    result = DseResult(
        space=space,
        strategy=strat.describe(),
        baseline=baseline,
        records=records,
        cost_model=model,
        chaos_rate=chaos_rate,
        stats=totals,
        rung_sizes=rung_sizes,
    )
    finals = result.final_records
    for i in pareto_indices(
        [r.objectives() for r in finals], result.objectives()
    ):
        finals[i].pareto = True

    if save:
        doc_dir = repro_config.cache_dir(cache_dir)
        if doc_dir is not None:
            result.save(doc_dir)
    return result
