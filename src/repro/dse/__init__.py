"""Design-space exploration over the cached sweep stack.

The paper fixes a handful of configurations (MSA-1/2/4, with and
without OMU); :mod:`repro.dse` generalizes that into config-driven
exploration of *any* region of the machine-parameter space:

* :class:`SpaceSpec` declares the space -- named axes over
  :class:`~repro.common.params.MachineParams` fields (dotted paths like
  ``msa.entries_per_tile``), a base config, and a workload grid;
* :mod:`~repro.dse.strategies` decide which designs run at what
  workload scale (``grid``, seeded ``random``, successive ``halving``);
* every evaluation goes through :func:`repro.api.sweep`, so the result
  cache dedups repeated points and ``server=`` fans the grid out to a
  ``repro serve`` instance;
* :class:`CostModel` prices each design in storage bits, and
  :func:`pareto_front` extracts the exact non-dominated set over
  speedup (max), cost (min), and tail behaviour under fault injection
  (min);
* the outcome is a :class:`DseResult` document that the cache-only
  HTML report renders as Pareto scatter + heatmap pages.

Entry points: :func:`repro.api.dse`, ``python -m repro dse``, and
:func:`explore` directly.  See ``docs/DSE.md`` for the full guide.
"""

from repro.dse.cost import CostModel
from repro.dse.explore import (
    DEFAULT_CHAOS_RATE,
    DesignRecord,
    DseResult,
    explore,
)
from repro.dse.pareto import dominates, pareto_front, pareto_indices
from repro.dse.space import SpaceSpec
from repro.dse.strategies import (
    STRATEGIES,
    GridStrategy,
    HalvingStrategy,
    RandomStrategy,
    Rung,
    Strategy,
    resolve_strategy,
)

__all__ = [
    "CostModel",
    "DEFAULT_CHAOS_RATE",
    "DesignRecord",
    "DseResult",
    "GridStrategy",
    "HalvingStrategy",
    "RandomStrategy",
    "Rung",
    "STRATEGIES",
    "SpaceSpec",
    "Strategy",
    "dominates",
    "explore",
    "pareto_front",
    "pareto_indices",
    "resolve_strategy",
]
