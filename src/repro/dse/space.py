"""Declarative design spaces: named axes over machine parameters.

A :class:`SpaceSpec` names a region of the MiSAR design space: a base
configuration, a workload x cores grid to evaluate every design on,
and *axes* -- ordered (name, values) pairs where each name is a
:class:`~repro.common.params.MachineParams` field (top-level, like
``ideal_sync``, or a dotted scalar path like ``msa.entries_per_tile``
or ``omu.counter_bits``).  The cartesian product of the axes is the set
of *designs*; each (design, workload, cores) triple becomes an ordinary
:class:`~repro.harness.jobs.JobSpec`, so the result cache, dedup, and
the experiment service all apply unchanged.

Spaces are pure data: they round-trip through JSON (``to_dict`` /
``from_dict``, the format ``python -m repro dse --space FILE`` reads)
and are content-hashed (:meth:`SpaceSpec.space_hash`) so a re-run of
the same space resumes from the cache and lands in the same DSE
document.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.common.errors import ConfigError

#: Axis names that would fight the grid dimensions or the RNG contract.
_FORBIDDEN_AXES = ("n_cores", "seed")


def _as_tuple(values) -> Tuple:
    if isinstance(values, (list, tuple)):
        return tuple(values)
    return (values,)


@dataclass(frozen=True)
class SpaceSpec:
    """One design space: base config + workload grid + parameter axes."""

    axes: Tuple[Tuple[str, Tuple], ...]
    """Ordered ``(name, values)`` pairs; names are MachineParams fields
    or dotted scalar paths (``msa.entries_per_tile``)."""

    config: str = "msa-omu-2"
    """Base configuration every design starts from (axes override it)."""

    workloads: Tuple[str, ...] = ("streamcluster",)
    cores: Tuple[int, ...] = (16,)
    scale: float = 1.0
    seed: int = 2015
    name: str = ""
    """Free-form label; not part of the content hash."""

    @classmethod
    def make(
        cls,
        axes,
        config: str = "msa-omu-2",
        workloads: Sequence[str] = ("streamcluster",),
        cores: Sequence[int] = (16,),
        scale: float = 1.0,
        seed: int = 2015,
        name: str = "",
    ) -> "SpaceSpec":
        """Build (and validate) a space from friendly types: ``axes``
        may be a mapping ``{name: values}`` or a sequence of pairs;
        scalars are promoted to one-value axes."""
        if isinstance(axes, dict):
            pairs = tuple((k, _as_tuple(v)) for k, v in axes.items())
        else:
            pairs = tuple((k, _as_tuple(v)) for k, v in axes)
        space = cls(
            axes=pairs,
            config=config,
            workloads=tuple(workloads),
            cores=tuple(int(c) for c in cores),
            scale=float(scale),
            seed=int(seed),
            name=name,
        )
        space.validate()
        return space

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every axis, value, workload, and core count against the
        live registries -- a typo'd field name or an impossible value
        fails here, not deep inside a worker process."""
        from repro.harness.configs import machine_params
        from repro.harness.jobs import resolve_factory

        if not self.axes:
            raise ConfigError("a design space needs at least one axis")
        names = [name for name, _ in self.axes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate axis names in {names}")
        for name in names:
            if name in _FORBIDDEN_AXES:
                raise ConfigError(
                    f"axis {name!r} is not allowed: core counts are a "
                    "grid dimension (cores=...) and seeds are pinned "
                    "per space (seed=...)"
                )
        if self.scale <= 0:
            raise ConfigError(f"scale must be > 0, got {self.scale}")
        if not self.workloads:
            raise ConfigError("a design space needs at least one workload")
        for workload in self.workloads:
            resolve_factory(workload)  # raises ConfigError on unknowns
        for n in self.cores:
            machine_params(self.config, n_cores=n, seed=self.seed)[
                0
            ].validate()
        base, _library = machine_params(
            self.config, n_cores=self.cores[0], seed=self.seed
        )
        for name, values in self.axes:
            if not values:
                raise ConfigError(f"axis {name!r} has no values")
            if len(set(map(repr, values))) != len(values):
                raise ConfigError(f"axis {name!r} repeats a value")
            for value in values:
                # Applying + validating catches wrong names, wrong
                # types, and out-of-range values in one shot.
                try:
                    base.with_overrides({name: value}).validate()
                except ConfigError:
                    raise
                except (TypeError, ValueError) as exc:
                    raise ConfigError(
                        f"axis {name!r} value {value!r} is invalid: {exc}"
                    ) from None

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def designs(self) -> List[Dict[str, Any]]:
        """Every design as an ordered ``{axis: value}`` dict, in
        deterministic cartesian-product order (first axis slowest)."""
        names = [name for name, _ in self.axes]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(v for _, v in self.axes))
        ]

    def n_designs(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def resolved(self, design: Dict[str, Any], cores: int):
        """The :class:`MachineParams` a design runs with at ``cores``
        (what the cost model prices)."""
        from repro.harness.configs import machine_params

        base, _library = machine_params(
            self.config, n_cores=cores, seed=self.seed
        )
        return base.with_overrides(design)

    # ------------------------------------------------------------------
    # Serialization / identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "config": self.config,
            "workloads": list(self.workloads),
            "cores": list(self.cores),
            "scale": self.scale,
            "seed": self.seed,
            "axes": [[name, list(values)] for name, values in self.axes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpaceSpec":
        """Inverse of :meth:`to_dict` (the ``--space FILE`` format);
        validates the result."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"space document must be an object, got {type(data).__name__}"
            )
        axes = data.get("axes")
        if not isinstance(axes, (list, dict)) or not axes:
            raise ConfigError(
                "space document needs a non-empty 'axes' mapping or "
                "[[name, [values...]], ...] list"
            )
        try:
            return cls.make(
                axes,
                config=data.get("config", "msa-omu-2"),
                workloads=data.get("workloads", ("streamcluster",)),
                cores=data.get("cores", (16,)),
                scale=data.get("scale", 1.0),
                seed=data.get("seed", 2015),
                name=data.get("name", ""),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed space document: {exc}") from None

    def space_hash(self) -> str:
        """12-hex content hash over everything that affects which points
        run (the label ``name`` is excluded): same space ⇒ same hash ⇒
        same DSE document file, which is what makes re-runs resume."""
        payload = self.to_dict()
        payload.pop("name")
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    def describe(self) -> str:
        axes = " x ".join(
            f"{name}[{len(values)}]" for name, values in self.axes
        )
        return (
            f"{self.name or 'space'}: {axes} = {self.n_designs()} designs "
            f"on {self.config}, {len(self.workloads)} workload(s), "
            f"cores {list(self.cores)}, scale {self.scale:g}"
        )
