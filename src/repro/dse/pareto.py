"""Exact Pareto-front extraction over small objective sets.

Design-space results are ranked on a handful of objectives (speedup,
hardware cost, tail latency under chaos).  With at most a few hundred
designs per space, the exact O(n^2) dominance sweep is instant and has
no tuning knobs, so that is what we use -- no epsilon approximation,
no sorting tricks.

Objectives are ``(key, sense)`` pairs where ``sense`` is ``"max"`` or
``"min"``; points are mappings from key to a number.  A point *a*
dominates *b* iff *a* is no worse than *b* in every objective and
strictly better in at least one.  Consequences worth knowing:

* duplicate points (identical objective vectors) never dominate each
  other, so ties all survive onto the front;
* with a single objective the front is every point tied at the optimum;
* a point missing an objective value (``None``) is treated as worst in
  that objective, so partially-evaluated designs cannot crowd out fully
  evaluated ones.

>>> pts = [{"s": 2.0, "c": 10}, {"s": 1.0, "c": 5}, {"s": 1.0, "c": 20}]
>>> pareto_indices(pts, (("s", "max"), ("c", "min")))
[0, 1]
"""

from __future__ import annotations

import math
from typing import Any, List, Mapping, Sequence, Tuple

from repro.common.errors import ConfigError

Objective = Tuple[str, str]


def _signed(point: Mapping[str, Any], objectives: Sequence[Objective]):
    """Project a point onto a maximize-everything vector (``min``
    objectives are negated; missing/None values become -inf = worst)."""
    vec = []
    for key, sense in objectives:
        value = point.get(key)
        if value is None or (isinstance(value, float) and math.isnan(value)):
            vec.append(float("-inf"))
        elif sense == "max":
            vec.append(float(value))
        else:
            vec.append(-float(value))
    return vec


def dominates(a, b) -> bool:
    """True iff signed vector ``a`` dominates ``b`` (no worse anywhere,
    strictly better somewhere)."""
    better = False
    for x, y in zip(a, b):
        if x < y:
            return False
        if x > y:
            better = True
    return better


def pareto_indices(
    points: Sequence[Mapping[str, Any]],
    objectives: Sequence[Objective],
) -> List[int]:
    """Indices of the non-dominated points, in input order."""
    if not objectives:
        raise ConfigError("pareto front needs at least one objective")
    for key, sense in objectives:
        if sense not in ("max", "min"):
            raise ConfigError(
                f"objective {key!r}: sense must be 'max' or 'min', "
                f"got {sense!r}"
            )
    vecs = [_signed(p, objectives) for p in points]
    front = []
    for i, a in enumerate(vecs):
        if not any(
            dominates(b, a) for j, b in enumerate(vecs) if j != i
        ):
            front.append(i)
    return front


def pareto_front(
    points: Sequence[Mapping[str, Any]],
    objectives: Sequence[Objective],
) -> List[Mapping[str, Any]]:
    """The non-dominated points themselves, in input order."""
    return [points[i] for i in pareto_indices(points, objectives)]
