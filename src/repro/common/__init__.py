"""Shared types, parameters, statistics, and errors used across the
simulator, the MSA/OMU model, and the runtime."""

from repro.common.types import SyncResult, SyncType, SyncOp
from repro.common.errors import (
    ReproError,
    ConfigError,
    SchemaError,
    ServiceError,
    SimulationError,
    DeadlockError,
    ProtocolError,
)
from repro.common.params import (
    MachineParams,
    MSAParams,
    OMUParams,
    NocParams,
    CacheParams,
    CoreParams,
)
from repro.common.stats import StatSet, Counter, Histogram

__all__ = [
    "SyncResult",
    "SyncType",
    "SyncOp",
    "ReproError",
    "ConfigError",
    "SchemaError",
    "ServiceError",
    "SimulationError",
    "DeadlockError",
    "ProtocolError",
    "MachineParams",
    "MSAParams",
    "OMUParams",
    "NocParams",
    "CacheParams",
    "CoreParams",
    "StatSet",
    "Counter",
    "Histogram",
]
