"""Configuration dataclasses for the simulated machine.

Defaults follow the paper's evaluation setup (section 6): a tiled
many-core with 2-issue cores, private L1s, a distributed shared L2 that
is also the coherence home, and a packet-switched 2D-mesh NoC.  Latency
values are cycle-approximate and chosen to reproduce the relative costs
that drive the paper's results (L1 hit vs. remote LLC round trip vs.
hop-proportional NoC latency).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Dict, Optional

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class NocParams:
    """2D-mesh network-on-chip parameters."""

    router_latency: int = 2
    """Cycles spent in each router's pipeline (per hop)."""

    link_latency: int = 1
    """Cycles to traverse one inter-tile link."""

    flits_per_message: int = 1
    """Serialization cost: extra cycles a message occupies a link."""

    injection_latency: int = 1
    """Cycles from NIC injection to first router."""

    def validate(self) -> None:
        if self.router_latency < 0 or self.link_latency < 0:
            raise ConfigError("NoC latencies must be non-negative")
        if self.flits_per_message < 1:
            raise ConfigError("flits_per_message must be >= 1")


@dataclass(frozen=True)
class CacheParams:
    """Private L1 data cache parameters."""

    line_size: int = 64
    n_sets: int = 64
    associativity: int = 4
    hit_latency: int = 2
    """L1 hit latency (cycles)."""

    def validate(self) -> None:
        for name in ("line_size", "n_sets", "associativity"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.line_size & (self.line_size - 1):
            raise ConfigError("line_size must be a power of two")
        if self.n_sets & (self.n_sets - 1):
            raise ConfigError("n_sets must be a power of two")


@dataclass(frozen=True)
class LLCParams:
    """Distributed shared last-level cache (one slice per tile)."""

    slice_latency: int = 8
    """Access latency of an LLC slice (cycles), includes directory."""

    memory_latency: int = 80
    """Latency to off-chip memory on an LLC miss (cycles)."""

    miss_rate: float = 0.0
    """Probability an LLC access misses to memory. The synthetic kernels
    model memory behaviour explicitly, so this stays 0 by default."""


@dataclass(frozen=True)
class CoreParams:
    """Core timing parameters."""

    issue_width: int = 2
    """Modeled only through the per-op costs; kept for documentation."""

    hw_threads: int = 1
    """Hardware thread contexts per core (SMT).  The paper's HWQueue
    grows to one bit per hardware thread; requester ids become
    ``core * hw_threads + slot``.  Threads on one core share its L1 and
    HWSync bits."""

    sync_fence_latency: int = 3
    """Pipeline-fence cost of a sync instruction reaching ROB head
    (the paper notes this stall is 'negligible in most applications')."""

    context_switch_latency: int = 200
    """OS cost to suspend/resume a thread."""


@dataclass(frozen=True)
class MSAParams:
    """Minimalistic Synchronization Accelerator configuration.

    ``entries_per_tile`` is the paper's headline knob (1, 2, 4, or
    ``None`` for MSA-inf).  ``mode`` selects the degenerate variants used
    in the evaluation.
    """

    entries_per_tile: Optional[int] = 2
    """Entries in each tile's MSA slice; ``None`` models MSA-inf."""

    lock_support: bool = True
    barrier_support: bool = True
    condvar_support: bool = True

    hwsync_opt: bool = True
    """HWSync-bit / LOCK_SILENT fast re-acquire optimization (section 5)."""

    msa_access_latency: int = 2
    """Cycles for an MSA slice to process one request."""

    def validate(self) -> None:
        if self.entries_per_tile is not None and self.entries_per_tile < 0:
            raise ConfigError("entries_per_tile must be >= 0 or None")

    @property
    def is_infinite(self) -> bool:
        return self.entries_per_tile is None

    def supports(self, sync_type) -> bool:
        from repro.common.types import SyncType

        return {
            SyncType.LOCK: self.lock_support,
            SyncType.BARRIER: self.barrier_support,
            SyncType.CONDVAR: self.condvar_support,
        }[sync_type]


@dataclass(frozen=True)
class OMUParams:
    """Overflow Management Unit configuration.

    The paper evaluates a four-counter OMU per slice; counters are
    indexed by the synchronization address *without tagging*, so
    distinct addresses may alias (performance-only effect).
    """

    n_counters: int = 4
    counter_bits: int = 8
    """Saturating width; with <=64 HW threads 8 bits never saturates."""

    use_bloom: bool = False
    """Use a counting Bloom filter instead of simple indexed counters."""

    bloom_hashes: int = 2

    enabled: bool = True
    """Disabled models the 'Without OMU' configuration of Figure 7:
    entries are never reclaimed once the address set exceeds capacity."""

    def validate(self) -> None:
        if self.n_counters < 1:
            raise ConfigError("OMU needs at least one counter")
        if self.counter_bits < 1:
            raise ConfigError("counter_bits must be >= 1")
        if self.use_bloom and self.bloom_hashes < 1:
            raise ConfigError("bloom_hashes must be >= 1")

    @property
    def counter_max(self) -> int:
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class FaultParams:
    """Tuning knobs for the fault-recovery machinery.

    These only take effect when a machine is built with a
    :class:`repro.faults.FaultPlan`; without a plan the recovery layers
    are not constructed at all and the machine behaves bit-for-bit like
    a fault-free build.
    """

    retransmit_timeout: int = 96
    """Reliable-transport retransmission timeout (cycles) before the
    oldest unacknowledged message on a channel is re-injected."""

    retransmit_timeout_max: int = 1536
    """Cap for the transport's exponential retransmission backoff."""

    max_retransmits: int = 24
    """Retransmissions of one message before the transport abandons it
    (bounds traffic into a dead endpoint; for a live channel with drop
    probability p the odds of a false abandon are p^max_retransmits)."""

    request_timeout: int = 800
    """Cycles a sync unit waits for any sign of life (response, accept,
    or pong) from a home slice before its first retry."""

    request_timeout_max: int = 25_600
    """Cap for the request-level exponential backoff."""

    max_retries: int = 6
    """Consecutive unanswered retries/pings after which the home tile is
    declared dead and degraded to software synchronization."""

    response_cache_size: int = 128
    """Per-slice completed-request cache used to answer retried
    requests idempotently (duplicate suppression)."""

    def validate(self) -> None:
        if self.retransmit_timeout < 1 or self.request_timeout < 1:
            raise ConfigError("fault timeouts must be >= 1 cycle")
        if self.retransmit_timeout_max < self.retransmit_timeout:
            raise ConfigError("retransmit_timeout_max < retransmit_timeout")
        if self.request_timeout_max < self.request_timeout:
            raise ConfigError("request_timeout_max < request_timeout")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be >= 1")
        if self.max_retransmits < 4:
            raise ConfigError("max_retransmits must be >= 4")
        if self.response_cache_size < 8:
            raise ConfigError("response_cache_size must be >= 8")


@dataclass(frozen=True)
class MachineParams:
    """Complete description of a simulated machine."""

    n_cores: int = 16
    noc: NocParams = field(default_factory=NocParams)
    l1: CacheParams = field(default_factory=CacheParams)
    llc: LLCParams = field(default_factory=LLCParams)
    core: CoreParams = field(default_factory=CoreParams)
    msa: Optional[MSAParams] = field(default_factory=MSAParams)
    """``None`` means no MSA hardware at all (pure-software machines and
    the MSA-0 machine, which implements the ISA by always failing)."""

    omu: OMUParams = field(default_factory=OMUParams)
    ideal_sync: bool = False
    """Zero-latency oracle synchronization (the paper's 'Ideal')."""

    faults: FaultParams = field(default_factory=FaultParams)
    """Recovery tuning; inert unless the machine is given a FaultPlan."""

    seed: int = 2015

    def validate(self) -> None:
        if self.n_cores < 1:
            raise ConfigError("n_cores must be >= 1")
        side = int(math.isqrt(self.n_cores))
        if side * side != self.n_cores:
            raise ConfigError(
                f"n_cores must be a perfect square for a 2D mesh, "
                f"got {self.n_cores}"
            )
        self.noc.validate()
        self.l1.validate()
        if self.core.hw_threads < 1:
            raise ConfigError("hw_threads must be >= 1")
        if self.msa is not None:
            self.msa.validate()
        self.omu.validate()
        self.faults.validate()

    @property
    def mesh_side(self) -> int:
        return int(math.isqrt(self.n_cores))

    def with_(self, **changes) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready nested dict of every parameter (recurses into the
        sub-parameter dataclasses; ``msa`` becomes ``None`` when absent)."""
        return asdict(self)

    def with_overrides(self, overrides: Dict[str, object]) -> "MachineParams":
        """Apply a mapping of field overrides, including dotted paths.

        Keys are either top-level field names (``"ideal_sync"``, taking
        whole sub-dataclass values like :meth:`with_`) or dotted paths
        into a parameter group (``"msa.entries_per_tile"``,
        ``"omu.counter_bits"``, ``"noc.link_latency"``) whose values are
        plain scalars.  Dotted overrides are what makes a design point
        pure JSON: they survive the result cache, the service wire
        format, and :mod:`repro.dse` space files unchanged.

        Unknown fields, dotted paths into an absent group (``msa`` is
        ``None`` on software-only configurations), and a group named
        both whole and dotted raise :class:`ConfigError`.
        """
        top: Dict[str, object] = {}
        nested: Dict[str, Dict[str, object]] = {}
        for name, value in overrides.items():
            if "." in name:
                head, _, leaf = name.partition(".")
                if not leaf or "." in leaf:
                    raise ConfigError(
                        f"override {name!r}: expected 'group.field' with "
                        "exactly one dot"
                    )
                nested.setdefault(head, {})[leaf] = value
            else:
                top[name] = value
        field_names = {f.name for f in fields(self)}
        for name in top:
            if name not in field_names:
                raise ConfigError(
                    f"unknown machine parameter {name!r}; top-level "
                    f"fields: {sorted(field_names)}"
                )
        for head, changes in nested.items():
            if head in top:
                raise ConfigError(
                    f"parameter group {head!r} overridden both whole "
                    f"({head}=...) and dotted ({head}.{next(iter(changes))}"
                    "=...); pick one spelling"
                )
            if head not in field_names:
                raise ConfigError(
                    f"unknown parameter group {head!r} in dotted override; "
                    f"top-level fields: {sorted(field_names)}"
                )
            sub = getattr(self, head)
            if sub is None:
                raise ConfigError(
                    f"cannot override {head}.{next(iter(changes))}: this "
                    f"configuration has no {head!r} (it is None)"
                )
            if not is_dataclass(sub):
                raise ConfigError(
                    f"{head!r} is not a parameter group; set it directly "
                    f"({head}=...)"
                )
            sub_names = {f.name for f in fields(sub)}
            for leaf in changes:
                if leaf not in sub_names:
                    raise ConfigError(
                        f"unknown field {head}.{leaf}; {head} fields: "
                        f"{sorted(sub_names)}"
                    )
            top[head] = replace(sub, **changes)
        return replace(self, **top) if top else self

    def stable_hash(self) -> str:
        """Content hash of the full parameter tree.

        Two machines with equal parameters hash identically in any
        process; any changed knob (including nested ones) changes the
        hash.  The experiment engine folds this into its result-cache
        keys so cached results are invalidated when machine defaults
        change."""
        blob = json.dumps(self.to_dict(), sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()
