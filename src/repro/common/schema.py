"""Explicit wire-schema versioning for every serialized payload.

Results, job specs, and the HTTP bodies of the experiment service all
outlive the process that wrote them -- caches persist across versions,
and a ``repro serve`` instance may be older or newer than its clients.
Every such payload therefore carries a ``schema`` stamp of the form
``family/major`` (e.g. ``"repro.result/1"``), and every loader calls
:func:`check_schema` before trusting the rest of the document: a
payload from an incompatible major version is rejected with a clear
:class:`~repro.common.errors.SchemaError` instead of being silently
mis-parsed.

The major bumps on any change an old reader would misinterpret; purely
additive fields do not bump it (readers ignore unknown keys by
contract).  A missing stamp is accepted by loaders that predate the
stamping (legacy cache entries), but the service's HTTP bodies always
carry one.

>>> check_schema("repro.result/1", RESULT_SCHEMA)
>>> try:
...     check_schema("repro.result/2", RESULT_SCHEMA)
... except Exception as exc:
...     print(type(exc).__name__)
SchemaError
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.errors import SchemaError

#: :class:`repro.harness.runner.RunResult` dict/JSON payloads.
RESULT_SCHEMA = "repro.result/1"

#: :class:`repro.harness.jobs.JobSpec` wire payloads (HTTP submission).
JOBSPEC_SCHEMA = "repro.jobspec/1"

#: Envelope of every ``repro serve`` HTTP body (requests and responses).
SERVE_SCHEMA = "repro.serve/1"

#: :class:`repro.dse.DseResult` documents (``<cache_dir>/dse/*.json``).
DSE_SCHEMA = "repro.dse/1"


def parse_stamp(stamp: str) -> Tuple[str, int]:
    """Split a ``family/major`` stamp; raises :class:`SchemaError` on
    anything that is not one."""
    if not isinstance(stamp, str) or "/" not in stamp:
        raise SchemaError(
            f"malformed schema stamp {stamp!r}; expected 'family/major' "
            "like 'repro.result/1'"
        )
    family, _, major = stamp.rpartition("/")
    try:
        return family, int(major)
    except ValueError:
        raise SchemaError(
            f"malformed schema stamp {stamp!r}; major version "
            f"{major!r} is not an integer"
        ) from None


def check_schema(
    stamp: Optional[str], expected: str, what: str = ""
) -> None:
    """Validate a payload's stamp against what this build speaks.

    ``None`` passes (legacy payloads predate stamping); a different
    family or major raises :class:`SchemaError` naming both sides, so
    the error a mismatched client/server pair sees says exactly what to
    upgrade.
    """
    if stamp is None:
        return
    family, major = parse_stamp(stamp)
    exp_family, exp_major = parse_stamp(expected)
    if family != exp_family or major != exp_major:
        label = what or exp_family.rpartition(".")[2]
        raise SchemaError(
            f"incompatible {label} payload: got schema {stamp!r}, this "
            f"build speaks {expected!r} (major versions must match)"
        )
