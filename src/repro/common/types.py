"""Core enumerations and small value types shared by the whole system.

These mirror the paper's ISA-level vocabulary: the six synchronization
instructions plus FINISH/SUSPEND, and their three possible results
(SUCCESS / FAIL / ABORT).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SyncResult(enum.Enum):
    """Result of a hardware synchronization instruction (paper section 3).

    * ``SUCCESS`` -- the operation completed in hardware.
    * ``FAIL`` -- the operation cannot be performed in hardware; the
      runtime must fall back to the software implementation.
    * ``ABORT`` -- the operation was terminated by the MSA because of OS
      thread scheduling (suspension/migration) or a forced hand-off to
      software; the fallback differs per primitive (section 4).
    """

    SUCCESS = "success"
    FAIL = "fail"
    ABORT = "abort"
    BUSY = "busy"
    """TRYLOCK extension only: the lock is hardware-managed and
    currently owned -- the trylock completed (in hardware) without
    acquiring."""


class SyncType(enum.Enum):
    """The synchronization primitive an MSA entry is currently used for
    (the 2-bit ``Type`` field of an MSA entry, Figure 1)."""

    LOCK = "lock"
    BARRIER = "barrier"
    CONDVAR = "condvar"


class SyncOp(enum.Enum):
    """The synchronization operations software can request from the MSA.

    The first six are the paper's ISA instructions; ``FINISH`` notifies
    the OMU that a software barrier/condition wait completed, and
    ``SUSPEND`` is issued by a core when a waiting sync instruction is
    interrupted (context switch / migration).
    """

    LOCK = "lock"
    TRYLOCK = "trylock"
    """Extension beyond the paper's six instructions: a non-blocking
    LOCK that returns BUSY instead of waiting (the capability the
    paper's Table 1 credits SSB [26] with)."""

    UNLOCK = "unlock"
    BARRIER = "barrier"
    COND_WAIT = "cond_wait"
    COND_SIGNAL = "cond_signal"
    COND_BCAST = "cond_bcast"
    FINISH = "finish"
    SUSPEND = "suspend"

    @property
    def is_acquire(self) -> bool:
        """Acquire-type requests may allocate a new MSA entry
        (section 3.1); release-type requests never do."""
        return self in _ACQUIRE_OPS

    @property
    def is_release(self) -> bool:
        return self in _RELEASE_OPS

    @property
    def sync_type(self) -> SyncType:
        """The primitive family this operation belongs to."""
        return _OP_FAMILY[self]


_ACQUIRE_OPS = frozenset(
    {SyncOp.LOCK, SyncOp.TRYLOCK, SyncOp.BARRIER, SyncOp.COND_WAIT}
)
_RELEASE_OPS = frozenset(
    {SyncOp.UNLOCK, SyncOp.COND_SIGNAL, SyncOp.COND_BCAST}
)
_OP_FAMILY = {
    SyncOp.LOCK: SyncType.LOCK,
    SyncOp.TRYLOCK: SyncType.LOCK,
    SyncOp.UNLOCK: SyncType.LOCK,
    SyncOp.BARRIER: SyncType.BARRIER,
    SyncOp.COND_WAIT: SyncType.CONDVAR,
    SyncOp.COND_SIGNAL: SyncType.CONDVAR,
    SyncOp.COND_BCAST: SyncType.CONDVAR,
    # FINISH/SUSPEND target whatever primitive the address is used for;
    # family is resolved from the request context, default CONDVAR here
    # is never consulted.
    SyncOp.FINISH: SyncType.CONDVAR,
    SyncOp.SUSPEND: SyncType.CONDVAR,
}


class CacheState(enum.Enum):
    """MESI stable states for an L1 line."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def can_read(self) -> bool:
        return self is not CacheState.INVALID

    @property
    def can_write(self) -> bool:
        return self in (CacheState.MODIFIED, CacheState.EXCLUSIVE)


@dataclass(frozen=True)
class TileCoord:
    """Position of a tile in the 2D mesh."""

    x: int
    y: int

    def hops_to(self, other: "TileCoord") -> int:
        """Manhattan distance (XY routing hop count)."""
        return abs(self.x - other.x) + abs(self.y - other.y)


Address = int
CoreId = int
TileId = int
ThreadId = int
Cycles = int
