"""Lightweight statistics primitives used by every hardware model.

Each component owns a :class:`StatSet`; the harness aggregates them into
experiment reports.  Keeping these tiny (plain ints/lists) matters: they
sit on the hot path of the event simulation.  Hot components bind the
:class:`Counter`/:class:`Histogram` objects they touch per event to
attributes at construction (``self._hits = stats.counter("hits")``) so
the per-event cost is one attribute increment, not a registry lookup.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Counter:
    """A monotonically increasing event counter.

    ``value`` is public on purpose: hot paths do ``c.value += n``
    directly; :meth:`inc` is the convenience form for cold paths.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Records samples; reports count/mean/min/max/percentiles.

    The moments (count, total, min, max -- and therefore the mean) are
    maintained incrementally on :meth:`add` and are always exact.
    Percentiles come from the retained samples, whose sorted view is
    cached between adds (report loops call :meth:`percentile` per
    percentile point; re-sorting each call was quadratic in practice).

    By default every sample is retained exactly.  For unbounded runs,
    ``sample_limit`` caps retention: once the limit is reached the
    retained set is thinned to every other sample and the stride
    doubles, deterministically -- percentiles become approximations
    over a uniform subsample while the moments stay exact.  No machine
    model sets a limit (results stay bit-for-bit exact); long-lived
    monitoring is the intended user.
    """

    __slots__ = (
        "name",
        "samples",
        "sample_limit",
        "_count",
        "_total",
        "_min",
        "_max",
        "_stride",
        "_phase",
        "_sorted",
    )

    def __init__(self, name: str, sample_limit: Optional[int] = None):
        if sample_limit is not None and sample_limit < 2:
            raise ValueError(f"sample_limit must be >= 2, got {sample_limit}")
        self.name = name
        self.samples: List[float] = []
        self.sample_limit = sample_limit
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._stride = 1
        self._phase = 0
        self._sorted: Optional[List[float]] = None

    def add(self, value: float) -> None:
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._stride == 1:
            self.samples.append(value)
        else:
            # Bounded mode after a thin: keep every _stride-th sample.
            self._phase += 1
            if self._phase == self._stride:
                self._phase = 0
                self.samples.append(value)
            else:
                return  # retained set unchanged; keep the sorted cache
        self._sorted = None
        limit = self.sample_limit
        if limit is not None and len(self.samples) >= limit:
            del self.samples[::2]
            self._stride *= 2
            self._phase = 0

    def reset(self) -> None:
        self.samples.clear()
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._stride = 1
        self._phase = 0
        self._sorted = None

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100] (over the retained
        samples; exact unless ``sample_limit`` forced thinning)."""
        ordered = self._sorted
        if ordered is None:
            if not self.samples:
                return 0.0
            ordered = self._sorted = sorted(self.samples)
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        """Nearest-rank values for a batch of quantiles, each in [0, 1].

        One sort serves the whole batch (and primes the cache used by
        :meth:`percentile`), so SLO reporting asks for
        ``quantiles([0.5, 0.99, 0.999])`` instead of three independent
        percentile calls.

        >>> h = Histogram("lat")
        >>> for v in range(1, 101):
        ...     h.add(float(v))
        >>> h.quantiles([0.5, 0.99, 0.999])
        [50.0, 99.0, 100.0]
        """
        qs = list(qs)
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = self._sorted
        if ordered is None:
            if not self.samples:
                return [0.0 for _ in qs]
            ordered = self._sorted = sorted(self.samples)
        n = len(ordered)
        return [ordered[max(0, math.ceil(q * n) - 1)] for q in qs]

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}, n={self.count}, mean={self.mean:.1f})"
        )


class StatSet:
    """A named collection of counters and histograms.

    Components create their stats once at construction::

        stats = StatSet("msa.tile3")
        stats.counter("lock_requests")
        ...
        stats["lock_requests"].inc()
    """

    def __init__(self, name: str):
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, sample_limit: Optional[int] = None
    ) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(
                name, sample_limit=sample_limit
            )
        return hist

    def __getitem__(self, name: str):
        if name in self._counters:
            return self._counters[name]
        if name in self._histograms:
            return self._histograms[name]
        raise KeyError(f"{self.name} has no stat {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._counters or name in self._histograms

    @property
    def counters(self) -> Dict[str, int]:
        return {k: c.value for k, c in self._counters.items()}

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()

    def as_dict(self) -> Dict[str, float]:
        """Flattened snapshot, suitable for reports."""
        snapshot: Dict[str, float] = {
            k: c.value for k, c in self._counters.items()
        }
        for key, hist in self._histograms.items():
            snapshot[f"{key}.count"] = hist.count
            snapshot[f"{key}.mean"] = hist.mean
            snapshot[f"{key}.max"] = hist.maximum
        return snapshot


def merge_counters(stat_sets: Iterable[StatSet]) -> Dict[str, int]:
    """Sum same-named counters across a collection of StatSets."""
    merged: Dict[str, int] = {}
    get = merged.get
    for stats in stat_sets:
        for key, counter in stats._counters.items():
            merged[key] = get(key, 0) + counter.value
    return merged


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; ignores non-positive values defensively."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
