"""Lightweight statistics primitives used by every hardware model.

Each component owns a :class:`StatSet`; the harness aggregates them into
experiment reports.  Keeping these tiny (plain ints/lists) matters: they
sit on the hot path of the event simulation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Records samples; reports count/mean/percentiles.

    Stores raw samples -- experiment runs are short enough (at most a few
    hundred thousand samples) that this is cheaper and more precise than
    bucketing.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        self.samples.append(value)

    def reset(self) -> None:
        self.samples.clear()

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}, n={self.count}, mean={self.mean:.1f})"
        )


class StatSet:
    """A named collection of counters and histograms.

    Components create their stats once at construction::

        stats = StatSet("msa.tile3")
        stats.counter("lock_requests")
        ...
        stats["lock_requests"].inc()
    """

    def __init__(self, name: str):
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def __getitem__(self, name: str):
        if name in self._counters:
            return self._counters[name]
        if name in self._histograms:
            return self._histograms[name]
        raise KeyError(f"{self.name} has no stat {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._counters or name in self._histograms

    @property
    def counters(self) -> Dict[str, int]:
        return {k: c.value for k, c in self._counters.items()}

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()

    def as_dict(self) -> Dict[str, float]:
        """Flattened snapshot, suitable for reports."""
        snapshot: Dict[str, float] = dict(self.counters)
        for key, hist in self._histograms.items():
            snapshot[f"{key}.count"] = hist.count
            snapshot[f"{key}.mean"] = hist.mean
            snapshot[f"{key}.max"] = hist.maximum
        return snapshot


def merge_counters(stat_sets: Iterable[StatSet]) -> Dict[str, int]:
    """Sum same-named counters across a collection of StatSets."""
    merged: Dict[str, int] = {}
    for stats in stat_sets:
        for key, value in stats.counters.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; ignores non-positive values defensively."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
