"""Exception hierarchy for the reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Invalid machine/experiment configuration."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while threads were still blocked."""

    def __init__(self, message: str, blocked: list = None):
        super().__init__(message)
        self.blocked = blocked or []


class ProtocolError(SimulationError):
    """A coherence/MSA protocol invariant was violated."""


class WorkloadError(ReproError):
    """A workload misused the runtime API (e.g. unlock of a free lock)."""
