"""Exception hierarchy for the reproduction."""

from __future__ import annotations

from typing import List, Optional


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Invalid machine/experiment configuration."""


class SchemaError(ReproError):
    """A serialized payload carries an incompatible schema version
    (see :mod:`repro.common.schema`).  Raised instead of silently
    mis-parsing a result, job spec, or service message written by an
    incompatible build."""


class ServiceError(ReproError):
    """The experiment service returned an error, or could not be
    reached (see :mod:`repro.serve` and :mod:`repro.client`)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while threads were still blocked."""

    def __init__(
        self,
        message: str,
        blocked: Optional[List] = None,
        triage: Optional[dict] = None,
    ):
        super().__init__(message)
        self.blocked: List = blocked if blocked is not None else []
        """The still-blocked :class:`~repro.runtime.thread.SimThread`
        objects, for post-mortem inspection by tests and the harness."""

        self.triage: dict = triage if triage is not None else {}
        """Structured machine-state snapshot at detection time
        (:func:`repro.resilience.watchdog.triage_dump`): runnable and
        suspended thread sets, in-flight NoC messages, MSA entry
        occupancy.  Empty only if the dump itself failed."""


class WatchdogTimeout(SimulationError):
    """A watched run exceeded its wall-clock or event budget and was
    aborted by the :class:`repro.resilience.watchdog.Watchdog`.

    Carries the same structured ``triage`` snapshot a
    :class:`DeadlockError` does, so a runaway run and a hang produce
    comparable post-mortem evidence.
    """

    def __init__(self, message: str, triage: Optional[dict] = None):
        super().__init__(message)
        self.triage: dict = triage if triage is not None else {}


class ProtocolError(SimulationError):
    """A coherence/MSA protocol invariant was violated."""


class InvariantViolation(SimulationError):
    """A :mod:`repro.verify` monitor observed an invariant violation.

    Carries the structured :class:`repro.verify.report.Violation` (with
    the invariant name, address, threads, cycle window, and the relevant
    trace slice) plus, when available, the whole
    :class:`repro.verify.report.CheckReport` for post-mortem inspection.
    """

    def __init__(self, violation, report=None):
        self.violation = violation
        self.report = report
        super().__init__(
            violation.describe() if hasattr(violation, "describe") else str(violation)
        )


class WorkloadError(ReproError):
    """A workload misused the runtime API (e.g. unlock of a free lock)."""
