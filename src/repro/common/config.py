"""One documented resolver for every ``REPRO_*`` environment knob.

The engine, the CLI, the benchmark suite, and the experiment service
each grew their own ``os.environ`` reads (``REPRO_WORKERS`` in
:mod:`repro.harness.jobs`, ``REPRO_BENCH_*`` in ``benchmarks/``, and so
on), with the parsing and the unset-means-what semantics duplicated at
every site.  This module is now the single place a knob is named,
parsed, defaulted, and documented -- everything else calls the typed
accessors below.

Resolution order is always ``explicit override > environment >
default``: every accessor takes an optional ``override`` that wins when
it is not ``None``, so call sites can thread a CLI flag straight
through (``config.workers(args.workers)``).

>>> import os
>>> os.environ.pop("REPRO_WORKERS", None) and None
>>> workers() is None          # unset -> no parallelism requested
True
>>> workers(4)                 # explicit override always wins
4
>>> os.environ["REPRO_WORKERS"] = "8"
>>> workers()
8
>>> del os.environ["REPRO_WORKERS"]
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional


def _parse_int(raw: str) -> Optional[int]:
    value = int(raw)
    return value if value > 0 else None


def _parse_str(raw: str) -> Optional[str]:
    return raw or None


def _parse_bool(raw: str) -> bool:
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


#: Legal values for the ``sim_sharding`` knob.  ``auto`` picks the
#: sharded kernel at 16+ cores (where batch density pays for the
#: calendar's constant costs) and the legacy heap below.
SIM_SHARDING_MODES = ("auto", "legacy", "sharded")


def _parse_sharding(raw: str) -> str:
    value = raw.strip().lower()
    if value not in SIM_SHARDING_MODES:
        raise ValueError(value)
    return value


@dataclass(frozen=True)
class Knob:
    """One environment variable: where it lives, how it parses, what it
    means when unset."""

    env: str
    parse: Callable[[str], object]
    default: object
    doc: str


#: Every environment variable the package reads, in one table.  New
#: knobs are added here (and only here); ``describe()`` renders the
#: table for docs and ``--help`` text.
KNOBS: Dict[str, Knob] = {
    "workers": Knob(
        "REPRO_WORKERS",
        _parse_int,
        None,
        "worker-process count for engine sweeps (unset/0 = serial)",
    ),
    "cache_dir": Knob(
        "REPRO_CACHE_DIR",
        _parse_str,
        None,
        "result-cache root for engine sweeps (unset = no caching)",
    ),
    "server": Knob(
        "REPRO_SERVER",
        _parse_str,
        None,
        "base URL of a running `repro serve` instance, e.g. "
        "http://127.0.0.1:8765 (unset = no default server)",
    ),
    "bench_workers": Knob(
        "REPRO_BENCH_WORKERS",
        _parse_int,
        None,
        "worker-process count for the benchmarks/ figure drivers",
    ),
    "bench_cache": Knob(
        "REPRO_BENCH_CACHE",
        _parse_str,
        None,
        "result-cache root for the benchmarks/ figure drivers",
    ),
    "bench_full": Knob(
        "REPRO_BENCH_FULL",
        _parse_bool,
        False,
        "run the paper-sized benchmark grids (16 and 64 cores, full "
        "scale) instead of the CI-sized ones",
    ),
    "sim_sharding": Knob(
        "REPRO_SIM_SHARDING",
        _parse_sharding,
        "auto",
        "simulation kernel: 'sharded' (horizon-sharded calendar queue), "
        "'legacy' (global event heap), or 'auto' (sharded at 16+ cores); "
        "both kernels are bit-identical -- this only affects speed",
    ),
}


def get(name: str, override=None):
    """Resolve one knob by table name: ``override`` if given, else the
    parsed environment value, else the documented default.  An
    unparseable environment value is a :class:`ConfigError` naming the
    variable -- silently falling back would turn a typo'd
    ``REPRO_WORKERS=lots`` into a mysteriously serial sweep."""
    from repro.common.errors import ConfigError

    knob = KNOBS.get(name)
    if knob is None:
        raise ConfigError(
            f"unknown config knob {name!r}; known: {sorted(KNOBS)}"
        )
    if override is not None:
        return override
    raw = os.environ.get(knob.env)
    if raw is None:
        return knob.default
    try:
        return knob.parse(raw)
    except (TypeError, ValueError):
        raise ConfigError(
            f"{knob.env}={raw!r} is unparseable: {knob.doc}"
        ) from None


# ---------------------------------------------------------------------------
# Typed accessors (the public surface call sites use)
# ---------------------------------------------------------------------------
def workers(override: Optional[int] = None) -> Optional[int]:
    """Engine worker-process count; ``None`` means run serially."""
    return get("workers", override)


def cache_dir(override=None) -> Optional[str]:
    """Engine result-cache root; ``None`` disables caching."""
    value = get("cache_dir", override)
    return str(value) if value is not None else None


def server(override: Optional[str] = None) -> Optional[str]:
    """Default ``repro serve`` base URL for :mod:`repro.client`."""
    return get("server", override)


def bench_workers(override: Optional[int] = None) -> Optional[int]:
    return get("bench_workers", override)


def bench_cache(override=None) -> Optional[str]:
    value = get("bench_cache", override)
    return str(value) if value is not None else None


def bench_full(override: Optional[bool] = None) -> bool:
    return bool(get("bench_full", override))


def sim_sharding(override: Optional[str] = None) -> str:
    """Simulation-kernel selector: ``auto`` | ``legacy`` | ``sharded``.

    An explicit override is validated the same way the environment
    value is, so a typo'd CLI flag fails loudly instead of silently
    running the wrong kernel."""
    value = get("sim_sharding", override)
    if value not in SIM_SHARDING_MODES:
        from repro.common.errors import ConfigError

        raise ConfigError(
            f"sim_sharding must be one of {SIM_SHARDING_MODES}, "
            f"got {value!r}"
        )
    return str(value)


def describe() -> str:
    """Human-readable table of every knob, its variable, and its
    meaning (rendered into docs and CLI help)."""
    width = max(len(k.env) for k in KNOBS.values())
    return "\n".join(
        f"{knob.env:<{width}}  {knob.doc}" for knob in KNOBS.values()
    )
