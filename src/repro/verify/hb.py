"""Vector-clock happens-before tracking over sync operations, with a
lockset-style data-race report for workload shared accesses.

The tracker maintains one vector clock per thread, advanced at every
synchronization event, with the classic edges:

* lock release -> next acquire of the same lock (``lock_rel`` /
  ``cond_wait_begin`` store the clock; ``lock_acq`` / ``cond_wait_end``
  join it);
* barrier episode: the release clock is the join of all arrivals'
  clocks; every exit joins it;
* ``cond_signal``/``cond_broadcast`` -> the wakeup that consumes it
  (joined conservatively: a waiter joins the accumulated signal clock).

Workload memory accesses (``mem_read``/``mem_write``, emitted by
ThreadCtx outside sync-library internals) are checked FastTrack-style:
each address keeps the last write epoch and per-thread read epochs; an
access unordered with a previous conflicting access yields a
:class:`~repro.verify.report.RaceRecord` carrying both sides' locksets.

Atomic RMWs (``mem_atomic``) are intentionally not race-checked: they
are the building blocks of flag/counter synchronization idioms whose
ordering the tracker does not model, and flagging them would bury real
findings.  For the same reason races are reported, not raised.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.verify.monitors import Monitor
from repro.verify.report import RaceRecord

#: Cap on reported races; one unsynchronized variable in a hot loop
#: would otherwise flood the report with identical records.
MAX_RACES = 64


class VectorClock(dict):
    """tid -> logical time.  Missing entries are zero."""

    def join(self, other: Optional["VectorClock"]) -> None:
        if not other:
            return
        for tid, t in other.items():
            if t > self.get(tid, 0):
                self[tid] = t

    def copy(self) -> "VectorClock":
        return VectorClock(self)


class _Epoch:
    """One access: (thread, its clock component, cycle, locks held)."""

    __slots__ = ("tid", "clock", "cycle", "locks")

    def __init__(self, tid: int, clock: int, cycle: int, locks: FrozenSet[int]):
        self.tid = tid
        self.clock = clock
        self.cycle = cycle
        self.locks = locks


class RaceMonitor(Monitor):
    """Happens-before + lockset race detection over probe events."""

    name = "data-race"

    def on_attach(self) -> None:
        self.vc: Dict[int, VectorClock] = {}
        self.held: Dict[int, Set[int]] = {}
        self.lock_release: Dict[int, VectorClock] = {}
        self.barrier_accum: Dict[int, VectorClock] = {}
        self.barrier_count: Dict[int, int] = {}
        self.barrier_release: Dict[int, VectorClock] = {}
        self.cond_clock: Dict[int, VectorClock] = {}
        self.writes: Dict[int, _Epoch] = {}
        self.reads: Dict[int, Dict[int, _Epoch]] = {}
        self.reported: Set[Tuple[int, FrozenSet[int]]] = set()
        self.accesses = 0

        probe = self.probe
        probe.subscribe("lock_acq", self._lock_acq)
        probe.subscribe("lock_rel", self._lock_rel)
        probe.subscribe("barrier_enter", self._barrier_enter)
        probe.subscribe("barrier_exit", self._barrier_exit)
        probe.subscribe("cond_wait_begin", self._wait_begin)
        probe.subscribe("cond_wait_end", self._wait_end)
        probe.subscribe("cond_signal", self._signal)
        probe.subscribe("mem_read", self._read)
        probe.subscribe("mem_write", self._write)
        probe.subscribe("mem_atomic", self._atomic)

    # -- clock plumbing -------------------------------------------------
    def _clock(self, tid: int) -> VectorClock:
        vc = self.vc.get(tid)
        if vc is None:
            vc = self.vc[tid] = VectorClock({tid: 1})
            self.held[tid] = set()
        return vc

    def _tick(self, tid: int) -> None:
        vc = self._clock(tid)
        vc[tid] = vc.get(tid, 0) + 1

    # -- sync edges -----------------------------------------------------
    def _lock_acq(self, e) -> None:
        self._clock(e.tid).join(self.lock_release.get(e.addr))
        self.held[e.tid].add(e.addr)
        self._tick(e.tid)

    def _lock_rel(self, e) -> None:
        self.lock_release[e.addr] = self._clock(e.tid).copy()
        self.held[e.tid].discard(e.addr)
        self._tick(e.tid)

    def _barrier_enter(self, e) -> None:
        addr, goal = e.addr, e.aux
        accum = self.barrier_accum.setdefault(addr, VectorClock())
        accum.join(self._clock(e.tid))
        count = self.barrier_count.get(addr, 0) + 1
        if count >= goal:
            self.barrier_release[addr] = accum.copy()
            self.barrier_accum[addr] = VectorClock()
            count = 0
        self.barrier_count[addr] = count
        self._tick(e.tid)

    def _barrier_exit(self, e) -> None:
        # Joining the *latest* release clock over-synchronizes slightly
        # under episode pipelining (may mask a race, never invents one).
        self._clock(e.tid).join(self.barrier_release.get(e.addr))
        self._tick(e.tid)

    def _wait_begin(self, e) -> None:
        self.lock_release[e.aux] = self._clock(e.tid).copy()
        self.held[e.tid].discard(e.aux)
        self._tick(e.tid)

    def _wait_end(self, e) -> None:
        vc = self._clock(e.tid)
        vc.join(self.cond_clock.get(e.addr))
        vc.join(self.lock_release.get(e.aux))
        self.held[e.tid].add(e.aux)
        self._tick(e.tid)

    def _signal(self, e) -> None:
        clock = self.cond_clock.setdefault(e.addr, VectorClock())
        clock.join(self._clock(e.tid))
        self._tick(e.tid)

    # -- memory accesses ------------------------------------------------
    def _ordered(self, epoch: _Epoch, tid: int) -> bool:
        return self._clock(tid).get(epoch.tid, 0) >= epoch.clock

    def _epoch(self, tid: int) -> _Epoch:
        vc = self._clock(tid)
        return _Epoch(
            tid, vc.get(tid, 0), self.probe.sim.now, frozenset(self.held[tid])
        )

    def _report(self, addr: int, kind: str, prev: _Epoch, now: _Epoch) -> None:
        key = (addr, frozenset((prev.tid, now.tid)))
        if key in self.reported or len(self.suite.races) >= MAX_RACES:
            return
        self.reported.add(key)
        self.suite.report_race(
            RaceRecord(
                addr=addr,
                kind=kind,
                first_tid=prev.tid,
                first_cycle=prev.cycle,
                first_locks=tuple(sorted(prev.locks)),
                second_tid=now.tid,
                second_cycle=now.cycle,
                second_locks=tuple(sorted(now.locks)),
            )
        )

    def _read(self, e) -> None:
        self.accesses += 1
        epoch = self._epoch(e.tid)
        write = self.writes.get(e.addr)
        if write is not None and write.tid != e.tid and not self._ordered(
            write, e.tid
        ):
            self._report(e.addr, "write-read", write, epoch)
        self.reads.setdefault(e.addr, {})[e.tid] = epoch

    def _write(self, e) -> None:
        self.accesses += 1
        epoch = self._epoch(e.tid)
        write = self.writes.get(e.addr)
        if write is not None and write.tid != e.tid and not self._ordered(
            write, e.tid
        ):
            self._report(e.addr, "write-write", write, epoch)
        for reader in self.reads.get(e.addr, {}).values():
            if reader.tid != e.tid and not self._ordered(reader, e.tid):
                self._report(e.addr, "read-write", reader, epoch)
        self.writes[e.addr] = epoch
        self.reads[e.addr] = {}

    def _atomic(self, e) -> None:
        # Atomics act as per-address fences: they clear the epoch state
        # so neither they nor accesses bridged by them are reported; see
        # module docstring.
        self.accesses += 1
        self.writes.pop(e.addr, None)
        self.reads[e.addr] = {}

    def stats(self) -> Dict[str, int]:
        return {"accesses": self.accesses, "threads": len(self.vc)}
