"""Pluggable invariant monitors.

Each monitor subscribes to the kinds it needs on the machine's
:class:`~repro.verify.events.Probe` and reports
:class:`~repro.verify.report.Violation` objects through the owning
:class:`~repro.verify.CheckerSuite`.  Monitors are pure observers: they
never mutate machine state and never schedule simulator events, so an
attached suite changes wall-clock time but not a single cycle count.

Writing a custom monitor (see docs/CHECKING.md):

* subclass :class:`Monitor`, set ``name``;
* in :meth:`on_attach`, subscribe handlers with
  ``self.probe.subscribe(kind, handler)``;
* report problems with :meth:`Monitor.violation`;
* optionally override :meth:`finalize` for end-of-run conservation
  checks and :meth:`stats` for informational counters.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.verify.events import Probe, SyncEvent
from repro.verify.report import Violation


class Monitor:
    """Base class: attachment plumbing and violation construction."""

    name = "monitor"

    def attach(self, machine, probe: Probe, suite) -> None:
        self.machine = machine
        self.probe = probe
        self.suite = suite
        self.on_attach()

    def on_attach(self) -> None:
        raise NotImplementedError

    def finalize(self) -> None:
        """End-of-run checks (conservation, emptiness); default none."""

    def stats(self) -> Dict[str, int]:
        """Informational counters for the report's ``notes``."""
        return {}

    def violation(
        self,
        message: str,
        addr: Optional[int] = None,
        threads: Tuple[int, ...] = (),
        invariant: Optional[str] = None,
    ) -> None:
        trace = [repr(e) for e in self.probe.recent(addr=addr)]
        cycle = self.probe.sim.now
        first = self.probe.recent(addr=addr)
        window = (first[0].t if first else cycle, cycle)
        self.suite.report_violation(
            Violation(
                invariant=invariant or self.name,
                message=message,
                addr=addr,
                threads=tuple(threads),
                cycle=cycle,
                window=window,
                trace=trace,
            )
        )


# ---------------------------------------------------------------------------
# Mutual exclusion
# ---------------------------------------------------------------------------
class MutualExclusionMonitor(Monitor):
    """Per-address mutual exclusion over the thread-level lock API.

    Tracks the holder of every lock address from ``lock_acq`` /
    ``lock_rel`` (and the condvar wait protocol, which releases and
    re-acquires the associated lock).  Two concurrent holders, or a
    release by a non-holder, is a violation.
    """

    name = "mutual-exclusion"

    def on_attach(self) -> None:
        self.holder: Dict[int, int] = {}
        self.acquires = 0
        probe = self.probe
        probe.subscribe("lock_acq", self._acquire)
        probe.subscribe("lock_rel", self._release)
        probe.subscribe("cond_wait_begin", self._wait_begin)
        probe.subscribe("cond_wait_end", self._wait_end)

    def _take(self, lock: int, tid: int) -> None:
        self.acquires += 1
        held_by = self.holder.get(lock)
        if held_by is not None and held_by != tid:
            self.violation(
                f"lock {lock:#x} granted to thread {tid} while held by "
                f"thread {held_by}",
                addr=lock,
                threads=(held_by, tid),
            )
        self.holder[lock] = tid

    def _drop(self, lock: int, tid: int) -> None:
        held_by = self.holder.pop(lock, None)
        if held_by is not None and held_by != tid:
            self.violation(
                f"lock {lock:#x} released by thread {tid} but held by "
                f"thread {held_by}",
                addr=lock,
                threads=(held_by, tid),
            )

    def _acquire(self, e: SyncEvent) -> None:
        self._take(e.addr, e.tid)

    def _release(self, e: SyncEvent) -> None:
        self._drop(e.addr, e.tid)

    def _wait_begin(self, e: SyncEvent) -> None:
        # cond_wait releases the associated lock (e.aux) atomically.
        self._drop(e.aux, e.tid)

    def _wait_end(self, e: SyncEvent) -> None:
        # cond_wait returns holding the lock again.
        self._take(e.aux, e.tid)

    def finalize(self) -> None:
        for lock, tid in sorted(self.holder.items()):
            self.violation(
                f"lock {lock:#x} still held by thread {tid} at end of run",
                addr=lock,
                threads=(tid,),
            )

    def stats(self) -> Dict[str, int]:
        return {"acquires": self.acquires}


# ---------------------------------------------------------------------------
# Barrier epoch / arrival conservation
# ---------------------------------------------------------------------------
class BarrierMonitor(Monitor):
    """No thread passes a barrier before its episode completes, and no
    thread is left behind.

    For each barrier address, with episode goal ``g``: after ``k``
    completed episodes exactly ``k*g`` entries have been absorbed, so an
    exit numbered ``e`` (1-based) is legal only when at least
    ``ceil(e/g)*g`` entries have happened.  At end of run every entry
    must be matched by an exit and episodes must be whole.
    """

    name = "barrier-epoch"

    def on_attach(self) -> None:
        self.entered: Dict[int, int] = {}
        self.exited: Dict[int, int] = {}
        self.goal: Dict[int, int] = {}
        self.episodes = 0
        self.probe.subscribe("barrier_enter", self._enter)
        self.probe.subscribe("barrier_exit", self._exit)

    def _enter(self, e: SyncEvent) -> None:
        addr, goal = e.addr, e.aux
        known = self.goal.get(addr)
        if known is None:
            self.goal[addr] = goal
        elif known != goal:
            self.violation(
                f"barrier {addr:#x} used with goal {goal} after goal {known}",
                addr=addr,
                threads=(e.tid,),
            )
        self.entered[addr] = self.entered.get(addr, 0) + 1
        if self.entered[addr] % goal == 0:
            self.episodes += 1

    def _exit(self, e: SyncEvent) -> None:
        addr, goal = e.addr, e.aux
        exits = self.exited.get(addr, 0) + 1
        self.exited[addr] = exits
        # Smallest whole number of episodes covering this exit.
        needed = ((exits + goal - 1) // goal) * goal
        if self.entered.get(addr, 0) < needed:
            self.violation(
                f"thread {e.tid} passed barrier {addr:#x} after only "
                f"{self.entered.get(addr, 0)} arrivals "
                f"(exit #{exits} needs {needed} with goal {goal})",
                addr=addr,
                threads=(e.tid,),
            )

    def finalize(self) -> None:
        for addr, entered in sorted(self.entered.items()):
            goal = self.goal.get(addr, 1)
            exited = self.exited.get(addr, 0)
            if entered != exited:
                self.violation(
                    f"barrier {addr:#x}: {entered} arrivals but {exited} "
                    f"exits -- {entered - exited} thread(s) left behind",
                    addr=addr,
                )
            elif goal and entered % goal:
                self.violation(
                    f"barrier {addr:#x}: {entered} arrivals is not a whole "
                    f"number of episodes of {goal}",
                    addr=addr,
                )

    def stats(self) -> Dict[str, int]:
        return {"episodes": self.episodes, "barriers": len(self.goal)}


# ---------------------------------------------------------------------------
# Condition variables: no lost wakeups
# ---------------------------------------------------------------------------
class CondvarMonitor(Monitor):
    """Every ``cond_wait`` eventually returns.

    A wait that never ends while the run completes is a lost wakeup
    (the chaos runs exercise exactly this: a dropped wake-up message
    must be recovered by the retry plane, never silently lost).
    """

    name = "condvar-wakeup"

    def on_attach(self) -> None:
        self.waiting: Dict[int, Set[int]] = {}
        self.signals: Dict[int, int] = {}
        self.waits = 0
        self.probe.subscribe("cond_wait_begin", self._begin)
        self.probe.subscribe("cond_wait_end", self._end)
        self.probe.subscribe("cond_signal", self._signal)

    def _begin(self, e: SyncEvent) -> None:
        self.waits += 1
        self.waiting.setdefault(e.addr, set()).add(e.tid)

    def _end(self, e: SyncEvent) -> None:
        waiters = self.waiting.get(e.addr)
        if waiters is None or e.tid not in waiters:
            self.violation(
                f"thread {e.tid} returned from cond_wait on {e.addr:#x} "
                f"without a matching wait",
                addr=e.addr,
                threads=(e.tid,),
            )
            return
        waiters.discard(e.tid)

    def _signal(self, e: SyncEvent) -> None:
        self.signals[e.addr] = self.signals.get(e.addr, 0) + 1

    def finalize(self) -> None:
        for cond, waiters in sorted(self.waiting.items()):
            if waiters:
                self.violation(
                    f"cond {cond:#x}: thread(s) {sorted(waiters)} never "
                    f"woke from cond_wait (lost wakeup)",
                    addr=cond,
                    threads=tuple(sorted(waiters)),
                )

    def stats(self) -> Dict[str, int]:
        return {"waits": self.waits, "signals": sum(self.signals.values())}


# ---------------------------------------------------------------------------
# OMU safety
# ---------------------------------------------------------------------------
class OmuSafetyMonitor(Monitor):
    """The paper's core safety claim (section 3.2): the MSA never
    allocates an entry for an address while *software* activity on that
    address is outstanding at the same home tile.

    The monitor maintains an exact per-(tile, address) reference count
    mirroring every OMU charge/discharge; an ``msa_alloc`` while the
    reference count is non-zero means the real OMU under-reported
    (saturation losing counts, or an aliasing scheme with false
    negatives) -- the hazard class the sticky-saturation fix closes.
    """

    name = "omu-safety"

    def on_attach(self) -> None:
        self.ref: Dict[Tuple[int, int], int] = {}
        self.charges = 0
        self.probe.subscribe("omu_inc", self._inc)
        self.probe.subscribe("omu_dec", self._dec)
        self.probe.subscribe("msa_alloc", self._alloc)
        self.probe.subscribe("msa_kill", self._kill)

    def _inc(self, e: SyncEvent) -> None:
        self.charges += 1
        key = (e.tile, e.addr)
        self.ref[key] = self.ref.get(key, 0) + e.aux

    def _dec(self, e: SyncEvent) -> None:
        key = (e.tile, e.addr)
        self.ref[key] = max(0, self.ref.get(key, 0) - e.aux)

    def _alloc(self, e: SyncEvent) -> None:
        live = self.ref.get((e.tile, e.addr), 0)
        if live:
            self.violation(
                f"tile {e.tile} allocated an MSA entry for {e.addr:#x} "
                f"while {live} software-side operation(s) are outstanding "
                f"(OMU false 'inactive')",
                addr=e.addr,
            )

    def _kill(self, e: SyncEvent) -> None:
        # A killed slice loses all OMU state and never allocates again;
        # drop its reference counts so post-mortem FINISHes (which the
        # dead slice ignores, emitting nothing) cannot skew them.
        for key in [k for k in self.ref if k[0] == e.tile]:
            del self.ref[key]

    def stats(self) -> Dict[str, int]:
        return {"charges": self.charges}


# ---------------------------------------------------------------------------
# MSA entry conservation
# ---------------------------------------------------------------------------
class EntryConservationMonitor(Monitor):
    """Entry allocations minus frees equals live entries per tile, and
    a slice never holds more entries than its capacity."""

    name = "entry-conservation"

    def on_attach(self) -> None:
        self.allocated: Dict[int, int] = {}
        self.freed: Dict[int, int] = {}
        self.dead: Set[int] = set()
        self.probe.subscribe("msa_alloc", self._alloc)
        self.probe.subscribe("msa_free", self._free)
        self.probe.subscribe("msa_kill", self._kill)

    def _capacity(self) -> Optional[int]:
        msa = self.machine.params.msa
        if msa is None or msa.is_infinite:
            return None
        return msa.entries_per_tile

    def _alloc(self, e: SyncEvent) -> None:
        self.allocated[e.tile] = self.allocated.get(e.tile, 0) + 1
        capacity = self._capacity()
        live = e.aux[1]
        if capacity is not None and live > capacity:
            self.violation(
                f"tile {e.tile} holds {live} entries after allocating "
                f"{e.addr:#x} (capacity {capacity})",
                addr=e.addr,
            )

    def _free(self, e: SyncEvent) -> None:
        self.freed[e.tile] = self.freed.get(e.tile, 0) + 1

    def _kill(self, e: SyncEvent) -> None:
        self.dead.add(e.tile)

    def finalize(self) -> None:
        for sl in self.machine.msa_slices:
            if sl.tile in self.dead or sl.dead:
                continue
            expected = self.allocated.get(sl.tile, 0) - self.freed.get(
                sl.tile, 0
            )
            if expected != len(sl.entries):
                self.violation(
                    f"tile {sl.tile}: {self.allocated.get(sl.tile, 0)} "
                    f"allocations - {self.freed.get(sl.tile, 0)} frees = "
                    f"{expected}, but {len(sl.entries)} entries live",
                )

    def stats(self) -> Dict[str, int]:
        return {
            "allocated": sum(self.allocated.values()),
            "freed": sum(self.freed.values()),
        }


# ---------------------------------------------------------------------------
# NoC message conservation
# ---------------------------------------------------------------------------
class NocConservationMonitor(Monitor):
    """No message is dropped or duplicated beyond what the fault plan
    authorized.

    Online, reliably-carried traffic must dispatch with strictly
    contiguous per-channel sequence numbers (the transport's
    exactly-once, in-order contract).  At end of run, every wire copy
    must be accounted for::

        sent + authorized_dups == delivered + authorized_drops
                                + transport_dup_suppressed + stuck

    where ``stuck`` counts messages parked forever behind an abandoned
    sequence number in a reorder buffer (an authorized give-up, visible
    in the transport's ``abandoned`` counter).
    """

    name = "noc-conservation"

    def on_attach(self) -> None:
        self.delivered_seq: Dict[Tuple[int, int], int] = {}
        self.dispatches = 0
        self.probe.subscribe("noc_deliver", self._deliver)

    def _deliver(self, e: SyncEvent) -> None:
        self.dispatches += 1
        kind, rel_seq = e.aux
        if rel_seq is None:
            return
        chan = (e.tid, e.tile)
        expected = self.delivered_seq.get(chan, 0) + 1
        if rel_seq != expected:
            self.violation(
                f"channel {chan} dispatched {kind} with seq {rel_seq}, "
                f"expected {expected} (transport ordering broken)",
            )
        self.delivered_seq[chan] = rel_seq

    def finalize(self) -> None:
        machine = self.machine
        noc = machine.network.stats
        sent = noc.counter("messages_sent").value
        delivered = noc.counter("messages_delivered").value
        dropped = dup = suppressed = stuck = 0
        if machine.fault_injector is not None:
            inj = machine.fault_injector.stats
            dropped = inj.counter("msgs_dropped").value
            dup = inj.counter("msgs_duplicated").value
        if machine.transport is not None:
            suppressed = machine.transport.stats.counter(
                "dup_suppressed"
            ).value
            stuck = sum(
                len(state.buffer)
                for state in machine.transport._recv.values()
            )
        if sent + dup != delivered + dropped + suppressed + stuck:
            self.violation(
                f"message conservation broken: sent={sent} + dups={dup} "
                f"!= delivered={delivered} + dropped={dropped} + "
                f"suppressed={suppressed} + stuck={stuck} "
                f"(unauthorized loss or duplication)",
            )

    def stats(self) -> Dict[str, int]:
        return {"dispatches": self.dispatches}
