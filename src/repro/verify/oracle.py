"""Differential sync oracle: replay the recorded sync-op trace against
a sequential reference model, and cross-check outcomes across machine
configurations (MSA hardware vs ``runtime.swsync`` software vs
``msa.ideal``).

The :class:`OracleMonitor` records the thread-level synchronization
trace in simulation order and, at finalize, replays it through
:class:`SequentialReplayer` -- an independent, trivially-correct model
of locks, barriers, and condvars.  Any recorded history the reference
model finds infeasible (a lock granted while held, a barrier passed
early, a wakeup with no signal *and* no spurious-wakeup contract) is a
protocol bug in whichever implementation produced the trace.

:func:`differential` runs the *same* workload/cores/seed on several
configurations -- the deterministic address allocator gives every
config identical synchronization addresses -- replays each trace, and
cross-checks the per-address outcomes that must agree exactly: barrier
episode counts.  Lock-acquisition and signal counts legitimately vary
(work stealing, condvar wait loops), so they are reported, not
asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.verify.monitors import Monitor

#: Trace tuples are (cycle, kind, tid, addr, aux).
TraceOp = Tuple[int, str, int, int, Optional[int]]

RECORDED_KINDS = (
    "lock_acq",
    "lock_rel",
    "barrier_enter",
    "barrier_exit",
    "cond_wait_begin",
    "cond_wait_end",
    "cond_signal",
)


class SequentialReplayer:
    """Replays a sync-op trace against plain sequential semantics.

    Never touches the simulator: this is the reference model the
    hardware/software/ideal implementations are differenced against.
    """

    def __init__(self):
        self.owner: Dict[int, Optional[int]] = {}
        self.goal: Dict[int, int] = {}
        self.entered: Dict[int, int] = {}
        self.exited: Dict[int, int] = {}
        self.waiting: Dict[int, set] = {}
        self.wake_tokens: Dict[int, int] = {}
        self.lock_acquires: Dict[int, int] = {}
        self.barrier_episodes: Dict[int, int] = {}
        self.signals: Dict[int, int] = {}
        self.spurious_wakeups = 0
        self.infeasible: List[str] = []

    def replay(self, ops: Sequence[TraceOp]) -> List[str]:
        for op in ops:
            t, kind, tid, addr, aux = op
            getattr(self, f"_{kind}")(t, tid, addr, aux)
        for addr, entered in sorted(self.entered.items()):
            goal = self.goal.get(addr, 1)
            if entered != self.exited.get(addr, 0):
                self.infeasible.append(
                    f"barrier {addr:#x}: {entered} arrivals vs "
                    f"{self.exited.get(addr, 0)} exits"
                )
            elif goal and entered % goal:
                self.infeasible.append(
                    f"barrier {addr:#x}: partial final episode "
                    f"({entered} arrivals, goal {goal})"
                )
        return self.infeasible

    def _lock_acq(self, t, tid, addr, aux) -> None:
        holder = self.owner.get(addr)
        if holder is not None:
            self.infeasible.append(
                f"cycle {t}: lock {addr:#x} acquired by t{tid} while "
                f"held by t{holder}"
            )
        self.owner[addr] = tid
        self.lock_acquires[addr] = self.lock_acquires.get(addr, 0) + 1

    def _lock_rel(self, t, tid, addr, aux) -> None:
        holder = self.owner.get(addr)
        if holder != tid:
            self.infeasible.append(
                f"cycle {t}: lock {addr:#x} released by t{tid}, "
                f"holder {holder}"
            )
        self.owner[addr] = None

    def _barrier_enter(self, t, tid, addr, goal) -> None:
        known = self.goal.setdefault(addr, goal)
        if known != goal:
            self.infeasible.append(
                f"cycle {t}: barrier {addr:#x} goal {goal} != {known}"
            )
        entered = self.entered.get(addr, 0) + 1
        self.entered[addr] = entered
        if entered % goal == 0:
            self.barrier_episodes[addr] = (
                self.barrier_episodes.get(addr, 0) + 1
            )

    def _barrier_exit(self, t, tid, addr, goal) -> None:
        exits = self.exited.get(addr, 0) + 1
        self.exited[addr] = exits
        needed = ((exits + goal - 1) // goal) * goal
        if self.entered.get(addr, 0) < needed:
            self.infeasible.append(
                f"cycle {t}: t{tid} passed barrier {addr:#x} with "
                f"{self.entered.get(addr, 0)}/{needed} arrivals"
            )

    def _cond_wait_begin(self, t, tid, cond, lock) -> None:
        self._lock_rel(t, tid, lock, None)
        self.waiting.setdefault(cond, set()).add(tid)

    def _cond_wait_end(self, t, tid, cond, lock) -> None:
        waiters = self.waiting.get(cond, set())
        if tid not in waiters:
            self.infeasible.append(
                f"cycle {t}: t{tid} woke on {cond:#x} without waiting"
            )
        waiters.discard(tid)
        tokens = self.wake_tokens.get(cond, 0)
        if tokens > 0:
            self.wake_tokens[cond] = tokens - 1
        else:
            # Legal (the ABORT/migration paths surface as spurious
            # wakeups) but worth counting for the report.
            self.spurious_wakeups += 1
        self._lock_acq(t, tid, lock, None)
        self.lock_acquires[lock] -= 1  # re-acquire, not a fresh acquire

    def _cond_signal(self, t, tid, cond, broadcast) -> None:
        self.signals[cond] = self.signals.get(cond, 0) + 1
        waiters = len(self.waiting.get(cond, ()))
        grant = waiters if broadcast else min(1, waiters)
        self.wake_tokens[cond] = self.wake_tokens.get(cond, 0) + grant

    def summary(self) -> Dict:
        """Per-address outcome summary (JSON-safe keys)."""
        return {
            "barrier_episodes": {
                hex(a): n for a, n in sorted(self.barrier_episodes.items())
            },
            "lock_acquires": {
                hex(a): n for a, n in sorted(self.lock_acquires.items())
            },
            "signals": {hex(a): n for a, n in sorted(self.signals.items())},
            "spurious_wakeups": self.spurious_wakeups,
        }


class OracleMonitor(Monitor):
    """Records the sync-op trace; replays it at finalize."""

    name = "oracle"

    def on_attach(self) -> None:
        self.ops: List[TraceOp] = []
        self.replayer: Optional[SequentialReplayer] = None
        for kind in RECORDED_KINDS:
            self.probe.subscribe(kind, self._record)

    def _record(self, e) -> None:
        self.ops.append((e.t, e.kind, e.tid, e.addr, e.aux))

    def finalize(self) -> None:
        self.replayer = SequentialReplayer()
        for problem in self.replayer.replay(self.ops):
            self.violation(problem, invariant="oracle-replay")
        self.suite.oracle_summary = self.replayer.summary()

    def stats(self) -> Dict[str, int]:
        out = {"ops": len(self.ops)}
        if self.replayer is not None:
            out["spurious_wakeups"] = self.replayer.spurious_wakeups
            out["barrier_episodes"] = sum(
                self.replayer.barrier_episodes.values()
            )
        return out


# ---------------------------------------------------------------------------
# Differential cross-configuration checking
# ---------------------------------------------------------------------------
@dataclass
class DifferentialReport:
    """Cross-configuration comparison of replayed sync outcomes."""

    workload: str
    configs: List[str]
    summaries: Dict[str, Dict] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    violations: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not any(self.violations.values())

    def describe(self) -> str:
        lines = [
            f"differential oracle: {self.workload} across "
            f"{', '.join(self.configs)} -> {'ok' if self.ok else 'FAILED'}"
        ]
        for config in self.configs:
            summary = self.summaries.get(config, {})
            lines.append(
                f"  {config}: "
                f"{sum(summary.get('barrier_episodes', {}).values())} "
                f"barrier episodes, "
                f"{sum(summary.get('lock_acquires', {}).values())} lock "
                f"acquires, {summary.get('spurious_wakeups', 0)} spurious "
                f"wakeups, {self.violations.get(config, 0)} violations"
            )
        lines.extend(f"  MISMATCH: {m}" for m in self.mismatches)
        return "\n".join(lines)


def differential(
    workload: str = "streamcluster",
    configs: Sequence[str] = ("msa-omu-2", "pthread", "ideal"),
    cores: int = 16,
    scale: float = 0.25,
    seed: int = 2015,
    monitors: Sequence[str] = ("mutex", "barrier", "condvar", "oracle"),
) -> DifferentialReport:
    """Run one workload identically on several configs and cross-check.

    Every config sees the same deterministic addresses, so per-address
    barrier episode counts must agree exactly; each config's trace must
    also replay cleanly on the sequential reference model (that part is
    enforced per run by the attached monitors).
    """
    from repro import api

    report = DifferentialReport(workload=workload, configs=list(configs))
    for config in configs:
        result = api.run(
            config,
            workload,
            cores=cores,
            seed=seed,
            scale=scale,
            checkers=tuple(monitors),
            raise_violations=False,
        )
        check = result.check_report or {}
        report.violations[config] = len(check.get("violations", ()))
        report.summaries[config] = check.get("oracle", {})
    baseline = report.summaries.get(configs[0], {})
    base_episodes = baseline.get("barrier_episodes", {})
    for config in configs[1:]:
        episodes = report.summaries.get(config, {}).get(
            "barrier_episodes", {}
        )
        if episodes != base_episodes:
            report.mismatches.append(
                f"barrier episodes differ: {configs[0]}={base_episodes} "
                f"vs {config}={episodes}"
            )
    return report
