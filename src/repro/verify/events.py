"""The checker event bus: a :class:`Probe` that components publish
synchronization-relevant events to, and monitors subscribe to.

The probe follows the :class:`repro.sim.trace.Tracer` discipline: a
machine without checkers attached has ``machine.probe is None`` and
every call site pays exactly one attribute test (``if probe is not
None``), so the hot path is untouched when checking is disabled.  When
:func:`repro.verify.attach_checkers` wires a probe in, events flow
synchronously (no simulator events are scheduled), so enabling checkers
never changes cycle counts -- only wall-clock time.

Event vocabulary (``SyncEvent.kind``):

=================  ====================================================
kind               emitted by / meaning
=================  ====================================================
lock_req/lock_acq  ThreadCtx.lock: request issued / lock held
lock_rel           ThreadCtx.unlock: release begins
barrier_enter      ThreadCtx.barrier: arrival (aux = goal)
barrier_exit       ThreadCtx.barrier: episode passed (aux = goal)
cond_wait_begin    ThreadCtx.cond_wait (addr = cond, aux = lock addr)
cond_wait_end      ThreadCtx.cond_wait returned (lock re-held)
cond_signal        ThreadCtx.cond_signal/broadcast (aux = 1 if bcast)
mem_read/mem_write ThreadCtx.load/store outside sync internals
mem_atomic         ThreadCtx.rmw outside sync internals
msa_alloc          MSA slice allocated an entry (aux = (type, live))
msa_free           MSA slice dropped an entry (aux = reason)
msa_kill           MSA slice failed stop (fault plane)
omu_inc/omu_dec    OMU charge/discharge at a slice (aux = amount)
omu_steer          OMU-saturated slice steered an allocation to the
                   software fallback (aux = sync type value)
noc_send           Network accepted a message for injection
                   (tid = src tile, tile = dst, aux = kind); emitted
                   only when a subscriber opted in (``noc_active``)
noc_deliver        Network dispatched a message to its handler
                   (tid = src tile, tile = dst, aux = (kind, rel_seq))
req_done           Traffic worker finished a request (addr = request
                   id, aux = (arrival cycle, shape, outcome) where
                   outcome is ``ok``/``timeout``)
req_shed           Traffic dispatcher shed a request at admission
                   (addr = request id, aux = (arrival cycle, shape))
=================  ====================================================

High-rate kinds (``mem_*``, ``noc_send``, ``noc_deliver``, ``req_*``)
are dispatched to subscribers but excluded from the sliding context
window that violation reports quote, so the window stays a readable
synchronization history.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

#: Kinds kept out of the violation-context window (too chatty).
HIGH_RATE_KINDS = frozenset(
    {
        "mem_read",
        "mem_write",
        "mem_atomic",
        "noc_send",
        "noc_deliver",
        "req_done",
        "req_shed",
    }
)

#: Kinds whose subscription turns on memory-access probing in ThreadCtx.
MEM_KINDS = frozenset({"mem_read", "mem_write", "mem_atomic"})


class SyncEvent:
    """One observed event.  ``aux`` is kind-specific (see module doc)."""

    __slots__ = ("t", "kind", "tid", "addr", "aux", "tile")

    def __init__(self, t, kind, tid=None, addr=None, aux=None, tile=None):
        self.t = t
        self.kind = kind
        self.tid = tid
        self.addr = addr
        self.aux = aux
        self.tile = tile

    def __repr__(self) -> str:
        parts = [f"[{self.t:>8}] {self.kind}"]
        if self.tid is not None:
            parts.append(f"tid={self.tid}")
        if self.addr is not None:
            parts.append(f"addr={self.addr:#x}")
        if self.tile is not None:
            parts.append(f"tile={self.tile}")
        if self.aux is not None:
            parts.append(f"aux={self.aux}")
        return " ".join(parts)


class Probe:
    """Synchronous publish/subscribe bus for checker events.

    Kept deliberately small: ``emit`` is called from simulation hot
    paths whenever checking is enabled, so it does one dict lookup, one
    (bounded) window append, and direct handler calls.
    """

    def __init__(self, sim, window: int = 2048):
        self.sim = sim
        self.events_observed = 0
        self.mem_active = False
        """True once any monitor subscribed to a ``mem_*`` kind;
        ThreadCtx checks this so un-probed runs skip per-access events."""

        self.noc_active = False
        """True once anything subscribed to ``noc_send``; the network's
        inject path checks this so send-side emission costs nothing
        unless the observability layer opted in."""

        self._subs: Dict[str, List[Callable[[SyncEvent], None]]] = {}
        self._window: deque = deque(maxlen=window)

    def subscribe(self, kind: str, handler: Callable[["SyncEvent"], None]) -> None:
        self._subs.setdefault(kind, []).append(handler)
        if kind in MEM_KINDS:
            self.mem_active = True
        if kind == "noc_send":
            self.noc_active = True

    def emit(self, kind, tid=None, addr=None, aux=None, tile=None) -> None:
        event = SyncEvent(self.sim.now, kind, tid, addr, aux, tile)
        self.events_observed += 1
        if kind not in HIGH_RATE_KINDS:
            self._window.append(event)
        handlers = self._subs.get(kind)
        if handlers:
            for handler in handlers:
                handler(event)

    def recent(
        self, addr: Optional[int] = None, limit: int = 24
    ) -> List[SyncEvent]:
        """The tail of the context window, optionally restricted to one
        address (plus addressless events like kills) -- this is the
        "relevant trace slice" violations carry."""
        events = list(self._window)
        if addr is not None:
            events = [e for e in events if e.addr in (addr, None)]
        return events[-limit:]
