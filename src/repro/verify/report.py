"""Structured checker results: violations, race records, and the
:class:`CheckReport` a checked run attaches to its
:class:`~repro.harness.runner.RunResult`.

Everything here serializes to plain dicts (JSON-ready) so reports
survive the harness result cache and worker-process boundaries.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Violation:
    """One invariant violation, with everything needed to debug it."""

    invariant: str
    """Monitor/invariant name (e.g. ``mutual-exclusion``)."""

    message: str
    addr: Optional[int] = None
    threads: Tuple[int, ...] = ()
    cycle: int = 0
    """Cycle at which the violation was detected."""

    window: Tuple[int, int] = (0, 0)
    """(first cycle of the quoted trace slice, detection cycle)."""

    trace: List[str] = field(default_factory=list)
    """Formatted recent probe events relevant to the violation."""

    def describe(self) -> str:
        addr = f" addr={self.addr:#x}" if self.addr is not None else ""
        threads = (
            f" threads={list(self.threads)}" if self.threads else ""
        )
        lines = [
            f"invariant '{self.invariant}' violated at cycle {self.cycle}"
            f"{addr}{threads} (window {self.window[0]}..{self.window[1]}): "
            f"{self.message}"
        ]
        if self.trace:
            lines.append("trace slice:")
            lines.extend(f"  {line}" for line in self.trace)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["threads"] = list(self.threads)
        data["window"] = list(self.window)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Violation":
        data = dict(data)
        data["threads"] = tuple(data.get("threads", ()))
        data["window"] = tuple(data.get("window", (0, 0)))
        return cls(**data)


@dataclass
class RaceRecord:
    """A candidate data race: two accesses to the same address with no
    happens-before edge between them (lockset shown for diagnosis).

    Races are *reported*, not raised: workloads legitimately synchronize
    through flag spins the happens-before tracker does not model, so a
    record is a lead, not a verdict.
    """

    addr: int
    kind: str
    """``write-write``, ``write-read``, or ``read-write``."""

    first_tid: int
    first_cycle: int
    first_locks: Tuple[int, ...]
    second_tid: int
    second_cycle: int
    second_locks: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"{self.kind} race on {self.addr:#x}: "
            f"t{self.first_tid}@{self.first_cycle} "
            f"(locks={[hex(a) for a in self.first_locks]}) || "
            f"t{self.second_tid}@{self.second_cycle} "
            f"(locks={[hex(a) for a in self.second_locks]})"
        )

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["first_locks"] = list(self.first_locks)
        data["second_locks"] = list(self.second_locks)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RaceRecord":
        data = dict(data)
        data["first_locks"] = tuple(data.get("first_locks", ()))
        data["second_locks"] = tuple(data.get("second_locks", ()))
        return cls(**data)


@dataclass
class CheckReport:
    """What the checker suite observed over one run."""

    monitors: List[str] = field(default_factory=list)
    events_observed: int = 0
    violations: List[Violation] = field(default_factory=list)
    races: List[RaceRecord] = field(default_factory=list)
    notes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    """Per-monitor informational counters (e.g. locks tracked,
    barrier episodes replayed, spurious wakeups)."""

    oracle: Dict = field(default_factory=dict)
    """Per-address outcome summary from the sequential replay oracle
    (only populated when the ``oracle`` monitor ran); the differential
    checker compares these across configurations."""

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        head = (
            f"check: {'ok' if self.ok else 'FAILED'} "
            f"({len(self.monitors)} monitors, "
            f"{self.events_observed:,} events, "
            f"{len(self.violations)} violations, "
            f"{len(self.races)} race reports)"
        )
        lines = [head]
        for v in self.violations:
            lines.append(v.describe())
        for r in self.races:
            lines.append("  " + r.describe())
        for name in sorted(self.notes):
            stats = self.notes[name]
            if stats:
                summary = ", ".join(
                    f"{k}={v}" for k, v in sorted(stats.items())
                )
                lines.append(f"  {name}: {summary}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "monitors": list(self.monitors),
            "events_observed": self.events_observed,
            "violations": [v.to_dict() for v in self.violations],
            "races": [r.to_dict() for r in self.races],
            "notes": {k: dict(v) for k, v in self.notes.items()},
            "oracle": dict(self.oracle),
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CheckReport":
        return cls(
            monitors=list(data.get("monitors", [])),
            events_observed=data.get("events_observed", 0),
            violations=[
                Violation.from_dict(v) for v in data.get("violations", [])
            ],
            races=[RaceRecord.from_dict(r) for r in data.get("races", [])],
            notes={k: dict(v) for k, v in data.get("notes", {}).items()},
            oracle=dict(data.get("oracle", {})),
        )
