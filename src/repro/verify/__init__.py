"""repro.verify -- online invariant checking for simulation runs.

Attach a checker suite to any machine before running a workload::

    from repro import api
    from repro.verify import attach_checkers

    machine = api.build("msa-omu-2", cores=16)
    suite = attach_checkers(machine)            # all monitors
    result = api.run(machine, "streamcluster", scale=0.5)
    report = suite.finalize()                   # raises on violations

or let the harness do the wiring (one keyword everywhere)::

    result = api.run("msa-omu-2", "streamcluster", checkers=True)
    print(result.check_report["ok"])

Monitors (registry names):

* ``mutex`` -- per-address mutual exclusion;
* ``barrier`` -- barrier epoch/arrival conservation;
* ``condvar`` -- no lost wakeups;
* ``omu-safety`` -- the MSA never allocates an entry while the exact
  software-activity reference count for the address is non-zero;
* ``entries`` -- MSA entry-count conservation and capacity;
* ``noc`` -- NoC message conservation (no drop/dup a FaultPlan did not
  authorize) and transport delivery-order checking;
* ``race`` -- vector-clock happens-before tracking with a lockset race
  report for workload shared accesses (reported, not raised);
* ``oracle`` -- differential replay of the sync-op trace against a
  sequential reference model.

Violations raise :class:`repro.common.errors.InvariantViolation`
carrying the invariant name, address, threads, cycle window, and the
relevant trace slice; see docs/CHECKING.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.common.errors import InvariantViolation
from repro.verify.events import Probe, SyncEvent
from repro.verify.hb import RaceMonitor, VectorClock
from repro.verify.monitors import (
    BarrierMonitor,
    CondvarMonitor,
    EntryConservationMonitor,
    Monitor,
    MutualExclusionMonitor,
    NocConservationMonitor,
    OmuSafetyMonitor,
)
from repro.verify.oracle import (
    DifferentialReport,
    OracleMonitor,
    SequentialReplayer,
    differential,
)
from repro.verify.report import CheckReport, RaceRecord, Violation

__all__ = [
    "MONITORS",
    "DEFAULT_MONITORS",
    "CheckerSuite",
    "attach_checkers",
    "resolve_monitors",
    "run_selftest",
    "differential",
    "DifferentialReport",
    "SequentialReplayer",
    "Probe",
    "SyncEvent",
    "Monitor",
    "CheckReport",
    "Violation",
    "RaceRecord",
    "VectorClock",
    "InvariantViolation",
]

#: Registry: monitor name -> class.  Extend it to plug in custom
#: monitors by name (or pass Monitor instances to attach_checkers).
MONITORS = {
    "mutex": MutualExclusionMonitor,
    "barrier": BarrierMonitor,
    "condvar": CondvarMonitor,
    "omu-safety": OmuSafetyMonitor,
    "entries": EntryConservationMonitor,
    "noc": NocConservationMonitor,
    "race": RaceMonitor,
    "oracle": OracleMonitor,
}

DEFAULT_MONITORS = tuple(MONITORS)


def resolve_monitors(
    monitors: Union[bool, None, Sequence] = True,
) -> List[Monitor]:
    """Names/instances/True(=all) -> fresh Monitor instances."""
    if monitors is True or monitors is None:
        monitors = DEFAULT_MONITORS
    out: List[Monitor] = []
    for item in monitors:
        if isinstance(item, Monitor):
            out.append(item)
        elif isinstance(item, type) and issubclass(item, Monitor):
            out.append(item())
        elif item in MONITORS:
            out.append(MONITORS[item]())
        else:
            raise ValueError(
                f"unknown monitor {item!r}; expected one of {sorted(MONITORS)}"
            )
    return out


class CheckerSuite:
    """Owns the probe, the monitors, and the accumulated findings.

    Built by :func:`attach_checkers` (one suite per machine, attach
    before spawning threads); monitors publish into it via
    :meth:`report_violation` / :meth:`report_race`, and
    :meth:`report` snapshots everything as a :class:`CheckReport`.
    Pass ``probe=`` to share an existing bus (an observability
    :class:`repro.obs.Collector` and a suite can listen on one probe).

    >>> from repro import api
    >>> from repro.verify import attach_checkers
    >>> machine = api.build("msa-omu-2", cores=4)
    >>> suite = attach_checkers(machine)
    >>> result = api.run(machine, "streamcluster", scale=0.05)
    >>> report = suite.report()
    >>> report.ok and report.events_observed > 0
    True
    >>> sorted(report.monitors)[:2]
    ['barrier-epoch', 'condvar-wakeup']
    """

    def __init__(
        self, machine, monitors, fail_fast: bool = False, probe=None
    ):
        self.machine = machine
        self.monitors: List[Monitor] = monitors
        self.fail_fast = fail_fast
        self.violations: List[Violation] = []
        self.races: List[RaceRecord] = []
        self.oracle_summary: Dict = {}
        self.probe = probe if probe is not None else Probe(machine.sim)
        for monitor in self.monitors:
            monitor.attach(machine, self.probe, self)

    def report_violation(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self.fail_fast:
            raise InvariantViolation(violation)

    def report_race(self, race: RaceRecord) -> None:
        self.races.append(race)

    def report(self) -> CheckReport:
        return CheckReport(
            monitors=[m.name for m in self.monitors],
            events_observed=self.probe.events_observed,
            violations=list(self.violations),
            races=list(self.races),
            notes={m.name: m.stats() for m in self.monitors if m.stats()},
            oracle=dict(self.oracle_summary),
        )

    def finalize(self, raise_on_violation: bool = True) -> CheckReport:
        """Run end-of-run checks and build the report.  With
        ``raise_on_violation`` (default), any violation raises a
        structured :class:`InvariantViolation` carrying the report."""
        for monitor in self.monitors:
            monitor.finalize()
        report = self.report()
        if raise_on_violation and report.violations:
            raise InvariantViolation(report.violations[0], report=report)
        return report


def attach_checkers(
    machine,
    monitors: Union[bool, None, Sequence] = True,
    fail_fast: bool = False,
) -> CheckerSuite:
    """Wire a checker suite into ``machine``.

    Creates the probe (or reuses the one an observability
    :class:`repro.obs.Collector` already wired in -- both listen on the
    same bus), points every probe-aware component at it (thread
    contexts pick it up from ``machine.probe`` when spawned), and
    subscribes the requested monitors.  Attach *before* spawning
    threads; one suite per machine."""
    if getattr(machine, "checker_suite", None) is not None:
        raise InvariantViolation(
            "a checker suite is already attached to this machine"
        )
    suite = CheckerSuite(
        machine,
        resolve_monitors(monitors),
        fail_fast,
        probe=getattr(machine, "probe", None),
    )
    machine.probe = suite.probe
    machine.checker_suite = suite
    for sl in machine.msa_slices:
        sl.probe = suite.probe
    machine.network.probe = suite.probe
    return suite


def run_selftest(print_out: bool = False) -> CheckReport:
    """End-to-end checker self-test with a deliberately broken lock.

    Builds a real machine, replaces the sync library's lock/unlock with
    no-ops (the classic broken lock: every "acquire" succeeds
    immediately), runs a contended counter workload, and returns the
    resulting report -- which must contain a mutual-exclusion violation
    naming the invariant, address, threads, and cycle window.  Used by
    ``python -m repro verify --selftest`` and CI to prove the checkers
    can actually catch protocol bugs.
    """
    from repro.harness.configs import build_machine

    machine = build_machine("msa-omu-2", n_cores=4)
    suite = attach_checkers(
        machine, ("mutex", "barrier", "condvar", "entries", "noc", "oracle")
    )
    machine.sync_library = _BrokenLockLibrary(machine.sync_library)
    lock_addr = machine.allocator.sync_var()
    data_addr = machine.allocator.line()

    def body(th):
        for _ in range(10):
            yield from th.lock(lock_addr)
            value = yield from th.load(data_addr)
            yield from th.compute(20)
            yield from th.store(data_addr, value + 1)
            yield from th.unlock(lock_addr)

    for index in range(4):
        machine.scheduler.spawn(body, name=f"selftest.{index}")
    machine.run(max_events=2_000_000)
    report = suite.finalize(raise_on_violation=False)
    if print_out:
        print(report.describe())
        caught = any(
            v.invariant == "mutual-exclusion" for v in report.violations
        )
        print(
            "selftest: broken lock "
            + ("CAUGHT (checkers work)" if caught else "MISSED (bug!)")
        )
    return report


class _BrokenLockLibrary:
    """Test-only mutant: lock/unlock do nothing (no mutual exclusion);
    every other operation is forwarded to the real library."""

    def __init__(self, inner):
        self._inner = inner

    def lock(self, th, addr):
        yield 1

    def unlock(self, th, addr):
        yield 1

    def __getattr__(self, name):
        return getattr(self._inner, name)
