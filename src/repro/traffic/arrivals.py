"""Seeded open-loop arrival processes.

Closed-loop kernels issue the next operation the moment the previous
one retires, so the machine is never overloaded by construction.  An
*open-loop* workload decouples demand from service: requests arrive by
a stochastic process whose intensity the machine does not control, and
queueing, shedding, and tail latency appear exactly when service
capacity is exceeded.

Every process here is a deterministic function of ``(rng, rate_rpk,
knobs)``: the same :class:`~repro.sim.rng.DeterministicRng` stream
produces the same arrival sequence forever, which is what lets traffic
runs live in the content-addressed result cache and lets the golden
test pin latency histograms byte-for-byte.

Rates are expressed in **requests per kilocycle** (``rate_rpk``): a
rate of 4.0 means one arrival every 250 simulated cycles on average.
Gaps are integer cycles, at least 1 (two requests never share a cycle;
bursts show up as runs of gap-1 arrivals instead).

========== ==========================================================
name       process
========== ==========================================================
poisson    homogeneous Poisson: i.i.d. exponential gaps
bursty     two-state MMPP: quiet/burst phases with geometric dwell
           times; the long-run rate still equals ``rate_rpk``
diurnal    nonhomogeneous Poisson with a sinusoidal intensity
           (peak/trough "day cycle"), sampled exactly by thinning
pareto     renewal process with heavy-tailed Pareto gaps (alpha > 2
           by default: finite variance, but far burstier than
           exponential)
========== ==========================================================
"""

from __future__ import annotations

import math
from typing import Iterator, List

from repro.common.errors import ConfigError
from repro.sim.rng import DeterministicRng


class ArrivalProcess:
    """Base: an endless deterministic stream of integer cycle gaps."""

    name = "abstract"

    def __init__(self, rng: DeterministicRng, rate_rpk: float):
        if rate_rpk <= 0:
            raise ConfigError(f"rate_rpk must be > 0, got {rate_rpk}")
        self.rng = rng
        self.rate_rpk = rate_rpk
        self.mean_gap = 1000.0 / rate_rpk

    def _next_gap(self) -> float:
        raise NotImplementedError

    def gaps(self) -> Iterator[int]:
        """Endless integer gaps (>= 1 cycle each)."""
        while True:
            yield max(1, int(round(self._next_gap())))

    def sequence(self, horizon: int) -> List[int]:
        """Absolute arrival cycles in ``[1, horizon]``.

        Purely a function of the rng stream: calling this twice on two
        identically-seeded processes yields identical lists.
        """
        times: List[int] = []
        now = 0
        for gap in self.gaps():
            now += gap
            if now > horizon:
                break
            times.append(now)
        return times


class Poisson(ArrivalProcess):
    """Memoryless arrivals: i.i.d. exponential gaps."""

    name = "poisson"

    def _next_gap(self) -> float:
        return self.rng.expovariate(self.mean_gap)


class Mmpp(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    A quiet state at ``quiet_factor * rate`` alternates with a burst
    state whose rate is chosen so the *long-run* average equals the
    nominal ``rate_rpk`` exactly (dwell-time weighted), so load sweeps
    across processes compare like for like.
    """

    name = "bursty"

    def __init__(
        self,
        rng: DeterministicRng,
        rate_rpk: float,
        quiet_factor: float = 0.4,
        quiet_dwell: int = 3000,
        burst_dwell: int = 1000,
    ):
        super().__init__(rng, rate_rpk)
        if not 0 < quiet_factor < 1:
            raise ConfigError("quiet_factor must be in (0, 1)")
        total = quiet_dwell + burst_dwell
        self.quiet_rate = rate_rpk * quiet_factor
        # Solve rate*(T_q+T_b) = quiet_rate*T_q + burst_rate*T_b.
        self.burst_rate = (
            rate_rpk * total - self.quiet_rate * quiet_dwell
        ) / burst_dwell
        self.quiet_dwell = quiet_dwell
        self.burst_dwell = burst_dwell
        self._bursting = False
        self._dwell_left = float(quiet_dwell)

    def _next_gap(self) -> float:
        gap = 0.0
        while True:
            rate = self.burst_rate if self._bursting else self.quiet_rate
            candidate = self.rng.expovariate(1000.0 / rate)
            if candidate <= self._dwell_left:
                self._dwell_left -= candidate
                return gap + candidate
            # Phase flips before the candidate arrival: consume the
            # remaining dwell and redraw in the new phase (memoryless,
            # so discarding the candidate is exact).
            gap += self._dwell_left
            self._bursting = not self._bursting
            self._dwell_left = float(
                self.burst_dwell if self._bursting else self.quiet_dwell
            )


class Diurnal(ArrivalProcess):
    """Sinusoidal intensity ("day" cycle), sampled by Lewis thinning.

    Candidates are drawn at the peak rate and accepted with probability
    ``lambda(t) / lambda_max``, which is an *exact* nonhomogeneous
    Poisson sampler: the long-run rate equals ``rate_rpk`` and the
    instantaneous rate swings between ``rate*(1-amplitude)`` and
    ``rate*(1+amplitude)``.
    """

    name = "diurnal"

    def __init__(
        self,
        rng: DeterministicRng,
        rate_rpk: float,
        period: int = 20_000,
        amplitude: float = 0.6,
    ):
        super().__init__(rng, rate_rpk)
        if not 0 < amplitude < 1:
            raise ConfigError("amplitude must be in (0, 1)")
        self.period = period
        self.amplitude = amplitude
        self._peak = rate_rpk * (1 + amplitude)
        self._t = 0.0

    def _rate_at(self, t: float) -> float:
        phase = 2 * math.pi * (t / self.period)
        return self.rate_rpk * (1 + self.amplitude * math.sin(phase))

    def _next_gap(self) -> float:
        start = self._t
        while True:
            self._t += self.rng.expovariate(1000.0 / self._peak)
            if self.rng.random() <= self._rate_at(self._t) / self._peak:
                return self._t - start


class Pareto(ArrivalProcess):
    """Heavy-tailed renewal gaps: Pareto(alpha) scaled to the target
    mean, so the long-run rate is still ``rate_rpk`` while occasional
    very long gaps separate dense request clusters."""

    name = "pareto"

    def __init__(
        self, rng: DeterministicRng, rate_rpk: float, alpha: float = 2.5
    ):
        super().__init__(rng, rate_rpk)
        if alpha <= 1:
            raise ConfigError("alpha must be > 1 (finite-mean Pareto)")
        self.alpha = alpha
        self._xm = self.mean_gap * (alpha - 1) / alpha

    def _next_gap(self) -> float:
        u = self.rng.random()
        # Inverse CDF; clamp u away from 1.0 to bound the tail draw.
        return self._xm * (1.0 - min(u, 1.0 - 1e-12)) ** (-1.0 / self.alpha)


#: name -> process class (the traffic scenario registry builds on this).
ARRIVALS = {
    "poisson": Poisson,
    "bursty": Mmpp,
    "diurnal": Diurnal,
    "pareto": Pareto,
}


def make_arrivals(
    name: str, rng: DeterministicRng, rate_rpk: float, **knobs
) -> ArrivalProcess:
    """Build a named arrival process on a deterministic rng stream."""
    cls = ARRIVALS.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown arrival process {name!r}; options: {sorted(ARRIVALS)}"
        )
    return cls(rng, rate_rpk, **knobs)
