"""Request model and work-queue runtime for open-loop traffic.

A *request* is a small synchronization walk over shared server state:
striped locks guarding a table, a global statistics counter, and a
condvar-guarded connection pool.  Three shapes cover the mix real
request-serving code exhibits:

=========== =========================================================
shape       dependency walk
=========== =========================================================
read        lock one table stripe, read its line, unlock, compute
            (read-mostly: short critical section, most time outside)
write       lock a stripe, read-modify-write under it with compute
            *inside* the critical section, unlock, bump the global
            stats counter with an atomic fetch-add (write-heavy: the
            hot-lock + hot-counter pattern)
fanout      read several stripes in sequence, then acquire a slot
            from a bounded condvar pool, compute while holding it,
            release and signal (fan-out/join against a finite backend)
=========== =========================================================

Every stochastic choice a request will make (stripe indices, compute
costs) is drawn *at schedule-build time* from the workload rng and
frozen into the :class:`Request`, so the memory/sync trace is a pure
function of seed + config no matter how the scheduler interleaves
workers.

The :class:`TrafficRuntime` is the work-queue layer: the dispatcher
admits requests into a bounded queue (shedding when full), workers
block on a not-empty condvar, and requests that waited past their
deadline are counted as timeouts and dropped without service.  Queue
count and pool slots live in *simulated* memory and are manipulated
under simulated locks -- the runtime itself is sync traffic, which is
exactly the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Tuple

from repro.workloads.base import WorkloadEnv

#: Shape vocabulary, in the order mix weights are specified.
SHAPES = ("read", "write", "fanout")

#: Request outcomes (probe aux / stats keys).
OK, TIMEOUT, SHED = "ok", "timeout", "shed"


@dataclass(frozen=True)
class Request:
    """One admitted unit of work, fully determined before the run."""

    rid: int
    arrival: int
    """Scheduled arrival cycle (open-loop: fixed by the arrival
    process, independent of how busy the machine is)."""

    shape: str
    stripes: Tuple[int, ...]
    """Table-stripe indices this request touches, pre-drawn."""

    compute: Tuple[int, ...]
    """Per-stage compute costs in cycles, pre-drawn."""


class TrafficStats:
    """Python-side accounting (no simulated traffic).

    Latencies are *sojourn* times: completion cycle minus scheduled
    arrival cycle, so queueing delay under overload is included.
    """

    def __init__(self):
        self.latencies: List[int] = []
        self.done = 0
        self.shed = 0
        self.timeout = 0
        self.by_shape = {s: 0 for s in SHAPES}

    def finish(self, req: Request, now: int) -> None:
        self.latencies.append(now - req.arrival)
        self.done += 1
        self.by_shape[req.shape] += 1


class ServerState:
    """Shared application state every request walks."""

    def __init__(self, env: WorkloadEnv, n_stripes: int, pool_slots: int):
        alloc = env.allocator
        self.stripe_locks = [alloc.sync_var() for _ in range(n_stripes)]
        self.stripe_data = [alloc.line() for _ in range(n_stripes)]
        self.stats_addr = alloc.line()
        self.pool_lock = alloc.sync_var()
        self.pool_cv = alloc.sync_var()
        self.pool_addr = alloc.line()
        env.machine.memory.poke(self.pool_addr, pool_slots)
        self.n_stripes = n_stripes


def service(th, state: ServerState, req: Request) -> Generator:
    """Execute one request's dependency walk on the calling worker."""
    if req.shape == "read":
        stripe = req.stripes[0]
        yield from th.lock(state.stripe_locks[stripe])
        yield from th.load(state.stripe_data[stripe])
        yield from th.unlock(state.stripe_locks[stripe])
        yield from th.compute(req.compute[0])
    elif req.shape == "write":
        stripe = req.stripes[0]
        yield from th.lock(state.stripe_locks[stripe])
        value = yield from th.load(state.stripe_data[stripe])
        yield from th.compute(req.compute[0])
        yield from th.store(state.stripe_data[stripe], value + 1)
        yield from th.unlock(state.stripe_locks[stripe])
        yield from th.fetch_add(state.stats_addr, 1)
    else:  # fanout
        for stage, stripe in enumerate(req.stripes):
            yield from th.lock(state.stripe_locks[stripe])
            yield from th.load(state.stripe_data[stripe])
            yield from th.unlock(state.stripe_locks[stripe])
            yield from th.compute(req.compute[stage])
        # Bounded backend pool: classic condvar resource acquisition.
        yield from th.lock(state.pool_lock)
        while True:
            slots = yield from th.load(state.pool_addr)
            if slots > 0:
                break
            yield from th.cond_wait(state.pool_cv, state.pool_lock)
        yield from th.store(state.pool_addr, slots - 1)
        yield from th.unlock(state.pool_lock)

        yield from th.compute(req.compute[-1])

        yield from th.lock(state.pool_lock)
        slots = yield from th.load(state.pool_addr)
        yield from th.store(state.pool_addr, slots + 1)
        yield from th.cond_signal(state.pool_cv)
        yield from th.unlock(state.pool_lock)
    return None


class TrafficRuntime:
    """Bounded admission queue between the dispatcher and workers.

    The queue *count* (and closed flag) live in simulated memory under
    a simulated lock; the request objects ride alongside in a
    Python-side list (same discipline as the kernels'
    ``SharedCounterQueue``: synchronization is simulated, payloads are
    bookkeeping).
    """

    def __init__(self, env: WorkloadEnv, capacity: int):
        alloc = env.allocator
        self.capacity = capacity
        self.lock = alloc.sync_var()
        self.not_empty = alloc.sync_var()
        self.count_addr = alloc.line()
        self.closed_addr = alloc.line()
        self.pending: List[Request] = []

    def should_shed(self, req: Request, now: int, shed_lag: int) -> bool:
        """Load-balancer admission check, *before* touching the lock.

        Under overload the dispatcher itself contends for the queue
        lock and falls behind real time, so the excess demand piles up
        as *admission lag* -- requests whose scheduled arrival is far
        in the past by the time the dispatcher reaches them.  A real
        load balancer drops such stale requests from its accept queue
        without a round trip into the fleet; same here: a shed is
        decided from the dispatcher's own clock and costs no simulated
        sync traffic, which is what lets it catch back up.
        """
        return now - req.arrival > shed_lag

    def offer(self, th, req: Request) -> Generator:
        """Dispatcher side: admit or shed.  Returns True if admitted.

        Open-loop semantics: the dispatcher never blocks on a full
        queue -- the locked capacity check is the hard backstop behind
        :meth:`should_shed`.
        """
        yield from th.lock(self.lock)
        n = yield from th.load(self.count_addr)
        admitted = n < self.capacity
        if admitted:
            self.pending.append(req)
            yield from th.store(self.count_addr, n + 1)
            yield from th.cond_signal(self.not_empty)
        yield from th.unlock(self.lock)
        return admitted

    def take(self, th) -> Generator:
        """Worker side: block for a request; None on closed + drained."""
        yield from th.lock(self.lock)
        while True:
            n = yield from th.load(self.count_addr)
            if n > 0:
                break
            closed = yield from th.load(self.closed_addr)
            if closed:
                yield from th.unlock(self.lock)
                return None
            yield from th.cond_wait(self.not_empty, self.lock)
        req = self.pending.pop(0)
        yield from th.store(self.count_addr, n - 1)
        yield from th.unlock(self.lock)
        return req

    def close(self, th) -> Generator:
        yield from th.lock(self.lock)
        yield from th.store(self.closed_addr, 1)
        yield from th.cond_broadcast(self.not_empty)
        yield from th.unlock(self.lock)
        return None
