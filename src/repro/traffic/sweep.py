"""Load sweeps: offered load vs tail latency across sync backends.

The open-loop analogue of the paper's speedup sweeps.  Each point is an
ordinary registry-named :class:`JobSpec` (so the result cache, parallel
engine, and ``repro serve`` dedup/resume all apply) whose ``scale`` is
the offered-load multiplier.  The output is the classic
capacity-planning curve: p99 sojourn latency against offered load, one
line per machine configuration -- flat until saturation, then the knee.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import ConfigError, SimulationError
from repro.harness.jobs import Engine, JobSpec
from repro.harness.sweep import SweepPoint, add_request_metrics
from repro.traffic.workload import TRAFFIC

#: Default backends compared in a load sweep (paper configs + ideal).
DEFAULT_CONFIGS = ("msa0", "msa-omu-2", "pthread", "ideal")

#: Default offered-load multipliers: below, near, and past saturation.
DEFAULT_LOADS = (0.5, 1.0, 2.0, 4.0)


def load_sweep(
    scenario: str = "traffic.poisson",
    configs: Sequence[str] = DEFAULT_CONFIGS,
    loads: Sequence[float] = DEFAULT_LOADS,
    cores: int = 16,
    seed: int = 2015,
    checkers: Sequence[str] = (),
    fault_plan=None,
    workers: Optional[int] = None,
    cache_dir=None,
    manifest=None,
    progress: bool = False,
    engine: Optional[Engine] = None,
) -> List[SweepPoint]:
    """Sweep offered load for one scenario across machine configs.

    Returns :class:`SweepPoint` rows (``scale`` = load multiplier) with
    request-latency SLO extras already annotated, ready for
    :func:`repro.harness.sweep.to_csv` or the HTML report.

    ``fault_plan`` (e.g. :func:`repro.faults.drop_plan`) runs the whole
    sweep under fault injection -- the overload-plus-failure experiment;
    fault plans are process-local, so such sweeps bypass remote serve.
    """
    if scenario not in TRAFFIC:
        raise ConfigError(
            f"unknown traffic scenario {scenario!r}; "
            f"options: {sorted(TRAFFIC)}"
        )
    specs = [
        JobSpec(
            config=config,
            workload=scenario,
            cores=cores,
            scale=load,
            seed=seed,
            checkers=tuple(checkers),
            fault_plan=fault_plan,
        )
        for load in loads
        for config in configs
    ]
    if engine is None:
        engine = Engine(
            workers=workers,
            cache_dir=cache_dir,
            manifest=manifest,
            progress=progress,
        )
    points: List[SweepPoint] = []
    failures: List[str] = []
    for job in engine.run(specs):
        if not job.ok:
            failures.append(f"{job.spec.describe()}: {job.error}")
            continue
        points.append(
            SweepPoint(
                config=job.spec.config,
                workload=job.spec.workload,
                n_cores=job.spec.cores,
                scale=job.spec.scale,
                result=job.result,
            )
        )
    if failures:
        raise SimulationError(
            "load-sweep points failed after retries: " + "; ".join(failures)
        )
    add_request_metrics(points)
    return points
