"""The traffic scenario as an ordinary :class:`Workload`.

Thread 0 is the **dispatcher**: it replays the precomputed open-loop
arrival schedule in simulated time (idling through inter-arrival gaps
with ``compute``) and offers each request to the bounded admission
queue, shedding when the fleet is saturated.  Threads 1..N-1 are
**workers**: they block on the queue's condvar, drop requests whose
queueing delay already blew the deadline, and run the request's
dependency walk (:func:`repro.traffic.model.service`).

Because every scenario is a plain ``Workload`` produced by a registry
factory with the standard ``(n_cores, scale=...)`` signature, traffic
runs flow through the whole harness unchanged: content-hashed
``JobSpec``s, the result cache, parallel sweeps, ``repro serve``.
``scale`` is reinterpreted as the **offered-load multiplier** -- a load
sweep is just a sweep over ``scale`` values.

SLO metrics land in ``RunResult.workload_metrics`` under ``traffic.*``
(the obs registry re-exports them as ``workload.traffic.*`` gauges),
and ``traffic.latency_fp`` is a 48-bit digest of the completion-ordered
latency stream -- one float that pins the entire latency histogram
byte-for-byte in the golden determinism test.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import ConfigError
from repro.common.stats import Histogram
from repro.traffic.arrivals import make_arrivals
from repro.traffic.model import (
    OK,
    SHAPES,
    TIMEOUT,
    Request,
    ServerState,
    TrafficRuntime,
    TrafficStats,
    service,
)
from repro.workloads.base import Workload, WorkloadEnv

#: SLO quantiles reported for sojourn latency.
SLO_QUANTILES = (0.5, 0.99, 0.999)


@dataclass(frozen=True)
class TrafficConfig:
    """Everything that shapes a traffic scenario (pre-machine)."""

    arrival: str = "poisson"
    rate_rpk: float = 4.0
    """Offered load at scale 1.0, in requests per kilocycle."""

    horizon: int = 60_000
    """Arrival window in cycles; the run drains the queue after it."""

    queue_depth: int = 4
    """Admission-queue capacity per worker."""

    deadline: int = 6_000
    """Max queueing delay in cycles before a request is dropped as a
    timeout at dequeue (it consumed queue space but no service)."""

    shed_lag: int = 3_000
    """Max admission staleness: the dispatcher sheds a request outright
    (no sync traffic) once it is running this far behind the request's
    scheduled arrival -- the load balancer's accept-queue timeout."""

    mix: Tuple[float, float, float] = (0.6, 0.3, 0.1)
    """Shape weights in :data:`~repro.traffic.model.SHAPES` order
    (read, write, fanout)."""

    n_stripes: int = 8
    pool_slots: int = 3
    fanout_width: int = 3
    arrival_knobs: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if len(self.mix) != len(SHAPES):
            raise ConfigError(
                f"mix needs {len(SHAPES)} weights (one per shape), "
                f"got {len(self.mix)}"
            )
        if min(self.mix) < 0 or sum(self.mix) <= 0:
            raise ConfigError("mix weights must be >= 0 and sum > 0")


def build_schedule(
    cfg: TrafficConfig, rng, scale: float = 1.0
) -> List[Request]:
    """Freeze the full request schedule from the rng.

    Arrival times come from one derived stream and per-request draws
    from another, so the arrival *sequence* for a given process/rate is
    independent of shape-mix knobs (and directly property-testable).
    """
    process = make_arrivals(
        cfg.arrival,
        rng.derive("arrivals"),
        cfg.rate_rpk * scale,
        **cfg.arrival_knobs,
    )
    detail = rng.derive("requests")
    total = sum(cfg.mix)
    bounds = []
    acc = 0.0
    for w in cfg.mix:
        acc += w / total
        bounds.append(acc)

    schedule: List[Request] = []
    for rid, t in enumerate(process.sequence(cfg.horizon)):
        u = detail.random()
        shape = SHAPES[-1]
        for i, b in enumerate(bounds):
            if u <= b:
                shape = SHAPES[i]
                break
        if shape == "read":
            stripes = (detail.randint(0, cfg.n_stripes - 1),)
            compute = (detail.randint(100, 300),)
        elif shape == "write":
            stripes = (detail.randint(0, cfg.n_stripes - 1),)
            compute = (detail.randint(60, 180),)
        else:  # fanout: several stripe reads, then a pooled stage
            stripes = tuple(
                detail.randint(0, cfg.n_stripes - 1)
                for _ in range(cfg.fanout_width)
            )
            compute = tuple(
                detail.randint(40, 120) for _ in range(cfg.fanout_width)
            ) + (detail.randint(200, 500),)
        schedule.append(Request(rid, t, shape, stripes, compute))
    return schedule


def _latency_fingerprint(pairs: List[Tuple[int, int]]) -> float:
    """48-bit digest of the completion-ordered (rid, latency) stream.

    2**48 < 2**53, so the digest survives the float round-trip through
    ``workload_metrics`` / JSON exactly.
    """
    blob = repr(pairs).encode()
    return float(int.from_bytes(hashlib.sha256(blob).digest()[:6], "big"))


def make_traffic(
    n_cores: int, scale: float = 1.0, cfg: TrafficConfig = None
) -> Workload:
    """Build a traffic scenario workload (dispatcher + worker fleet)."""
    if cfg is None:
        cfg = TrafficConfig()
    if n_cores < 2:
        raise ConfigError("traffic needs >= 2 cores (dispatcher + worker)")
    n_threads = n_cores
    n_workers = n_threads - 1

    def setup(env: WorkloadEnv) -> None:
        state = ServerState(env, cfg.n_stripes, cfg.pool_slots)
        runtime = TrafficRuntime(env, capacity=n_workers * cfg.queue_depth)
        env.shared["state"] = state
        env.shared["runtime"] = runtime
        env.shared["schedule"] = build_schedule(
            cfg, env.rng.derive(f"traffic.{cfg.arrival}"), scale
        )
        env.shared["stats"] = TrafficStats()
        env.shared["start_barrier"] = env.allocator.sync_var()
        env.shared["completions"] = []

    def dispatcher(env: WorkloadEnv):
        runtime: TrafficRuntime = env.shared["runtime"]
        schedule: List[Request] = env.shared["schedule"]
        stats: TrafficStats = env.shared["stats"]
        barrier = env.shared["start_barrier"]

        def body(th):
            probe = getattr(th.machine, "probe", None)
            yield from th.barrier(barrier, n_threads)
            for req in schedule:
                gap = req.arrival - th.sim.now
                if gap > 0:
                    yield from th.compute(gap)
                # Open loop: if admission overhead pushed us past the
                # next arrival, the request is simply offered late --
                # its sojourn clock started at req.arrival regardless.
                if runtime.should_shed(req, th.sim.now, cfg.shed_lag):
                    admitted = False
                else:
                    admitted = yield from runtime.offer(th, req)
                if not admitted:
                    stats.shed += 1
                    if probe is not None:
                        probe.emit(
                            "req_shed",
                            tid=th.tid,
                            addr=req.rid,
                            aux=(req.arrival, req.shape),
                        )
            yield from runtime.close(th)

        return body

    def worker(env: WorkloadEnv):
        runtime: TrafficRuntime = env.shared["runtime"]
        state: ServerState = env.shared["state"]
        stats: TrafficStats = env.shared["stats"]
        barrier = env.shared["start_barrier"]
        completions = env.shared["completions"]

        def body(th):
            probe = getattr(th.machine, "probe", None)
            yield from th.barrier(barrier, n_threads)
            while True:
                req = yield from runtime.take(th)
                if req is None:
                    return
                if th.sim.now - req.arrival > cfg.deadline:
                    stats.timeout += 1
                    outcome = TIMEOUT
                else:
                    yield from service(th, state, req)
                    now = th.sim.now
                    stats.finish(req, now)
                    completions.append((req.rid, now - req.arrival))
                    outcome = OK
                if probe is not None:
                    probe.emit(
                        "req_done",
                        tid=th.tid,
                        addr=req.rid,
                        aux=(req.arrival, req.shape, outcome),
                    )

        return body

    def make_threads(env: WorkloadEnv):
        return [dispatcher(env)] + [worker(env) for _ in range(n_workers)]

    def validate(env: WorkloadEnv) -> None:
        stats: TrafficStats = env.shared["stats"]
        schedule: List[Request] = env.shared["schedule"]
        offered = len(schedule)
        env.expect(
            stats.done + stats.shed + stats.timeout == offered,
            f"request conservation: {stats.done} done + {stats.shed} shed "
            f"+ {stats.timeout} timeout != {offered} offered",
        )
        hist = Histogram("traffic.sojourn")
        for latency in stats.latencies:
            hist.add(float(latency))
        p50, p99, p999 = hist.quantiles(SLO_QUANTILES)
        now = max(1, env.machine.sim.now)
        env.record("traffic.offered", float(offered))
        env.record("traffic.done", float(stats.done))
        env.record("traffic.shed", float(stats.shed))
        env.record("traffic.timeout", float(stats.timeout))
        env.record("traffic.p50", p50)
        env.record("traffic.p99", p99)
        env.record("traffic.p999", p999)
        env.record("traffic.mean", hist.mean)
        env.record("traffic.offered_rpk", offered * 1000.0 / cfg.horizon)
        env.record("traffic.goodput_rpk", stats.done * 1000.0 / now)
        for shape in SHAPES:
            env.record(f"traffic.done.{shape}", float(stats.by_shape[shape]))
        env.record(
            "traffic.latency_fp",
            _latency_fingerprint(env.shared["completions"]),
        )

    return Workload(
        name=f"traffic.{cfg.arrival}",
        n_threads=n_threads,
        make_threads=make_threads,
        setup_fn=setup,
        validate_fn=validate,
        tags=("traffic", "open-loop", cfg.arrival),
    )


def _scenario(arrival: str, **knobs):
    def make(n_cores: int, scale: float = 1.0) -> Workload:
        return make_traffic(
            n_cores, scale, cfg=TrafficConfig(arrival=arrival, **knobs)
        )

    make.__name__ = f"make_traffic_{arrival}"
    make.__doc__ = (
        f"Open-loop traffic with {arrival} arrivals; ``scale`` multiplies "
        f"the offered load."
    )
    return make


#: Scenario registry: one entry per arrival process, resolvable by
#: :func:`repro.harness.jobs.resolve_factory` like any kernel.
TRAFFIC = {
    "traffic.poisson": _scenario("poisson"),
    "traffic.bursty": _scenario("bursty"),
    "traffic.diurnal": _scenario("diurnal"),
    "traffic.pareto": _scenario("pareto"),
}
