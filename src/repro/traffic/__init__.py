"""repro.traffic: open-loop production-traffic workloads with SLOs.

Closed-loop kernels measure *speedup*; this subsystem measures what a
server operator measures: tail latency and goodput under an offered
load the machine does not control.  Seeded arrival processes
(:mod:`~repro.traffic.arrivals`) generate a deterministic request
stream; each request walks a lock/condvar dependency graph admitted
through a bounded work queue with load shedding
(:mod:`~repro.traffic.model`); scenarios are ordinary registry
workloads (:mod:`~repro.traffic.workload`) so the harness caches and
parallelizes them; :func:`~repro.traffic.sweep.load_sweep` produces
load-vs-p99 curves across sync backends.

See ``docs/TRAFFIC.md`` for the full model and CLI examples.
"""

from repro.traffic.arrivals import ARRIVALS, make_arrivals
from repro.traffic.model import Request, ServerState, TrafficRuntime
from repro.traffic.sweep import DEFAULT_CONFIGS, DEFAULT_LOADS, load_sweep
from repro.traffic.workload import (
    SLO_QUANTILES,
    TRAFFIC,
    TrafficConfig,
    build_schedule,
    make_traffic,
)

__all__ = [
    "ARRIVALS",
    "DEFAULT_CONFIGS",
    "DEFAULT_LOADS",
    "Request",
    "SLO_QUANTILES",
    "ServerState",
    "TRAFFIC",
    "TrafficConfig",
    "TrafficRuntime",
    "build_schedule",
    "load_sweep",
    "make_arrivals",
    "make_traffic",
]
