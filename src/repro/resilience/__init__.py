"""Crash-safety and self-healing for the experiment harness.

MiSAR's thesis is that a minimal accelerator plus explicit *overflow
management* beats both extremes; this package applies the same stance
to the harness that reproduces it.  The sweep engine is treated as a
long-running shared service whose resources (workers, disk, wall clock)
overflow and fail, and every failure mode gets an explicit manager:

* :mod:`~repro.resilience.store` -- durable SQLite job ledger: each
  grid point is a row claimed through expiring leases, so any number of
  workers (or hosts sharing a cache directory) can pull work safely and
  a SIGKILLed worker's points are reclaimed automatically.
* :mod:`~repro.resilience.supervise` -- worker supervision: heartbeats,
  deterministic seeded exponential backoff, poison-job quarantine with
  captured tracebacks, bounded worker restarts, and the chaos hooks.
* :mod:`~repro.resilience.watchdog` -- per-run escalation ladder
  (warn -> snapshot -> abort) over wall-clock and event budgets, plus
  the :func:`~repro.resilience.watchdog.triage_dump` shared with
  deadlock diagnostics.
* :mod:`~repro.resilience.fsck` -- storage self-healing for cache
  entries, sweep manifests, and the job store (corrupt = miss, never
  crash; ``python -m repro fsck``).
* :mod:`~repro.resilience.chaos` -- the harness-level chaos gauntlet
  (``python -m repro chaos-harness``): kill workers, corrupt entries,
  fake disk-full, then assert byte-identical convergence.

See docs/HARNESS.md ("Crash safety and self-healing") for the operator
view.
"""

from repro.resilience.chaos import (
    ChaosHarnessResult,
    chaos_harness,
    default_chaos_specs,
)
from repro.resilience.fsck import FsckIssue, FsckReport, fsck
from repro.resilience.store import (
    Claim,
    JobRow,
    JobStore,
    default_store_path,
)
from repro.resilience.supervise import (
    ChaosPlan,
    WorkerLoop,
    WorkerPool,
    backoff_delay,
)
from repro.resilience.watchdog import (
    Watchdog,
    WatchdogWarning,
    format_triage,
    triage_dump,
)


def resilience_registry(counters, registry=None):
    """Export harness resilience counters (:meth:`JobStore.counters`,
    :meth:`FsckReport.counters`, :meth:`repro.harness.jobs.Engine.
    resilience_counters`) into a :class:`repro.obs.MetricsRegistry`
    under the ``harness.`` prefix."""
    from repro.obs.registry import MetricsRegistry

    reg = registry if registry is not None else MetricsRegistry()
    reg.add_counters(dict(counters), prefix="harness.")
    return reg


__all__ = [
    "ChaosHarnessResult",
    "ChaosPlan",
    "Claim",
    "FsckIssue",
    "FsckReport",
    "JobRow",
    "JobStore",
    "Watchdog",
    "WatchdogWarning",
    "WorkerLoop",
    "WorkerPool",
    "backoff_delay",
    "chaos_harness",
    "default_chaos_specs",
    "default_store_path",
    "format_triage",
    "fsck",
    "resilience_registry",
    "triage_dump",
]
