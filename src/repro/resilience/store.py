"""Durable SQLite-backed job store: experiments as rows, claimed by lease.

The parallel engine (:mod:`repro.harness.jobs`) used to hand grid points
straight to a process pool and hope every worker came back.  This module
is the crash-safe replacement for that hope: each :class:`JobSpec
<repro.harness.jobs.JobSpec>` becomes one row in a small SQLite database
living next to the result cache, and workers *claim* rows through
expiring leases:

* **claim** -- an atomic ``BEGIN IMMEDIATE`` transaction moves one
  eligible row to ``leased`` with this worker's owner id and a lease
  deadline.  Any number of workers -- in one process pool, or on
  different hosts sharing a cache directory -- can pull safely.
* **heartbeat** -- a live worker extends its lease while it simulates;
  a worker that is SIGKILLed simply stops heartbeating and its lease
  expires, making the row claimable again (counted as a reclaim).
* **failure** -- a failed attempt returns the row to ``pending`` with a
  ``not_before`` backoff deadline; after ``quarantine_after`` attempts
  the row is quarantined with a captured traceback artifact so one
  poison point cannot starve the sweep.

Statuses: ``pending`` -> ``leased`` -> ``done`` | ``quarantined``
(quarantined rows are reset to ``pending`` when a new engine run
explicitly re-enqueues them).  All transitions bump the store's
lifetime counters (:meth:`JobStore.counters`), which the harness
exports through :class:`repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import os
import socket
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

#: Bump on incompatible jobs-table changes; a drifted store is rebuilt
#: (jobs are re-runnable by construction -- results live in the cache).
STORE_SCHEMA_VERSION = 1

#: Terminal row statuses (nothing left to execute for this row).
TERMINAL = ("done", "quarantined")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    key           TEXT PRIMARY KEY,
    describe      TEXT NOT NULL DEFAULT '',
    spec_blob     BLOB,
    status        TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    lease_owner   TEXT,
    lease_expires REAL,
    not_before    REAL NOT NULL DEFAULT 0,
    host          TEXT,
    pid           INTEGER,
    error         TEXT,
    created       REAL NOT NULL,
    updated       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL DEFAULT 0
);
"""

#: Counter names the store maintains (all start at zero).
COUNTER_NAMES = (
    "enqueued",
    "leases_granted",
    "leases_expired",
    "leases_released",
    "heartbeats",
    "retries",
    "done",
    "quarantined",
    "requeued",
    "stale_completions",
)


@dataclass
class JobRow:
    """One job row, as plain data (see the ``jobs`` table schema)."""

    key: str
    describe: str
    status: str
    attempts: int
    lease_owner: Optional[str]
    lease_expires: Optional[float]
    not_before: float
    host: Optional[str]
    pid: Optional[int]
    error: Optional[str]
    created: float
    updated: float

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL


@dataclass
class Claim:
    """A successfully leased job: execute it, then :meth:`JobStore.mark_done`
    or :meth:`JobStore.mark_failed` *with the same owner id*."""

    key: str
    describe: str
    spec_blob: Optional[bytes]
    attempt: int
    owner: str
    reclaimed: bool = False
    """True when this claim took over an expired lease (a previous
    worker died or hung mid-point)."""


class JobStore:
    """Durable job ledger over one SQLite file.

    ``lease_s`` is the lease duration granted per claim (heartbeats
    extend it); ``quarantine_after`` is the attempt count at which a
    failing job is quarantined instead of re-pended.  ``clock`` is
    injectable for tests (defaults to wall time -- leases are real-time
    contracts between processes, not simulated time).
    """

    def __init__(
        self,
        path,
        lease_s: float = 30.0,
        quarantine_after: int = 3,
        clock: Callable[[], float] = time.time,
    ):
        self.path = Path(path)
        self.lease_s = float(lease_s)
        self.quarantine_after = int(quarantine_after)
        self.clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = self._connect()

    def _connect(self) -> sqlite3.Connection:
        db = sqlite3.connect(str(self.path), timeout=30.0)
        db.isolation_level = None  # explicit BEGIN/COMMIT
        db.execute("PRAGMA busy_timeout=30000")
        try:
            db.executescript(_SCHEMA)
            row = db.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()
            if row is None:
                db.execute(
                    "INSERT OR IGNORE INTO meta VALUES ('schema', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
            elif row[0] != str(STORE_SCHEMA_VERSION):
                raise sqlite3.DatabaseError(
                    f"job store schema {row[0]} != {STORE_SCHEMA_VERSION}"
                )
        except sqlite3.DatabaseError:
            # Torn or drifted store: rebuild.  Jobs are re-runnable by
            # construction (results live in the cache), so a corrupt
            # ledger is evicted, never fatal.
            db.close()
            self.path.unlink(missing_ok=True)
            db = sqlite3.connect(str(self.path), timeout=30.0)
            db.isolation_level = None
            db.execute("PRAGMA busy_timeout=30000")
            db.executescript(_SCHEMA)
            db.execute(
                "INSERT OR IGNORE INTO meta VALUES ('schema', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )
        return db

    def close(self) -> None:
        self._db.close()

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def enqueue(
        self,
        key: str,
        describe: str = "",
        spec_blob: Optional[bytes] = None,
        requeue_failed: bool = True,
    ) -> str:
        """Insert a job row if absent; returns the row's status after.

        ``requeue_failed`` resets an existing ``quarantined`` row back to
        ``pending`` (an engine run that *asks* for a quarantined point is
        an explicit request to try it again).  ``done`` and in-flight
        rows are left untouched.
        """
        now = self.clock()
        db = self._db
        db.execute("BEGIN IMMEDIATE")
        try:
            row = db.execute(
                "SELECT status FROM jobs WHERE key=?", (key,)
            ).fetchone()
            if row is None:
                db.execute(
                    "INSERT INTO jobs (key, describe, spec_blob, status,"
                    " created, updated) VALUES (?,?,?, 'pending', ?, ?)",
                    (key, describe, spec_blob, now, now),
                )
                self._bump("enqueued")
                status = "pending"
            else:
                status = row[0]
                if status == "quarantined" and requeue_failed:
                    # A fresh retry budget comes with the explicit
                    # re-enqueue; lifetime attempt history stays in the
                    # counters.
                    db.execute(
                        "UPDATE jobs SET status='pending', not_before=0,"
                        " attempts=0, error=NULL,"
                        " spec_blob=COALESCE(?, spec_blob),"
                        " updated=? WHERE key=?",
                        (spec_blob, now, key),
                    )
                    self._bump("requeued")
                    status = "pending"
                elif spec_blob is not None:
                    db.execute(
                        "UPDATE jobs SET spec_blob=?, updated=? WHERE key=?",
                        (spec_blob, now, key),
                    )
            db.execute("COMMIT")
        except BaseException:
            db.execute("ROLLBACK")
            raise
        return status

    def requeue(self, key: str) -> bool:
        """Force a terminal row (``done`` or ``quarantined``) back to
        ``pending`` with a fresh attempt budget.  The service uses this
        when a row says done but its cached result has been evicted
        (e.g. by ``fsck`` after corruption) -- the row's claim of
        completion is only as good as the bytes backing it."""
        now = self.clock()
        cur = self._db.execute(
            "UPDATE jobs SET status='pending', attempts=0, error=NULL,"
            " not_before=0, lease_owner=NULL, lease_expires=NULL,"
            " updated=? WHERE key=? AND status IN ('done', 'quarantined')",
            (now, key),
        )
        if cur.rowcount:
            self._bump("requeued", commit=True)
        return bool(cur.rowcount)

    # ------------------------------------------------------------------
    # Claiming
    # ------------------------------------------------------------------
    def claim(
        self,
        owner: str,
        keys: Optional[Iterable[str]] = None,
    ) -> Optional[Claim]:
        """Lease one eligible job: ``pending`` past its backoff deadline,
        or ``leased`` with an expired lease (the previous worker died).
        Returns ``None`` when nothing is claimable right now."""
        now = self.clock()
        keyset = None if keys is None else set(keys)
        db = self._db
        db.execute("BEGIN IMMEDIATE")
        try:
            rows = db.execute(
                "SELECT key, describe, spec_blob, attempts, status"
                " FROM jobs WHERE (status='pending' AND not_before<=?)"
                " OR (status='leased' AND lease_expires<=?)"
                " ORDER BY created, key",
                (now, now),
            ).fetchall()
            for key, describe, blob, attempts, status in rows:
                if keyset is not None and key not in keyset:
                    continue
                reclaimed = status == "leased"
                db.execute(
                    "UPDATE jobs SET status='leased', lease_owner=?,"
                    " lease_expires=?, attempts=?, host=?, pid=?, updated=?"
                    " WHERE key=?",
                    (
                        owner,
                        now + self.lease_s,
                        attempts + 1,
                        socket.gethostname(),
                        os.getpid(),
                        now,
                        key,
                    ),
                )
                self._bump("leases_granted")
                if reclaimed:
                    self._bump("leases_expired")
                db.execute("COMMIT")
                return Claim(
                    key=key,
                    describe=describe,
                    spec_blob=blob,
                    attempt=attempts + 1,
                    owner=owner,
                    reclaimed=reclaimed,
                )
            db.execute("COMMIT")
        except BaseException:
            db.execute("ROLLBACK")
            raise
        return None

    def claim_key(self, key: str, owner: str) -> Optional[Claim]:
        """Lease one specific job (serial execution path)."""
        return self.claim(owner, keys=(key,))

    def heartbeat(self, key: str, owner: str) -> bool:
        """Extend the lease on a job this owner holds; returns False if
        the lease was lost (expired and reclaimed by someone else)."""
        now = self.clock()
        cur = self._db.execute(
            "UPDATE jobs SET lease_expires=?, updated=? WHERE key=?"
            " AND status='leased' AND lease_owner=?",
            (now + self.lease_s, now, key, owner),
        )
        if cur.rowcount:
            self._bump("heartbeats", commit=True)
        return bool(cur.rowcount)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def mark_done(self, key: str, owner: Optional[str] = None) -> bool:
        """Record success.  With ``owner``, the transition is rejected
        (returns False) if this owner no longer holds the lease -- a
        hung worker whose job was reclaimed and finished elsewhere must
        not overwrite the fresher outcome."""
        now = self.clock()
        if owner is None:
            cur = self._db.execute(
                "UPDATE jobs SET status='done', error=NULL, lease_owner=NULL,"
                " lease_expires=NULL, updated=? WHERE key=?",
                (now, key),
            )
        else:
            cur = self._db.execute(
                "UPDATE jobs SET status='done', error=NULL, lease_owner=NULL,"
                " lease_expires=NULL, updated=? WHERE key=?"
                " AND status='leased' AND lease_owner=?",
                (now, key, owner),
            )
        if cur.rowcount:
            self._bump("done", commit=True)
        elif owner is not None:
            self._bump("stale_completions", commit=True)
        return bool(cur.rowcount)

    def mark_failed(
        self,
        key: str,
        owner: Optional[str],
        error: str,
        traceback_text: Optional[str] = None,
        backoff_s: float = 0.0,
    ) -> str:
        """Record one failed attempt.

        Returns the row's new status: ``pending`` (will be retried after
        ``backoff_s``) or ``quarantined`` (attempts reached
        ``quarantine_after``; the traceback artifact is written next to
        the store under ``quarantine/<key>.txt``).  Stale owners are
        rejected with status ``stale``.
        """
        now = self.clock()
        db = self._db
        db.execute("BEGIN IMMEDIATE")
        try:
            row = db.execute(
                "SELECT attempts, status, lease_owner FROM jobs WHERE key=?",
                (key,),
            ).fetchone()
            if row is None:
                db.execute("COMMIT")
                return "missing"
            attempts, status, lease_owner = row
            if owner is not None and (
                status != "leased" or lease_owner != owner
            ):
                self._bump("stale_completions")
                db.execute("COMMIT")
                return "stale"
            if attempts >= self.quarantine_after:
                db.execute(
                    "UPDATE jobs SET status='quarantined', error=?,"
                    " lease_owner=NULL, lease_expires=NULL, updated=?"
                    " WHERE key=?",
                    (error, now, key),
                )
                self._bump("quarantined")
                new_status = "quarantined"
            else:
                db.execute(
                    "UPDATE jobs SET status='pending', error=?,"
                    " lease_owner=NULL, lease_expires=NULL, not_before=?,"
                    " updated=? WHERE key=?",
                    (error, now + max(0.0, backoff_s), now, key),
                )
                self._bump("retries")
                new_status = "pending"
            db.execute("COMMIT")
        except BaseException:
            db.execute("ROLLBACK")
            raise
        if new_status == "quarantined" and traceback_text is not None:
            self._write_quarantine_artifact(key, error, traceback_text)
        return new_status

    def _write_quarantine_artifact(
        self, key: str, error: str, traceback_text: str
    ) -> None:
        path = self.quarantine_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            f"key: {key}\nerror: {error}\n\n{traceback_text}"
        )
        os.replace(tmp, path)

    def quarantine_path(self, key: str) -> Path:
        """Where the captured traceback of a quarantined job lives."""
        return self.path.parent / "quarantine" / f"{key}.txt"

    # ------------------------------------------------------------------
    # Supervision helpers
    # ------------------------------------------------------------------
    def release_owner(self, owner: str) -> int:
        """Expire every lease held by ``owner`` *now* (the supervisor
        observed its worker die; no need to wait out the lease)."""
        now = self.clock()
        cur = self._db.execute(
            "UPDATE jobs SET status='pending', lease_owner=NULL,"
            " lease_expires=NULL, updated=? WHERE status='leased'"
            " AND lease_owner=?",
            (now, owner),
        )
        if cur.rowcount:
            self._bump("leases_released", commit=True, n=cur.rowcount)
        return cur.rowcount

    def reclaim_expired(self) -> int:
        """Return expired leases to ``pending`` (normally claims do this
        lazily; fsck and supervisors may sweep eagerly)."""
        now = self.clock()
        cur = self._db.execute(
            "UPDATE jobs SET status='pending', lease_owner=NULL,"
            " lease_expires=NULL, updated=? WHERE status='leased'"
            " AND lease_expires<=?",
            (now, now),
        )
        if cur.rowcount:
            self._bump("leases_expired", commit=True, n=cur.rowcount)
        return cur.rowcount

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[JobRow]:
        row = self._db.execute(
            "SELECT key, describe, status, attempts, lease_owner,"
            " lease_expires, not_before, host, pid, error, created, updated"
            " FROM jobs WHERE key=?",
            (key,),
        ).fetchone()
        return JobRow(*row) if row else None

    def rows(self, keys: Optional[Sequence[str]] = None) -> List[JobRow]:
        out = [
            JobRow(*row)
            for row in self._db.execute(
                "SELECT key, describe, status, attempts, lease_owner,"
                " lease_expires, not_before, host, pid, error, created,"
                " updated FROM jobs ORDER BY created, key"
            )
        ]
        if keys is not None:
            keyset = set(keys)
            out = [r for r in out if r.key in keyset]
        return out

    def statuses(self, keys: Optional[Sequence[str]] = None) -> Dict[str, str]:
        return {row.key: row.status for row in self.rows(keys)}

    def open_jobs(self, keys: Optional[Sequence[str]] = None) -> int:
        """Jobs not yet terminal (pending or leased) among ``keys``."""
        return sum(1 for r in self.rows(keys) if not r.terminal)

    def counters(self) -> Dict[str, int]:
        """Lifetime transition counters plus current per-status totals."""
        out = {name: 0 for name in COUNTER_NAMES}
        for name, value in self._db.execute("SELECT name, value FROM counters"):
            out[name] = value
        for status, count in self._db.execute(
            "SELECT status, COUNT(*) FROM jobs GROUP BY status"
        ):
            out[f"jobs_{status}"] = count
        return out

    # ------------------------------------------------------------------
    def _bump(self, name: str, commit: bool = False, n: int = 1) -> None:
        self._db.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?)"
            " ON CONFLICT(name) DO UPDATE SET value=value+?",
            (name, n, n),
        )
        # Inside an explicit BEGIN IMMEDIATE the caller commits; bare
        # calls run in autocommit, nothing to do.
        _ = commit


def default_store_path(cache_dir) -> Path:
    """Where the job store lives for a given result-cache directory."""
    return Path(cache_dir) / "jobs.sqlite3"
