"""Storage self-healing: scan and repair the harness's on-disk state.

``python -m repro fsck`` (and :func:`fsck` programmatically) walks the
three durable artifacts a sweep leaves behind and classifies every
defect it finds:

* **result cache** entries -- torn JSON, checksum mismatches (a
  byte-flip anywhere in the entry), key/filename mismatches, stale
  cache versions, schema drift the result decoder rejects, and orphaned
  ``*.tmp`` files from interrupted atomic writes;
* **sweep manifest** -- a truncated trailing JSONL line (the classic
  kill-during-append artifact);
* **job store** -- SQLite corruption (``PRAGMA integrity_check``) and
  leases whose workers are long gone.

The repair policy mirrors the cache's read-path contract: *corrupt
means miss, never crash*.  Every evicted entry is re-runnable by
construction (specs are pure data), so deleting a bad file is always
safe -- the next engine run simply re-executes that point.
"""

from __future__ import annotations

import json
import sqlite3
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Issue kinds, in scan order (stable vocabulary for tests and reports).
ISSUE_KINDS = (
    "orphan-tmp",
    "torn-json",
    "checksum-mismatch",
    "key-mismatch",
    "stale-version",
    "schema-drift",
    "manifest-torn-tail",
    "store-corrupt",
    "expired-lease",
)


@dataclass
class FsckIssue:
    """One defect found (and possibly repaired) by :func:`fsck`."""

    kind: str
    path: str
    detail: str = ""
    repaired: bool = False

    def describe(self) -> str:
        state = "repaired" if self.repaired else "found"
        detail = f": {self.detail}" if self.detail else ""
        return f"[{state}] {self.kind} {self.path}{detail}"


@dataclass
class FsckReport:
    """Outcome of one :func:`fsck` scan."""

    cache_dir: str
    scanned_entries: int = 0
    healthy_entries: int = 0
    issues: List[FsckIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every found issue was repaired (or none existed)."""
        return all(issue.repaired for issue in self.issues)

    def counters(self) -> Dict[str, int]:
        """Issue counts by kind (zero-filled), plus scan totals --
        shaped for :meth:`repro.obs.MetricsRegistry.add_counters`."""
        out = {f"fsck_{kind}": 0 for kind in ISSUE_KINDS}
        for issue in self.issues:
            out[f"fsck_{issue.kind}"] += 1
        out["fsck_scanned"] = self.scanned_entries
        out["fsck_healthy"] = self.healthy_entries
        out["fsck_repaired"] = sum(1 for i in self.issues if i.repaired)
        return out

    def describe(self) -> str:
        lines = [
            f"fsck {self.cache_dir}: {self.scanned_entries} entries "
            f"scanned, {self.healthy_entries} healthy, "
            f"{len(self.issues)} issue(s)"
        ]
        lines += [f"  {issue.describe()}" for issue in self.issues]
        return "\n".join(lines)


def fsck(
    cache_dir,
    manifest: Optional[object] = None,
    repair: bool = True,
) -> FsckReport:
    """Scan (and with ``repair``, heal) a sweep's durable state.

    ``cache_dir`` is the result-cache root; the job store is found next
    to it automatically (``<cache_dir>/jobs.sqlite3``) when present.
    ``manifest`` optionally names a sweep-manifest path to check for a
    torn tail.  Returns a :class:`FsckReport`; nothing here ever raises
    on corrupt input -- that is the point.
    """
    root = Path(cache_dir)
    report = FsckReport(cache_dir=str(root))
    _scan_cache(root, report, repair)
    if manifest is not None:
        _scan_manifest(Path(manifest), report, repair)
    _scan_store(root, report, repair)
    return report


# ---------------------------------------------------------------------------
# Cache entries
# ---------------------------------------------------------------------------
def _scan_cache(root: Path, report: FsckReport, repair: bool) -> None:
    from repro.harness.jobs import CACHE_VERSION, entry_checksum
    from repro.harness.runner import RunResult

    if not root.is_dir():
        return
    for tmp in sorted(root.glob("*/*.tmp")):
        issue = FsckIssue("orphan-tmp", str(tmp), "interrupted atomic write")
        if repair:
            tmp.unlink(missing_ok=True)
            issue.repaired = True
        report.issues.append(issue)
    for path in sorted(root.glob("*/*.json")):
        report.scanned_entries += 1
        kind, detail = _classify_entry(
            path, CACHE_VERSION, entry_checksum, RunResult
        )
        if kind is None:
            report.healthy_entries += 1
            continue
        issue = FsckIssue(kind, str(path), detail)
        if repair:
            # Evict: a corrupt entry is a cache miss by contract, and
            # the point re-runs from its spec.  Never try to "fix" the
            # payload -- a guessed result would poison determinism.
            path.unlink(missing_ok=True)
            issue.repaired = True
        report.issues.append(issue)


def _classify_entry(path: Path, version, checksum_fn, result_cls):
    """Return ``(issue_kind, detail)`` for one entry file, or
    ``(None, "")`` when the entry is healthy."""
    try:
        data = json.loads(path.read_text())
        if not isinstance(data, dict):
            raise ValueError("entry is not a JSON object")
    except (OSError, ValueError) as exc:
        return "torn-json", str(exc)[:120]
    if "sha256" not in data or "v" not in data:
        return "schema-drift", "missing checksum/version fields"
    if data.get("v") != version:
        return "stale-version", f"entry v{data.get('v')} != v{version}"
    if checksum_fn(data) != data["sha256"]:
        return "checksum-mismatch", "payload does not match its sha256"
    if data.get("key") != path.stem:
        return "key-mismatch", f"entry key {str(data.get('key'))[:12]}..."
    try:
        result_cls.from_dict(data["result"])
    except Exception as exc:
        return "schema-drift", f"{type(exc).__name__}: {exc}"[:120]
    return None, ""


# ---------------------------------------------------------------------------
# Sweep manifest
# ---------------------------------------------------------------------------
def _scan_manifest(path: Path, report: FsckReport, repair: bool) -> None:
    from repro.harness.jobs import repair_manifest_tail

    if not path.is_file():
        return
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        dropped = repair_manifest_tail(path, write=repair)
    if dropped:
        report.issues.append(
            FsckIssue(
                "manifest-torn-tail",
                str(path),
                f"{dropped} unparseable line(s) dropped",
                repaired=repair,
            )
        )


# ---------------------------------------------------------------------------
# Job store
# ---------------------------------------------------------------------------
def _scan_store(root: Path, report: FsckReport, repair: bool) -> None:
    from repro.resilience.store import JobStore, default_store_path

    path = default_store_path(root)
    if not path.is_file():
        return
    try:
        db = sqlite3.connect(str(path), timeout=5.0)
        try:
            verdict = db.execute("PRAGMA integrity_check").fetchone()[0]
        finally:
            db.close()
        if verdict != "ok":
            raise sqlite3.DatabaseError(verdict)
    except sqlite3.DatabaseError as exc:
        issue = FsckIssue("store-corrupt", str(path), str(exc)[:120])
        if repair:
            # Same policy as cache entries: the ledger is rebuildable
            # (JobStore re-creates it; jobs re-enqueue on the next run).
            path.unlink(missing_ok=True)
            issue.repaired = True
        report.issues.append(issue)
        return
    try:
        store = JobStore(path)
        try:
            expired = store.reclaim_expired() if repair else _count_expired(store)
        finally:
            store.close()
    except Exception as exc:
        report.issues.append(
            FsckIssue("store-corrupt", str(path), str(exc)[:120])
        )
        return
    if expired:
        report.issues.append(
            FsckIssue(
                "expired-lease",
                str(path),
                f"{expired} lease(s) past expiry",
                repaired=repair,
            )
        )


def _count_expired(store) -> int:
    now = store.clock()
    return sum(
        1
        for row in store.rows()
        if row.status == "leased"
        and row.lease_expires is not None
        and row.lease_expires <= now
    )


__all__ = ["ISSUE_KINDS", "FsckIssue", "FsckReport", "fsck"]
