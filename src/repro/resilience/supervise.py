"""Worker supervision: leases, heartbeats, seeded backoff, restarts.

Three layers, all built on the durable :class:`~repro.resilience.store.
JobStore`:

* :func:`backoff_delay` -- exponential backoff with *deterministic*
  seeded jitter: the delay for (key, attempt, seed) is a pure function,
  so retry schedules are reproducible run to run while still decorrelating
  workers that fail together.
* :class:`WorkerLoop` -- claim / execute / heartbeat / complete for one
  worker, whether that worker is a child process or the engine's own
  process (the serial path uses the same loop, so every execution mode
  shares one supervision discipline).  While a point simulates, a
  daemon thread heartbeats the lease; a worker that is SIGKILLed stops
  heartbeating and its lease expires.
* :class:`WorkerPool` -- the parent-side supervisor: spawns worker
  processes, watches for deaths (releasing the dead worker's leases
  immediately instead of waiting out the lease), restarts workers
  within a bounded budget, and optionally applies harness-level chaos
  (seeded worker kills and cache-entry corruption) for
  :mod:`repro.resilience.chaos`.
"""

from __future__ import annotations

import errno
import hashlib
import multiprocessing
import os
import pickle
import random
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.resilience.store import Claim, JobStore, default_store_path

DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0
DEFAULT_POLL_S = 0.05
#: Heartbeats per lease duration (3 -> a lease is renewed at 1/3 life).
HEARTBEAT_DIVISOR = 3.0


def backoff_delay(
    key: str,
    attempt: int,
    base: float = DEFAULT_BACKOFF_BASE,
    cap: float = DEFAULT_BACKOFF_CAP,
    seed: int = 0,
) -> float:
    """Deterministic exponential backoff with seeded jitter.

    ``base * 2**(attempt-1)`` capped at ``cap``, scaled into
    ``[0.5, 1.0)`` of itself by a jitter derived from
    ``sha256(seed, key, attempt)`` -- a pure function, so tests and
    post-mortems can reproduce exact retry schedules.
    """
    if attempt <= 0 or base <= 0:
        return 0.0
    raw = min(cap, base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(
        f"{seed}:{key}:{attempt}".encode()
    ).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2**64
    return raw * (0.5 + 0.5 * fraction)


@dataclass
class ChaosPlan:
    """Harness-level chaos knobs (see :mod:`repro.resilience.chaos`).

    All injection is seeded and parent-driven (kills, corruption) or
    deterministic per worker (disk-full), so a chaos run is
    reproducible given the same plan.
    """

    kill_interval_s: float = 0.0
    """SIGKILL one random live worker this often (0 disables)."""

    kill_first_leases: int = 0
    """SIGKILL the owners of the first N leases the supervisor observes
    (0 disables).  Unlike the wall-clock timer, this lands the kill
    *mid-point* by construction -- the victim provably holds a lease --
    so it exercises lease reclamation even when every point simulates
    in milliseconds."""

    corrupt_interval_s: float = 0.0
    """Flip one byte of a random result-cache entry this often
    (0 disables)."""

    diskfull_puts: int = 0
    """Each worker's first N cache writes fail with ``ENOSPC``."""

    seed: int = 0

    @property
    def active(self) -> bool:
        return bool(
            self.kill_interval_s or self.kill_first_leases
            or self.corrupt_interval_s or self.diskfull_puts
        )


def make_diskfull_hook(puts: int) -> Callable[[], None]:
    """A :attr:`ResultCache.put_hook` simulating a disk that is full for
    the first ``puts`` writes, then recovers."""
    remaining = [puts]

    def hook() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            raise OSError(errno.ENOSPC, "chaos: simulated disk full")

    return hook


class WorkerLoop:
    """Claim-execute-complete loop for one worker (any process).

    ``specs_by_key`` serves specs from memory (the engine's serial path
    and unpicklable-factory fallback); without it, specs are unpickled
    from the claim's stored blob.  ``point_timeout_s`` arms a
    :class:`~repro.resilience.watchdog.Watchdog` per point.
    """

    def __init__(
        self,
        store: JobStore,
        cache,
        keys: Optional[Sequence[str]] = None,
        owner: Optional[str] = None,
        specs_by_key: Optional[Dict[str, object]] = None,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        seed: int = 0,
        point_timeout_s: Optional[float] = None,
        heartbeats: bool = True,
        on_complete: Optional[Callable[[str, object], None]] = None,
    ):
        self.store = store
        self.cache = cache
        self.keys = list(keys) if keys is not None else None
        self.owner = owner or f"worker-{os.getpid()}-{id(self):x}"
        self.specs_by_key = specs_by_key
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seed = seed
        self.point_timeout_s = point_timeout_s
        self.heartbeats = heartbeats
        self.on_complete = on_complete
        self.executed = 0

    # ------------------------------------------------------------------
    def _spec_for(self, claim: Claim):
        if self.specs_by_key is not None and claim.key in self.specs_by_key:
            return self.specs_by_key[claim.key]
        if claim.spec_blob is None:
            raise RuntimeError(
                f"job {claim.key[:12]} has no stored spec and no in-memory "
                "spec was provided"
            )
        return pickle.loads(claim.spec_blob)

    def _execute(self, spec):
        from repro.harness.jobs import execute_spec

        watchdog = None
        if self.point_timeout_s is not None:
            from repro.resilience.watchdog import Watchdog

            watchdog = Watchdog(
                wall_clock_s=self.point_timeout_s,
                max_events=spec.max_events,
            )
        return execute_spec(spec, watchdog=watchdog)

    def run_one(self) -> Optional[Claim]:
        """Claim and run one job; returns the claim (query its row for
        the outcome) or ``None`` if nothing was claimable."""
        claim = self.store.claim(self.owner, keys=self.keys)
        if claim is None:
            return None
        stop = threading.Event()
        beater = None
        if self.heartbeats:
            beater = threading.Thread(
                target=self._beat, args=(claim.key, stop), daemon=True
            )
            beater.start()
        try:
            spec = self._spec_for(claim)
            result = self._execute(spec)
            self.cache.put(claim.key, spec, result)
        except Exception as exc:
            self.store.mark_failed(
                claim.key,
                self.owner,
                f"{type(exc).__name__}: {exc}",
                traceback_text=traceback.format_exc(),
                backoff_s=backoff_delay(
                    claim.key,
                    claim.attempt,
                    base=self.backoff_base,
                    cap=self.backoff_cap,
                    seed=self.seed,
                ),
            )
        else:
            self.executed += 1
            self.store.mark_done(claim.key, self.owner)
        finally:
            stop.set()
            if beater is not None:
                beater.join(timeout=1.0)
        if self.on_complete is not None:
            self.on_complete(claim.key, self.store.get(claim.key))
        return claim

    def _beat(self, key: str, stop: threading.Event) -> None:
        interval = max(0.01, self.store.lease_s / HEARTBEAT_DIVISOR)
        while not stop.wait(interval):
            try:
                if not self.store.heartbeat(key, self.owner):
                    return  # lease lost; stop renewing
            except Exception:
                return  # a dying store must not crash the sim thread

    def drain(self, poll_s: float = DEFAULT_POLL_S) -> int:
        """Run until every tracked job is terminal; returns how many
        points this loop executed.  When nothing is claimable but open
        jobs remain (leased to someone else), polls until their leases
        resolve or expire."""
        while True:
            if self.run_one() is None:
                if self.store.open_jobs(self.keys) == 0:
                    return self.executed
                time.sleep(poll_s)


def worker_main(
    store_path,
    cache_dir,
    keys: Optional[List[str]],
    owner: str,
    lease_s: float,
    quarantine_after: int,
    backoff_base: float,
    backoff_cap: float,
    seed: int,
    point_timeout_s: Optional[float],
    diskfull_puts: int = 0,
) -> None:
    """Entry point of one supervised worker process."""
    from repro.harness.jobs import ResultCache

    store = JobStore(
        store_path, lease_s=lease_s, quarantine_after=quarantine_after
    )
    cache = ResultCache(cache_dir)
    if diskfull_puts:
        cache.put_hook = make_diskfull_hook(diskfull_puts)
    try:
        WorkerLoop(
            store,
            cache,
            keys=keys,
            owner=owner,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            seed=seed,
            point_timeout_s=point_timeout_s,
        ).drain()
    finally:
        store.close()


class WorkerPool:
    """Parent-side supervisor for a fleet of worker processes.

    Spawns ``workers`` processes running :func:`worker_main`, then
    supervises until every job in ``keys`` is terminal: dead workers
    have their leases released immediately and are restarted within a
    bounded budget; expired leases of hung-but-alive workers are left
    to lease expiry (claims reclaim them lazily).  ``on_terminal(key,
    row)`` fires once per job as it reaches a terminal status, so the
    caller can persist manifests incrementally.
    """

    def __init__(
        self,
        store: JobStore,
        cache_dir,
        workers: int,
        lease_s: float,
        quarantine_after: int,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        seed: int = 0,
        point_timeout_s: Optional[float] = None,
        chaos: Optional[ChaosPlan] = None,
        on_terminal: Optional[Callable[[str, object], None]] = None,
        max_restarts: Optional[int] = None,
        poll_s: float = DEFAULT_POLL_S,
    ):
        self.store = store
        self.cache_dir = cache_dir
        self.workers = workers
        self.lease_s = lease_s
        self.quarantine_after = quarantine_after
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seed = seed
        self.point_timeout_s = point_timeout_s
        self.chaos = chaos or ChaosPlan()
        self.on_terminal = on_terminal
        self.max_restarts = max_restarts
        self.poll_s = poll_s
        self.restarts = 0
        self.kills = 0
        self.corruptions = 0
        self._spawned = 0
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            self._ctx = multiprocessing.get_context()

    # ------------------------------------------------------------------
    def _spawn(self, keys: List[str]):
        self._spawned += 1
        owner = f"pool-{os.getpid()}-w{self._spawned}"
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                str(self.store.path),
                str(self.cache_dir),
                keys,
                owner,
                self.lease_s,
                self.quarantine_after,
                self.backoff_base,
                self.backoff_cap,
                self.seed,
                self.point_timeout_s,
                self.chaos.diskfull_puts,
            ),
            daemon=True,
        )
        proc.start()
        return owner, proc

    def run(self, keys: Sequence[str]) -> None:
        """Supervise until every key is terminal (or the restart budget
        is exhausted with no live workers -- the caller then falls back
        to in-process execution for whatever remains)."""
        keys = list(keys)
        budget = (
            self.max_restarts
            if self.max_restarts is not None
            else 4 + 2 * len(keys)
        )
        fleet = [self._spawn(keys) for _ in range(self.workers)]
        rng = random.Random(self.chaos.seed ^ 0xC4A05)
        now = time.monotonic()
        next_kill = (
            now + self.chaos.kill_interval_s
            if self.chaos.kill_interval_s
            else None
        )
        next_corrupt = (
            now + self.chaos.corrupt_interval_s
            if self.chaos.corrupt_interval_s
            else None
        )
        reported: set = set()
        lease_kills_left = self.chaos.kill_first_leases
        try:
            while True:
                open_jobs = 0
                leased_owners = []
                for row in self.store.rows(keys):
                    if row.terminal:
                        if row.key not in reported:
                            reported.add(row.key)
                            if self.on_terminal is not None:
                                self.on_terminal(row.key, row)
                    else:
                        open_jobs += 1
                        if row.status == "leased" and row.lease_owner:
                            leased_owners.append(row.lease_owner)
                if open_jobs == 0:
                    return
                # Lease-triggered kills: shoot a worker that provably
                # holds a lease, i.e. is mid-point right now.
                if lease_kills_left > 0 and leased_owners:
                    by_owner = dict(fleet)
                    for owner in leased_owners:
                        proc = by_owner.get(owner)
                        if (
                            lease_kills_left > 0
                            and proc is not None
                            and proc.is_alive()
                            and proc.pid
                        ):
                            os.kill(proc.pid, signal.SIGKILL)
                            self.kills += 1
                            lease_kills_left -= 1
                # Bury dead workers, release their leases, restart.
                alive = []
                for owner, proc in fleet:
                    if proc.is_alive():
                        alive.append((owner, proc))
                        continue
                    proc.join(timeout=0)
                    self.store.release_owner(owner)
                    if self.restarts < budget:
                        self.restarts += 1
                        alive.append(self._spawn(keys))
                fleet = alive
                if not fleet:
                    if self.restarts >= budget:
                        return  # caller's serial fallback finishes the rest
                    fleet = [self._spawn(keys)]
                now = time.monotonic()
                if next_kill is not None and now >= next_kill:
                    next_kill = now + self.chaos.kill_interval_s
                    victims = [p for _, p in fleet if p.is_alive()]
                    if victims:
                        victim = rng.choice(victims)
                        if victim.pid:
                            os.kill(victim.pid, signal.SIGKILL)
                            self.kills += 1
                if next_corrupt is not None and now >= next_corrupt:
                    next_corrupt = now + self.chaos.corrupt_interval_s
                    self.corruptions += corrupt_random_entry(
                        self.cache_dir, rng
                    )
                time.sleep(self.poll_s)
        finally:
            deadline = time.monotonic() + max(2.0, 4 * self.poll_s)
            for _, proc in fleet:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            for _, proc in fleet:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)


def corrupt_random_entry(cache_dir, rng: random.Random) -> int:
    """Flip one byte of one random cache entry file; returns 1 if a
    file was mutated (0 when the cache is still empty)."""
    from pathlib import Path

    entries = sorted(Path(cache_dir).glob("*/*.json"))
    if not entries:
        return 0
    path = rng.choice(entries)
    data = bytearray(path.read_bytes())
    if not data:
        return 0
    index = rng.randrange(len(data))
    data[index] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))
    return 1


__all__ = [
    "ChaosPlan",
    "WorkerLoop",
    "WorkerPool",
    "backoff_delay",
    "corrupt_random_entry",
    "default_store_path",
    "make_diskfull_hook",
    "worker_main",
]
