"""Harness-level chaos: prove the engine is crash-safe, end to end.

The fault-injection layer (:mod:`repro.faults`) attacks the *simulated*
machine; this module attacks the *harness itself*.  :func:`chaos_harness`
runs a small sweep twice:

1. an **undisturbed serial baseline** -- every spec executed in this
   process, no pool, no cache, no store;
2. a **chaotic supervised sweep** -- a worker pool whose members are
   SIGKILLed mid-point on a timer, whose result cache gets random
   byte-flips injected while the sweep runs, and whose workers see
   simulated ``ENOSPC`` disk-full errors on their first cache writes.

The engine's resilience machinery (leases + heartbeats, seeded backoff,
quarantine, checksummed cache entries, in-parent fallback) must absorb
all of it: the harness asserts every point converges to a result
**byte-identical** to the serial baseline, then runs :func:`repro.
resilience.fsck.fsck` over the battered cache as a final health check.
``python -m repro chaos-harness`` is the CLI entry point and CI gate.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.resilience.fsck import FsckReport, fsck
from repro.resilience.supervise import ChaosPlan

DEFAULT_CONFIGS = ("pthread", "msa-omu-2")
DEFAULT_WORKLOADS = ("canneal", "swaptions")


def default_chaos_specs(
    seed: int = 2015,
    scale: float = 0.2,
    cores: int = 4,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> List["JobSpec"]:
    """The default chaos grid: small enough for CI, real enough to keep
    workers busy while the harness shoots at them."""
    from repro.harness.jobs import JobSpec

    return [
        JobSpec(
            config=config,
            workload=workload,
            cores=cores,
            scale=scale,
            seed=seed,
        )
        for workload in workloads
        for config in configs
    ]


@dataclass
class ChaosHarnessResult:
    """Verdict of one :func:`chaos_harness` run."""

    total: int
    mismatched: List[str] = field(default_factory=list)
    """Point descriptions whose chaotic result differed from (or never
    converged to) the serial baseline.  Empty on success."""

    kills: int = 0
    restarts: int = 0
    corruptions: int = 0
    quarantined: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    fsck_report: Optional[FsckReport] = None
    workdir: str = ""

    @property
    def identical(self) -> bool:
        """Every point byte-identical to the undisturbed serial run."""
        return not self.mismatched

    @property
    def ok(self) -> bool:
        return self.identical and (
            self.fsck_report is None or self.fsck_report.ok
        )

    def describe(self) -> str:
        verdict = "IDENTICAL" if self.identical else "MISMATCH"
        lines = [
            f"chaos-harness: {self.total} points, {verdict} vs serial "
            f"baseline",
            f"  injected: {self.kills} worker kill(s), "
            f"{self.corruptions} cache corruption(s); "
            f"{self.restarts} worker restart(s), "
            f"{self.quarantined} quarantined",
        ]
        interesting = (
            "leases_granted",
            "leases_expired",
            "leases_released",
            "retries",
            "stale_completions",
            "cache_corrupt",
        )
        parts = [
            f"{name}={self.counters[name]}"
            for name in interesting
            if self.counters.get(name)
        ]
        if parts:
            lines.append("  counters: " + " ".join(parts))
        for description in self.mismatched:
            lines.append(f"  MISMATCH {description}")
        if self.fsck_report is not None:
            lines.append(
                "  " + self.fsck_report.describe().replace("\n", "\n  ")
            )
        return "\n".join(lines)


def chaos_harness(
    specs: Optional[Sequence["JobSpec"]] = None,
    workdir=None,
    workers: int = 3,
    seed: int = 2015,
    scale: float = 0.2,
    cores: int = 4,
    kill_interval_s: float = 0.4,
    kill_first_leases: int = 2,
    corrupt_interval_s: float = 0.7,
    diskfull_puts: int = 1,
    retries: int = 9,
    progress=False,
) -> ChaosHarnessResult:
    """Run the chaos gauntlet; see the module docstring for the plot.

    ``kill_first_leases`` guarantees SIGKILLs that land mid-point even
    when every point simulates in milliseconds (the wall-clock
    ``kill_interval_s`` timer alone may never fire on a fast machine).
    ``retries`` is deliberately generous (default 9): every injected
    disk-full failure burns an attempt, and the point of this harness is
    to prove convergence under fire, not to quarantine healthy specs.
    Returns a :class:`ChaosHarnessResult`; inspect ``.ok`` (CI exits
    non-zero otherwise).
    """
    from repro.harness.jobs import Engine, execute_spec

    if specs is None:
        specs = default_chaos_specs(seed=seed, scale=scale, cores=cores)
    specs = list(specs)
    workdir = Path(
        workdir
        if workdir is not None
        else tempfile.mkdtemp(prefix="repro-chaos-harness-")
    )
    workdir.mkdir(parents=True, exist_ok=True)

    # 1. Undisturbed serial baseline: no engine, no cache, no store.
    baseline: Dict[str, str] = {}
    for spec in specs:
        baseline[spec.key()] = execute_spec(spec).to_json()

    # 2. The same grid through the supervised engine, under fire.
    cache_dir = workdir / "cache"
    manifest = workdir / "manifest.jsonl"
    engine = Engine(
        workers=workers,
        cache_dir=cache_dir,
        manifest=manifest,
        retries=retries,
        progress=progress,
        seed=seed,
        chaos=ChaosPlan(
            kill_interval_s=kill_interval_s,
            kill_first_leases=kill_first_leases,
            corrupt_interval_s=corrupt_interval_s,
            diskfull_puts=diskfull_puts,
            seed=seed,
        ),
    )
    jobs = engine.run(specs)

    # 3. Byte-identical convergence check.
    mismatched = []
    for job in jobs:
        expected = baseline[job.key]
        if job.result is None:
            mismatched.append(
                f"{job.spec.describe()}: no result ({job.error})"
            )
        elif job.result.to_json() != expected:
            mismatched.append(
                f"{job.spec.describe()}: result diverged from serial run"
            )

    # 4. fsck over the battered cache: whatever the injections tore up
    #    must be found and healed.
    counters = engine.resilience_counters()
    fsck_report = fsck(cache_dir, manifest=manifest, repair=True)
    pool_stats = engine.pool_stats
    return ChaosHarnessResult(
        total=len(specs),
        mismatched=mismatched,
        kills=pool_stats.get("kills", 0),
        restarts=pool_stats.get("restarts", 0),
        corruptions=pool_stats.get("corruptions", 0),
        quarantined=counters.get("quarantined", 0),
        counters=counters,
        fsck_report=fsck_report,
        workdir=str(workdir),
    )


__all__ = [
    "ChaosHarnessResult",
    "DEFAULT_CONFIGS",
    "DEFAULT_WORKLOADS",
    "chaos_harness",
    "default_chaos_specs",
]
