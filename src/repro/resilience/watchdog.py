"""Per-run watchdog: escalate (warn -> snapshot -> abort) on runaway runs.

A simulation that exceeds its wall-clock or event budget is the harness
equivalent of MiSAR's resource overflow: the run must be *managed*, not
allowed to wedge a worker forever.  :class:`Watchdog` drives a machine's
event loop in chunks (:meth:`repro.sim.kernel.Simulator.run_chunk`, so
the event order -- and therefore every simulated result -- is
bit-identical to an unwatched run) and walks an escalation ladder as
either budget is consumed:

* **warn** (80% of a budget by default) -- a :class:`WatchdogWarning`;
* **snapshot** (95%) -- a :func:`triage_dump` of scheduler/MSA/NoC
  state is captured on ``watchdog.snapshot``;
* **abort** (100%) -- :class:`~repro.common.errors.WatchdogTimeout`
  with the final triage dump attached.

:func:`triage_dump` is shared with deadlock diagnostics: the scheduler
attaches the same dump to every
:class:`~repro.common.errors.DeadlockError`, so a hang and a timeout
produce the same evidence (runnable/suspended thread sets, in-flight
NoC messages, MSA entry occupancy).
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Dict, Optional

from repro.common.errors import WatchdogTimeout

#: Default escalation thresholds, as fractions of a budget.
WARN_FRACTION = 0.80
SNAPSHOT_FRACTION = 0.95

#: Events drained per chunk between watchdog checks.  Large enough that
#: the per-chunk bookkeeping is invisible next to the event loop itself.
DEFAULT_CHUNK_EVENTS = 65536


class WatchdogWarning(RuntimeWarning):
    """A run crossed a watchdog's warn threshold (still running)."""


def triage_dump(machine) -> Dict[str, Any]:
    """Snapshot the run state that explains a hang or a runaway run.

    Pure introspection (no simulation side effects): thread sets split
    runnable/suspended with what each blocked thread waits on, NoC
    in-flight message accounting, and per-tile MSA entry occupancy.
    Everything is plain data, safe to JSON-serialize into error
    reports and quarantine artifacts.
    """
    sim = machine.sim
    scheduler = machine.scheduler
    runnable, suspended, finished = [], [], 0
    for thread in scheduler.threads:
        if thread.finished:
            finished += 1
            continue
        proc = scheduler._procs.get(thread.tid)
        waiting = proc.blocked_on if proc is not None else None
        info = {
            "name": thread.name,
            "tid": thread.tid,
            "core": thread.core,
            "blocked": (
                "none"
                if waiting is None
                else ("completed-future" if waiting.done else "future")
            ),
        }
        (suspended if thread.suspended else runnable).append(info)
    noc = machine.network.stats.counters
    sent = noc.get("messages_sent", 0)
    delivered = noc.get("messages_delivered", 0)
    msa = []
    for sl in machine.msa_slices:
        if sl.dead or not sl.entries:
            continue
        msa.append(
            {
                "tile": sl.tile,
                "entries": len(sl.entries),
                "capacity": sl.params.entries_per_tile,
                "occupancy": [
                    {
                        "addr": addr,
                        "type": entry.sync_type.value,
                        "owner": entry.owner,
                        "waiters": len(entry.waiters),
                    }
                    for addr, entry in sorted(sl.entries.items())
                ],
            }
        )
    return {
        "cycle": sim.now,
        "pending_events": sim.pending_events,
        "events_processed": sim.events_processed,
        "threads": {
            "total": len(scheduler.threads),
            "finished": finished,
            "runnable": runnable,
            "suspended": suspended,
        },
        "noc": {
            "messages_sent": sent,
            "messages_delivered": delivered,
            "in_flight": sent - delivered,
        },
        "msa": msa,
        "degraded_tiles": sorted(machine.degraded_tiles()),
    }


def format_triage(triage: Dict[str, Any], limit: int = 4) -> str:
    """One-paragraph human summary of a :func:`triage_dump`."""
    threads = triage.get("threads", {})
    noc = triage.get("noc", {})
    parts = [
        f"cycle {triage.get('cycle', '?')}",
        f"{triage.get('pending_events', 0)} pending events",
        (
            f"threads {threads.get('finished', 0)}/{threads.get('total', 0)}"
            f" finished, {len(threads.get('runnable', ()))} runnable,"
            f" {len(threads.get('suspended', ()))} suspended"
        ),
        f"NoC in-flight {noc.get('in_flight', 0)}",
    ]
    occupancy = [
        f"tile{slice_info['tile']}:{slice_info['entries']}"
        f"/{slice_info['capacity']}"
        for slice_info in triage.get("msa", ())[:limit]
    ]
    if occupancy:
        parts.append("MSA occupancy " + " ".join(occupancy))
    blocked = [
        f"{t['name']}@core{t['core']}<{t['blocked']}>"
        for t in list(threads.get("runnable", ()))[:limit]
    ]
    if blocked:
        parts.append("blocked: " + ", ".join(blocked))
    return "; ".join(parts)


class Watchdog:
    """Escalating budget enforcement for one simulation run.

    ``wall_clock_s`` bounds real time, ``max_events`` bounds simulation
    work; either (or both) may be ``None``.  The escalation ladder is
    per-watchdog, not per-budget: whichever budget crosses a threshold
    first triggers that stage.  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        wall_clock_s: Optional[float] = None,
        max_events: Optional[int] = None,
        warn_fraction: float = WARN_FRACTION,
        snapshot_fraction: float = SNAPSHOT_FRACTION,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        clock=time.monotonic,
        on_stage=None,
    ):
        self.wall_clock_s = wall_clock_s
        self.max_events = max_events
        self.warn_fraction = warn_fraction
        self.snapshot_fraction = snapshot_fraction
        self.chunk_events = max(1, int(chunk_events))
        self.clock = clock
        self.on_stage = on_stage
        self.stage = "ok"
        self.snapshot: Optional[Dict[str, Any]] = None
        self.events = 0
        self.started_at: Optional[float] = None

    # -- escalation ----------------------------------------------------
    _STAGES = ("ok", "warned", "snapshotted", "aborted")

    def _escalate(self, stage: str, machine, reason: str) -> None:
        if self._STAGES.index(stage) <= self._STAGES.index(self.stage):
            return
        self.stage = stage
        if self.on_stage is not None:
            self.on_stage(stage, reason)
        if stage == "warned":
            warnings.warn(
                f"watchdog: {reason} (run continues)", WatchdogWarning,
                stacklevel=3,
            )
        elif stage == "snapshotted":
            self.snapshot = triage_dump(machine)
        elif stage == "aborted":
            triage = triage_dump(machine)
            self.snapshot = triage
            raise WatchdogTimeout(
                f"watchdog: {reason}; triage: {format_triage(triage)}",
                triage=triage,
            )

    def _consumed(self) -> float:
        """Largest budget fraction consumed so far (0..inf)."""
        fractions = [0.0]
        if self.max_events:
            fractions.append(self.events / self.max_events)
        if self.wall_clock_s and self.started_at is not None:
            fractions.append(
                (self.clock() - self.started_at) / self.wall_clock_s
            )
        return max(fractions)

    def _check(self, machine) -> None:
        consumed = self._consumed()
        if consumed >= 1.0:
            over = (
                f"exceeded max_events={self.max_events} "
                f"at cycle {machine.sim.now}"
                if self.max_events and self.events >= self.max_events
                else f"exceeded wall clock budget {self.wall_clock_s}s "
                f"at cycle {machine.sim.now}"
            )
            self._escalate("aborted", machine, over)
        elif consumed >= self.snapshot_fraction:
            self._escalate(
                "snapshotted", machine,
                f"{consumed:.0%} of budget consumed",
            )
        elif consumed >= self.warn_fraction:
            self._escalate(
                "warned", machine,
                f"{consumed:.0%} of budget consumed "
                f"(events={self.events}, cycle={machine.sim.now})",
            )

    # -- the run loop --------------------------------------------------
    def run(self, machine) -> int:
        """Drain the machine's event heap under this watchdog.

        Event order is identical to ``machine.run(max_events=...)`` --
        the heap is drained in fixed-size chunks with only bookkeeping
        in between -- so a run that finishes within budget returns
        bit-identical results.  On exhaustion, raises
        :class:`~repro.common.errors.WatchdogTimeout` (a
        ``SimulationError``) with the triage dump attached.  Deadlock
        detection matches :meth:`repro.machine.Machine.run`.
        """
        sim = machine.sim
        self.started_at = self.clock()
        while sim.pending_events:
            chunk = self.chunk_events
            if self.max_events is not None:
                chunk = min(chunk, self.max_events - self.events)
                if chunk <= 0:
                    self._check(machine)
                    break
            self.events += sim.run_chunk(chunk)
            self._check(machine)
        machine.scheduler.check_for_deadlock()
        return sim.now
