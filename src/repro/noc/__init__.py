"""Packet-level 2D-mesh network-on-chip.

The NoC carries coherence and MSA messages between tiles.  Latency is
hop-proportional (router pipeline + link traversal per hop) and links
arbitrate contending packets FIFO, so hot-spot tiles (a contended lock's
home) naturally see queuing delay -- the effect the paper's software
baselines suffer from and the MSA's direct notification avoids.
"""

from repro.noc.topology import MeshTopology
from repro.noc.message import Message
from repro.noc.network import Network

__all__ = ["MeshTopology", "Message", "Network"]
