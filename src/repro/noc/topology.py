"""2D-mesh topology and dimension-ordered (XY) routing."""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from repro.common.errors import ConfigError
from repro.common.types import TileCoord, TileId


class MeshTopology:
    """A square 2D mesh of ``side * side`` tiles.

    Tile ids are row-major: tile ``t`` sits at ``(t % side, t // side)``.
    Routing is deterministic XY (X first, then Y), the standard
    deadlock-free choice for meshes.
    """

    def __init__(self, n_tiles: int):
        side = int(math.isqrt(n_tiles))
        if side * side != n_tiles:
            raise ConfigError(f"mesh requires a square tile count, got {n_tiles}")
        self.n_tiles = n_tiles
        self.side = side

    def coord(self, tile: TileId) -> TileCoord:
        if not 0 <= tile < self.n_tiles:
            raise ConfigError(f"tile {tile} out of range 0..{self.n_tiles - 1}")
        return TileCoord(tile % self.side, tile // self.side)

    def tile_at(self, coord: TileCoord) -> TileId:
        return coord.y * self.side + coord.x

    def hops(self, src: TileId, dst: TileId) -> int:
        """Manhattan hop count between two tiles."""
        return self.coord(src).hops_to(self.coord(dst))

    def route(self, src: TileId, dst: TileId) -> List[TileId]:
        """The XY path from ``src`` to ``dst``, inclusive of both ends."""
        path = [src]
        cur = self.coord(src)
        goal = self.coord(dst)
        while cur.x != goal.x:
            step = 1 if goal.x > cur.x else -1
            cur = TileCoord(cur.x + step, cur.y)
            path.append(self.tile_at(cur))
        while cur.y != goal.y:
            step = 1 if goal.y > cur.y else -1
            cur = TileCoord(cur.x, cur.y + step)
            path.append(self.tile_at(cur))
        return path

    def links_on_route(self, src: TileId, dst: TileId) -> Iterator[Tuple[TileId, TileId]]:
        """Directed links traversed by the XY route."""
        path = self.route(src, dst)
        for a, b in zip(path, path[1:]):
            yield (a, b)

    def neighbors(self, tile: TileId) -> List[TileId]:
        c = self.coord(tile)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = c.x + dx, c.y + dy
            if 0 <= nx < self.side and 0 <= ny < self.side:
                out.append(self.tile_at(TileCoord(nx, ny)))
        return out
