"""Per-link FIFO arbitration model.

Rather than simulating router microarchitecture flit-by-flit, each
directed link is a serial resource: a message occupies the link for
``flits_per_message`` cycles and contending messages queue FIFO.  This
captures the two NoC effects that matter for synchronization studies --
hop-proportional latency and hot-spot queuing -- at a small fraction of
the event cost of a flit-accurate model (the paper used Booksim; see
DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.common.params import NocParams
from repro.common.stats import StatSet
from repro.common.types import TileId
from repro.sim.kernel import Simulator


class Link:
    """A directed inter-tile link with FIFO serialization."""

    __slots__ = ("sim", "occupancy_cycles", "_free_at", "busy_cycles")

    def __init__(self, sim: Simulator, occupancy_cycles: int):
        self.sim = sim
        self.occupancy_cycles = occupancy_cycles
        self._free_at = 0
        self.busy_cycles = 0

    def reserve(self) -> int:
        """Reserve the link for one message; returns the cycle at which
        the message *finishes* crossing (its head may proceed then)."""
        start = max(self.sim.now, self._free_at)
        finish = start + self.occupancy_cycles
        self._free_at = finish
        self.busy_cycles += self.occupancy_cycles
        return finish

    @property
    def queue_delay(self) -> int:
        """Cycles a message arriving now would wait before crossing."""
        return max(0, self._free_at - self.sim.now)


class LinkFabric:
    """All directed links of the mesh, plus traversal accounting.

    The network asks the fabric to carry a message across an ordered
    list of links; the fabric chains per-link reservations, adding the
    router pipeline latency at each hop, and invokes the delivery
    callback when the final link releases the message.
    """

    def __init__(self, sim: Simulator, params: NocParams, stats: StatSet):
        self.sim = sim
        self.params = params
        self.stats = stats
        self._links: Dict[Tuple[TileId, TileId], Link] = {}
        occupancy = params.link_latency + params.flits_per_message - 1
        self._occupancy = max(1, occupancy)

    def link(self, src: TileId, dst: TileId) -> Link:
        key = (src, dst)
        if key not in self._links:
            self._links[key] = Link(self.sim, self._occupancy)
        return self._links[key]

    def traverse(
        self,
        hops: Tuple[Tuple[TileId, TileId], ...],
        deliver: Callable[[], None],
        extra_delay: int = 0,
    ) -> None:
        """Send a message across ``hops`` (directed links, in order).

        Local delivery (no hops) still pays the injection latency.
        ``extra_delay`` models a fault-injected stall at the NIC before
        the message enters the fabric.
        """
        delay = self.params.injection_latency + extra_delay
        if not hops:
            self.sim.schedule(delay, deliver)
            return
        self._advance(list(hops), 0, delay, deliver)

    def _advance(self, hops, index, base_delay, deliver) -> None:
        """Schedule traversal of ``hops[index]`` after ``base_delay``."""

        def cross():
            link = self.link(*hops[index])
            waited = link.queue_delay
            if waited:
                self.stats.counter("link_stall_cycles").inc(waited)
            finish = link.reserve()
            remaining = finish - self.sim.now + self.params.router_latency
            if index + 1 < len(hops):
                self._advance(hops, index + 1, remaining, deliver)
            else:
                self.sim.schedule(remaining, deliver)

        self.sim.schedule(base_delay, cross)
