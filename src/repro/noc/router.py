"""Per-link FIFO arbitration model.

Rather than simulating router microarchitecture flit-by-flit, each
directed link is a serial resource: a message occupies the link for
``flits_per_message`` cycles and contending messages queue FIFO.  This
captures the two NoC effects that matter for synchronization studies --
hop-proportional latency and hot-spot queuing -- at a small fraction of
the event cost of a flit-accurate model (the paper used Booksim; see
DESIGN.md for the substitution rationale).

Traversal is the single hottest code path in the whole simulator (one
event per hop per message), so :meth:`LinkFabric._cross` carries its
state in a plain tuple scheduled with the kernel's ``(callback, arg)``
form -- no per-hop closures, no copy of the hop list -- and performs
the link reservation inline rather than through :meth:`Link.reserve` /
:attr:`Link.queue_delay` (both kept for tests and occasional callers).
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, Tuple

from repro.common.params import NocParams
from repro.common.stats import StatSet
from repro.common.types import TileId
from repro.sim.kernel import NO_ARG, Simulator


class Link:
    """A directed inter-tile link with FIFO serialization."""

    __slots__ = ("sim", "occupancy_cycles", "_free_at", "busy_cycles")

    def __init__(self, sim: Simulator, occupancy_cycles: int):
        self.sim = sim
        self.occupancy_cycles = occupancy_cycles
        self._free_at = 0
        self.busy_cycles = 0

    def reserve(self) -> int:
        """Reserve the link for one message; returns the cycle at which
        the message *finishes* crossing (its head may proceed then)."""
        start = max(self.sim.now, self._free_at)
        finish = start + self.occupancy_cycles
        self._free_at = finish
        self.busy_cycles += self.occupancy_cycles
        return finish

    @property
    def queue_delay(self) -> int:
        """Cycles a message arriving now would wait before crossing."""
        return max(0, self._free_at - self.sim.now)


class LinkFabric:
    """All directed links of the mesh, plus traversal accounting.

    The network asks the fabric to carry a message across an ordered
    list of links; the fabric chains per-link reservations, adding the
    router pipeline latency at each hop, and invokes the delivery
    callback when the final link releases the message.
    """

    def __init__(self, sim: Simulator, params: NocParams, stats: StatSet):
        self.sim = sim
        self.params = params
        self.stats = stats
        self._links: Dict[Tuple[TileId, TileId], Link] = {}
        occupancy = params.link_latency + params.flits_per_message - 1
        self._occupancy = max(1, occupancy)
        # Lazily registered on first stall so an uncontended run's
        # counter set matches the pre-optimization network exactly.
        self._stall_cycles = None
        self._router_latency = params.router_latency
        self._injection_latency = params.injection_latency
        # Sharded-kernel fast path: hop events dominate the event mix
        # (60-80% on the headline workloads), so the per-hop handler is
        # compiled as a closure over the calendar's bucket table -- the
        # push is an inline dict hit + list append, and every hot
        # constant is a cell load instead of an attribute chain.
        if hasattr(sim, "_buckets"):
            self._cross = self._make_cross_sharded()

    def link(self, src: TileId, dst: TileId) -> Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = Link(self.sim, self._occupancy)
        return link

    def route(self, hops) -> Tuple[Link, ...]:
        """Resolve directed ``(src, dst)`` hop pairs to their Link
        objects (callers cache the result per route so traversal never
        touches the link dictionary)."""
        return tuple(self.link(src, dst) for src, dst in hops)

    def traverse(
        self,
        links: Tuple[Link, ...],
        deliver: Callable,
        deliver_arg=NO_ARG,
        extra_delay: int = 0,
    ) -> None:
        """Send a message across ``links`` (from :meth:`route`, in hop
        order).

        Local delivery (no links) still pays the injection latency.
        ``deliver`` is invoked as ``deliver(deliver_arg)`` (or bare when
        no argument is given).  ``extra_delay`` models a fault-injected
        stall at the NIC before the message enters the fabric.
        """
        delay = self._injection_latency + extra_delay
        if not links:
            self.sim.schedule(delay, deliver, deliver_arg)
            return
        # The hop state is a mutable list reused across the whole
        # traversal (only the index advances), not a fresh tuple per
        # hop: exactly one in-flight hop event holds it at a time.
        self.sim.schedule(delay, self._cross, [links, 0, deliver, deliver_arg])

    def _cross(self, state) -> None:
        """One hop of a traversal: reserve ``links[index]``, then chain
        to the next hop or the delivery callback."""
        links, index, deliver, deliver_arg = state
        link = links[index]
        sim = self.sim
        now = sim.now
        free_at = link._free_at
        if free_at > now:
            stall = self._stall_cycles
            if stall is None:
                stall = self._stall_cycles = self.stats.counter(
                    "link_stall_cycles"
                )
            stall.value += free_at - now
            start = free_at
        else:
            start = now
        occupancy = link.occupancy_cycles
        finish = start + occupancy
        link._free_at = finish
        link.busy_cycles += occupancy
        when = finish + self._router_latency
        index += 1
        # Simulator._push skips schedule()'s delay check (non-negative
        # by construction here) and binds to whichever kernel -- legacy
        # heap or sharded calendar -- the machine was built with.
        if index < len(links):
            state[1] = index
            sim._push(when, self._cross, state)
        else:
            sim._push(when, deliver, deliver_arg)

    def _make_cross_sharded(self):
        """Compile the per-hop handler for a ShardedSimulator: the same
        reservation logic and event order as :meth:`_cross`, with the
        calendar push inlined and the simulator, bucket table, and
        latencies bound as closure cells.  The stall counter keeps its
        lazy first-stall registration (via ``self``, so tests that read
        ``fabric._stall_cycles`` still see it)."""
        sim = self.sim
        buckets = sim._buckets
        times = sim._times
        router_latency = self._router_latency
        # Every link is built with the same serialized occupancy, so it
        # is a per-fabric constant -- a cell load here, not a per-hop
        # attribute read.
        occupancy = self._occupancy
        push = heappush

        def cross(state):
            links, index, deliver, deliver_arg = state
            link = links[index]
            now = sim.now
            free_at = link._free_at
            if free_at > now:
                stall = self._stall_cycles
                if stall is None:
                    stall = self._stall_cycles = self.stats.counter(
                        "link_stall_cycles"
                    )
                stall.value += free_at - now
                start = free_at
            else:
                start = now
            finish = start + occupancy
            link._free_at = finish
            link.busy_cycles += occupancy
            when = finish + router_latency
            index += 1
            if index < len(links):
                state[1] = index
                entry = (cross, state)
            else:
                entry = (deliver, deliver_arg)
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [entry]
                push(times, when)
            else:
                bucket.append(entry)

        return cross
