"""NoC message type.

One message class serves both the coherence protocol and the MSA: the
``kind`` string namespaces the protocol ("coh.*" vs "msa.*") and the
``payload`` dict carries protocol-specific fields.  Keeping this generic
lets the network layer stay protocol-agnostic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.common.types import TileId

_msg_ids = itertools.count()


@dataclass
class Message:
    """A point-to-point NoC message."""

    src: TileId
    dst: TileId
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    injected_at: int = -1
    """Cycle the message entered the network (set by the Network)."""

    rel_seq: Optional[int] = None
    """Reliable-transport channel sequence number; ``None`` for traffic
    outside the transport (coherence, acks, fault-free machines)."""

    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __repr__(self) -> str:
        return (
            f"Message#{self.msg_id}({self.kind} {self.src}->{self.dst} "
            f"{self.payload})"
        )
