"""NoC message type.

One message class serves both the coherence protocol and the MSA: the
``kind`` string namespaces the protocol ("coh.*" vs "msa.*") and the
``payload`` dict carries protocol-specific fields.  Keeping this generic
lets the network layer stay protocol-agnostic.

The routing prefix (the part of ``kind`` before the first dot) is
computed once at construction and memoized per kind string: the network
consults it at injection (per-protocol counters), coverage checks
(reliable transport), and dispatch, and messages outnumber kinds by many
orders of magnitude.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.common.types import TileId

_msg_ids = itertools.count()

#: kind -> interned prefix; kinds form a small closed set, so this stays
#: tiny and makes prefix lookup a single dict hit per construction.
_prefix_of: Dict[str, str] = {}


@dataclass
class Message:
    """A point-to-point NoC message."""

    src: TileId
    dst: TileId
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    injected_at: int = -1
    """Cycle the message entered the network (set by the Network)."""

    rel_seq: Optional[int] = None
    """Reliable-transport channel sequence number; ``None`` for traffic
    outside the transport (coherence, acks, fault-free machines)."""

    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    prefix: str = field(init=False, repr=False, default="")
    """Interned routing prefix: ``kind`` up to the first dot."""

    def __post_init__(self):
        kind = self.kind
        prefix = _prefix_of.get(kind)
        if prefix is None:
            prefix = _prefix_of[kind] = sys.intern(kind.partition(".")[0])
        self.prefix = prefix

    def __repr__(self) -> str:
        return (
            f"Message#{self.msg_id}({self.kind} {self.src}->{self.dst} "
            f"{self.payload})"
        )
