"""NoC message type.

One message class serves both the coherence protocol and the MSA: the
``kind`` string namespaces the protocol ("coh.*" vs "msa.*") and the
``payload`` dict carries protocol-specific fields.  Keeping this generic
lets the network layer stay protocol-agnostic.

The routing prefix (the part of ``kind`` before the first dot) is
computed once at construction and memoized per kind string: the network
consults it at injection (per-protocol counters), coverage checks
(reliable transport), and dispatch, and messages outnumber kinds by many
orders of magnitude.
"""

from __future__ import annotations

import itertools
import sys
from typing import Any, Dict, Optional

from repro.common.types import TileId

_msg_ids = itertools.count()

#: kind -> interned prefix; kinds form a small closed set, so this stays
#: tiny and makes prefix lookup a single dict hit per construction.
_prefix_of: Dict[str, str] = {}


class Message:
    """A point-to-point NoC message.

    A slotted hand-written class rather than a dataclass: one instance
    is allocated per protocol message (hundreds of thousands per run),
    and ``__slots__`` drops the per-instance dict while the explicit
    ``__init__`` skips dataclass ``__post_init__`` dispatch.  Identity
    semantics (no value ``__eq__``) are intentional -- two distinct
    messages are never "the same message", and nothing ever compared
    them by value.
    """

    __slots__ = (
        "src",
        "dst",
        "kind",
        "payload",
        "injected_at",
        "rel_seq",
        "msg_id",
        "prefix",
    )

    def __init__(
        self,
        src: TileId,
        dst: TileId,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        injected_at: int = -1,
        rel_seq: Optional[int] = None,
    ):
        self.src = src
        self.dst = dst
        self.kind = kind
        #: Protocol-specific fields.
        self.payload = {} if payload is None else payload
        #: Cycle the message entered the network (set by the Network).
        self.injected_at = injected_at
        #: Reliable-transport channel sequence number; ``None`` for
        #: traffic outside the transport (coherence, acks, fault-free
        #: machines).
        self.rel_seq = rel_seq
        self.msg_id = next(_msg_ids)
        kp = _prefix_of.get(kind)
        if kp is None:
            kp = _prefix_of[kind] = sys.intern(kind.partition(".")[0])
        #: Interned routing prefix: ``kind`` up to the first dot.
        self.prefix = kp

    def __repr__(self) -> str:
        return (
            f"Message#{self.msg_id}({self.kind} {self.src}->{self.dst} "
            f"{self.payload})"
        )
