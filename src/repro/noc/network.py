"""The network fabric connecting tiles.

Components at each tile register a handler per message-kind prefix; the
network routes messages over the link fabric and dispatches them to the
destination tile's handler.  Delivery is exactly-once and per-link FIFO.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.common.errors import SimulationError
from repro.common.params import NocParams
from repro.common.stats import StatSet
from repro.common.types import TileId
from repro.noc.message import Message
from repro.noc.router import LinkFabric
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator

Handler = Callable[[Message], None]


class Network:
    """Routes :class:`Message` objects between tiles over the mesh."""

    def __init__(self, sim: Simulator, n_tiles: int, params: NocParams = None):
        self.sim = sim
        self.params = params or NocParams()
        self.topology = MeshTopology(n_tiles)
        self.stats = StatSet("noc")
        self.fabric = LinkFabric(sim, self.params, self.stats)
        self._handlers: Dict[Tuple[TileId, str], Handler] = {}
        self._route_cache: Dict[Tuple[TileId, TileId], Tuple] = {}
        self.injector = None
        """Optional :class:`repro.faults.FaultInjector` consulted at
        injection (extra delay) and final-hop delivery (drop/duplicate).
        ``None`` on fault-free machines: the hot path then matches the
        original network bit-for-bit."""

        self.transport = None
        """Optional :class:`repro.faults.ReliableTransport` carrying
        ``msa.*``/``msa_cpu.*`` traffic exactly-once and in order."""

        self.probe = None
        """Optional checker event bus (:mod:`repro.verify`): every
        dispatched message is reported so the NoC-conservation monitor
        can check per-channel delivery order online."""

    def register(self, tile: TileId, prefix: str, handler: Handler) -> None:
        """Register the receiver for messages whose kind starts with
        ``prefix`` (e.g. ``"coh"`` or ``"msa"``) at ``tile``."""
        key = (tile, prefix)
        if key in self._handlers:
            raise SimulationError(f"handler already registered for {key}")
        self._handlers[key] = handler

    def send(self, message: Message) -> None:
        """Inject a message; it will be delivered to the destination
        tile's handler after routing latency + contention.  Accelerator
        traffic detours through the reliable transport when a fault
        plan armed one."""
        if self.transport is not None and self.transport.covers(message.kind):
            self.transport.send(message)
            return
        self.inject(message)

    def inject(self, message: Message) -> None:
        """Put a message on the wire (no reliability layering; the
        transport's own sends and retransmissions come through here)."""
        message.injected_at = self.sim.now
        self.stats.counter("messages_sent").inc()
        self.stats.counter(f"sent.{message.kind.split('.')[0]}").inc()
        hops = self._hops(message.src, message.dst)
        extra = 0 if self.injector is None else self.injector.send_delay(message)
        self.fabric.traverse(hops, lambda: self._deliver(message), extra)

    def _hops(self, src: TileId, dst: TileId) -> Tuple:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = tuple(self.topology.links_on_route(src, dst))
            self._route_cache[key] = cached
        return cached

    def _deliver(self, message: Message) -> None:
        """Final-hop arrival: apply delivery faults, then hand covered
        traffic to the transport for ordering/deduplication."""
        if self.injector is not None:
            deliver, dup_after = self.injector.deliver_verdict(message)
            if dup_after is not None:
                # The duplicate skips the verdict (no fractal re-rolls).
                self.sim.schedule(dup_after, lambda: self._arrive(message))
            if not deliver:
                return
        self._arrive(message)

    def _arrive(self, message: Message) -> None:
        if self.transport is not None and message.rel_seq is not None:
            self.transport.receive(message, self._dispatch)
        else:
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        prefix = message.kind.split(".", 1)[0]
        handler = self._handlers.get((message.dst, prefix))
        if handler is None:
            raise SimulationError(
                f"no handler for {prefix!r} messages at tile {message.dst} "
                f"(message: {message})"
            )
        self.stats.counter("messages_delivered").inc()
        self.stats.histogram("latency").add(self.sim.now - message.injected_at)
        if self.probe is not None:
            self.probe.emit(
                "noc_deliver",
                tid=message.src,
                tile=message.dst,
                aux=(message.kind, message.rel_seq),
            )
        handler(message)

    def round_trip_estimate(self, src: TileId, dst: TileId) -> int:
        """Uncontended request+response latency estimate (for docs/tests)."""
        hops = self.topology.hops(src, dst)
        one_way = self.params.injection_latency + hops * (
            self.params.router_latency
            + self.params.link_latency
            + self.params.flits_per_message
            - 1
        )
        return 2 * one_way
