"""The network fabric connecting tiles.

Components at each tile register a handler per message-kind prefix; the
network routes messages over the link fabric and dispatches them to the
destination tile's handler.  Delivery is exactly-once and per-link FIFO.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.common.errors import SimulationError
from repro.common.params import NocParams
from repro.common.stats import StatSet
from repro.common.types import TileId
from repro.noc.message import Message
from repro.noc.router import LinkFabric
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator

Handler = Callable[[Message], None]


class Network:
    """Routes :class:`Message` objects between tiles over the mesh."""

    def __init__(self, sim: Simulator, n_tiles: int, params: NocParams = None):
        self.sim = sim
        self.params = params or NocParams()
        self.topology = MeshTopology(n_tiles)
        self.stats = StatSet("noc")
        self.fabric = LinkFabric(sim, self.params, self.stats)
        self._handlers: Dict[Tuple[TileId, str], Handler] = {}
        self._route_cache: Dict[Tuple[TileId, TileId], Tuple] = {}

    def register(self, tile: TileId, prefix: str, handler: Handler) -> None:
        """Register the receiver for messages whose kind starts with
        ``prefix`` (e.g. ``"coh"`` or ``"msa"``) at ``tile``."""
        key = (tile, prefix)
        if key in self._handlers:
            raise SimulationError(f"handler already registered for {key}")
        self._handlers[key] = handler

    def send(self, message: Message) -> None:
        """Inject a message; it will be delivered to the destination
        tile's handler after routing latency + contention."""
        message.injected_at = self.sim.now
        self.stats.counter("messages_sent").inc()
        self.stats.counter(f"sent.{message.kind.split('.')[0]}").inc()
        hops = self._hops(message.src, message.dst)
        self.fabric.traverse(hops, lambda: self._deliver(message))

    def _hops(self, src: TileId, dst: TileId) -> Tuple:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = tuple(self.topology.links_on_route(src, dst))
            self._route_cache[key] = cached
        return cached

    def _deliver(self, message: Message) -> None:
        prefix = message.kind.split(".", 1)[0]
        handler = self._handlers.get((message.dst, prefix))
        if handler is None:
            raise SimulationError(
                f"no handler for {prefix!r} messages at tile {message.dst} "
                f"(message: {message})"
            )
        self.stats.counter("messages_delivered").inc()
        self.stats.histogram("latency").add(self.sim.now - message.injected_at)
        handler(message)

    def round_trip_estimate(self, src: TileId, dst: TileId) -> int:
        """Uncontended request+response latency estimate (for docs/tests)."""
        hops = self.topology.hops(src, dst)
        one_way = self.params.injection_latency + hops * (
            self.params.router_latency
            + self.params.link_latency
            + self.params.flits_per_message
            - 1
        )
        return 2 * one_way
