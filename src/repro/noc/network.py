"""The network fabric connecting tiles.

Components at each tile register a handler per message-kind prefix; the
network routes messages over the link fabric and dispatches them to the
destination tile's handler.  Delivery is exactly-once and per-link FIFO.

Hot-path layout: every message pays ``inject`` + one ``_dispatch``, so
the per-call stat lookups (dict hit + f-string per counter) are hoisted
into attributes bound at construction, handler dispatch is a per-tile
dict indexed by the message's precomputed ``prefix`` (no tuple key
allocation), and routes are memoized per (src, dst) pair.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.common.errors import SimulationError
from repro.common.params import NocParams
from repro.common.stats import Counter, StatSet
from repro.common.types import TileId
from repro.noc.message import Message
from repro.noc.router import LinkFabric
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator

Handler = Callable[[Message], None]


class Network:
    """Routes :class:`Message` objects between tiles over the mesh."""

    def __init__(self, sim: Simulator, n_tiles: int, params: NocParams = None):
        self.sim = sim
        self.params = params or NocParams()
        self.topology = MeshTopology(n_tiles)
        self.stats = StatSet("noc")
        self.fabric = LinkFabric(sim, self.params, self.stats)
        self._tile_handlers: List[Dict[str, Handler]] = [
            {} for _ in range(self.topology.n_tiles)
        ]
        self._route_cache: Dict[Tuple[TileId, TileId], Tuple] = {}
        self._messages_sent = self.stats.counter("messages_sent")
        self._messages_delivered = self.stats.counter("messages_delivered")
        self._latency = self.stats.histogram("latency")
        self._sent_by_prefix: Dict[str, Counter] = {}
        self.injector = None
        """Optional :class:`repro.faults.FaultInjector` consulted at
        injection (extra delay) and final-hop delivery (drop/duplicate).
        ``None`` on fault-free machines: the hot path then matches the
        original network bit-for-bit."""

        self.transport = None
        """Optional :class:`repro.faults.ReliableTransport` carrying
        ``msa.*``/``msa_cpu.*`` traffic exactly-once and in order."""

        self.probe = None
        """Optional checker event bus (:mod:`repro.verify`): every
        dispatched message is reported so the NoC-conservation monitor
        can check per-channel delivery order online."""

    def register(self, tile: TileId, prefix: str, handler: Handler) -> None:
        """Register the receiver for messages whose kind starts with
        ``prefix`` (e.g. ``"coh"`` or ``"msa"``) at ``tile``."""
        handlers = self._tile_handlers[tile]
        if prefix in handlers:
            raise SimulationError(
                f"handler already registered for {(tile, prefix)}"
            )
        handlers[prefix] = handler

    def send(self, message: Message) -> None:
        """Inject a message; it will be delivered to the destination
        tile's handler after routing latency + contention.  Accelerator
        traffic detours through the reliable transport when a fault
        plan armed one."""
        transport = self.transport
        if transport is not None and message.prefix in transport.covered:
            transport.send(message)
            return
        self.inject(message)

    def inject(self, message: Message) -> None:
        """Put a message on the wire (no reliability layering; the
        transport's own sends and retransmissions come through here)."""
        message.injected_at = self.sim.now
        self._messages_sent.value += 1
        prefix = message.prefix
        sent = self._sent_by_prefix.get(prefix)
        if sent is None:
            sent = self._sent_by_prefix[prefix] = self.stats.counter(
                "sent." + prefix
            )
        sent.value += 1
        probe = self.probe
        if probe is not None and probe.noc_active:
            probe.emit(
                "noc_send", tid=message.src, tile=message.dst,
                aux=message.kind,
            )
        key = (message.src, message.dst)
        links = self._route_cache.get(key)
        if links is None:
            links = self._route_cache[key] = self.fabric.route(
                self.topology.links_on_route(message.src, message.dst)
            )
        extra = 0 if self.injector is None else self.injector.send_delay(message)
        self.fabric.traverse(links, self._deliver, message, extra)

    def _deliver(self, message: Message) -> None:
        """Final-hop arrival: apply delivery faults, then hand covered
        traffic to the transport for ordering/deduplication."""
        if self.injector is not None:
            deliver, dup_after = self.injector.deliver_verdict(message)
            if dup_after is not None:
                # The duplicate skips the verdict (no fractal re-rolls).
                self.sim.schedule(dup_after, self._arrive, message)
            if not deliver:
                return
        self._arrive(message)

    def _arrive(self, message: Message) -> None:
        if self.transport is not None and message.rel_seq is not None:
            self.transport.receive(message, self._dispatch)
        else:
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        handler = self._tile_handlers[message.dst].get(message.prefix)
        if handler is None:
            raise SimulationError(
                f"no handler for {message.prefix!r} messages at tile "
                f"{message.dst} (message: {message})"
            )
        self._messages_delivered.value += 1
        self._latency.add(self.sim.now - message.injected_at)
        if self.probe is not None:
            self.probe.emit(
                "noc_deliver",
                tid=message.src,
                tile=message.dst,
                aux=(message.kind, message.rel_seq),
            )
        handler(message)

    def round_trip_estimate(self, src: TileId, dst: TileId) -> int:
        """Uncontended request+response latency estimate (for docs/tests)."""
        hops = self.topology.hops(src, dst)
        one_way = self.params.injection_latency + hops * (
            self.params.router_latency
            + self.params.link_latency
            + self.params.flits_per_message
            - 1
        )
        return 2 * one_way
