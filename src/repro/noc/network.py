"""The network fabric connecting tiles.

Components at each tile register a handler per message-kind prefix; the
network routes messages over the link fabric and dispatches them to the
destination tile's handler.  Delivery is exactly-once and per-link FIFO.

Hot-path layout: every message pays ``inject`` + one ``_dispatch``, so
the per-call stat lookups (dict hit + f-string per counter) are hoisted
into attributes bound at construction, handler dispatch is a per-tile
dict indexed by the message's precomputed ``prefix`` (no tuple key
allocation), and routes are memoized per (src, dst) pair.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.params import NocParams
from repro.common.stats import Counter, StatSet
from repro.common.types import TileId
from repro.noc.message import Message
from repro.noc.router import LinkFabric
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator

Handler = Callable[[Message], None]


class Network:
    """Routes :class:`Message` objects between tiles over the mesh."""

    def __init__(self, sim: Simulator, n_tiles: int, params: NocParams = None):
        self.sim = sim
        self.params = params or NocParams()
        self.topology = MeshTopology(n_tiles)
        self.stats = StatSet("noc")
        self.fabric = LinkFabric(sim, self.params, self.stats)
        self._tile_handlers: List[Dict[str, Handler]] = [
            {} for _ in range(self.topology.n_tiles)
        ]
        # Route memo as nested lists (src row -> dst slot) rather than a
        # (src, dst)-keyed dict: two C-level list indexes per message,
        # no key-tuple allocation, no hashing.  Rows are lazy so large
        # meshes only pay for pairs that actually communicate.
        self._route_rows: List[Optional[List]] = [
            None for _ in range(self.topology.n_tiles)
        ]
        self._messages_sent = self.stats.counter("messages_sent")
        self._messages_delivered = self.stats.counter("messages_delivered")
        self._latency = self.stats.histogram("latency")
        self._sent_by_prefix: Dict[str, Counter] = {}

        # Horizon-sharding validation (see repro.sim.shard): when the
        # kernel carries tile groups, every delivery is classified and
        # cross-group arrivals are checked against the conservative
        # lookahead.  Plain ints, not StatSet counters, so the golden
        # counter dictionaries stay identical across kernel modes.
        groups = getattr(sim, "groups", None)
        self._group_of = groups.group_of if groups is not None else None
        self._lookahead = getattr(sim, "lookahead", 0)
        self.cross_group_delivered = 0
        self.lookahead_violations = 0
        self._injector = None
        self._transport = None
        # The callback handed to the fabric as the final-hop target.
        # Fault-free machines skip the _deliver/_arrive funnel entirely
        # and land straight in _dispatch; arming an injector or a
        # transport (property setters below) rebinds it.  ``send`` is
        # rebound the same way: without a transport it *is* ``inject``
        # (instance attribute, so senders skip the coverage-check frame
        # per message).
        self._delivery = self._dispatch
        self.send = self.inject

        self.probe = None
        """Optional checker event bus (:mod:`repro.verify`): every
        dispatched message is reported so the NoC-conservation monitor
        can check per-channel delivery order online."""

    @property
    def injector(self):
        """Optional :class:`repro.faults.FaultInjector` consulted at
        injection (extra delay) and final-hop delivery (drop/duplicate).
        ``None`` on fault-free machines: the hot path then matches the
        original network bit-for-bit."""
        return self._injector

    @injector.setter
    def injector(self, value) -> None:
        self._injector = value
        self._rebind_delivery()

    @property
    def transport(self):
        """Optional :class:`repro.faults.ReliableTransport` carrying
        ``msa.*``/``msa_cpu.*`` traffic exactly-once and in order."""
        return self._transport

    @transport.setter
    def transport(self, value) -> None:
        self._transport = value
        self._rebind_delivery()

    def _rebind_delivery(self) -> None:
        """Bind the tightest final-hop target the armed fault machinery
        allows: injector set -> the full verdict funnel; transport only
        -> sequencing without verdicts; neither -> straight dispatch.
        Each elided stage is one call frame per delivered message."""
        if self._injector is not None:
            self._delivery = self._deliver
        elif self._transport is not None:
            self._delivery = self._arrive
        else:
            self._delivery = self._dispatch
        self.send = self.inject if self._transport is None else self._send_covered

    def register(self, tile: TileId, prefix: str, handler: Handler) -> None:
        """Register the receiver for messages whose kind starts with
        ``prefix`` (e.g. ``"coh"`` or ``"msa"``) at ``tile``."""
        handlers = self._tile_handlers[tile]
        if prefix in handlers:
            raise SimulationError(
                f"handler already registered for {(tile, prefix)}"
            )
        handlers[prefix] = handler

    def _send_covered(self, message: Message) -> None:
        """``send`` with a reliable transport armed: accelerator traffic
        detours through it for exactly-once, in-order delivery.  On
        fault-free machines ``send`` is bound directly to ``inject``
        (see ``_rebind_delivery``); either way, a message is delivered
        to the destination tile's handler after routing latency plus
        contention."""
        transport = self._transport
        if message.prefix in transport.covered:
            transport.send(message)
            return
        self.inject(message)

    def inject(self, message: Message) -> None:
        """Put a message on the wire (no reliability layering; the
        transport's own sends and retransmissions come through here)."""
        message.injected_at = self.sim.now
        self._messages_sent.value += 1
        prefix = message.prefix
        sent = self._sent_by_prefix.get(prefix)
        if sent is None:
            sent = self._sent_by_prefix[prefix] = self.stats.counter(
                "sent." + prefix
            )
        sent.value += 1
        probe = self.probe
        if probe is not None and probe.noc_active:
            probe.emit(
                "noc_send", tid=message.src, tile=message.dst,
                aux=message.kind,
            )
        src = message.src
        row = self._route_rows[src]
        if row is None:
            row = self._route_rows[src] = [None] * len(self._route_rows)
        links = row[message.dst]
        if links is None:
            links = row[message.dst] = self.fabric.route(
                self.topology.links_on_route(src, message.dst)
            )
        injector = self._injector
        if injector is None:
            self.fabric.traverse(links, self._delivery, message)
        else:
            self.fabric.traverse(
                links, self._delivery, message, injector.send_delay(message)
            )

    def _deliver(self, message: Message) -> None:
        """Final-hop arrival: apply delivery faults, then hand covered
        traffic to the transport for ordering/deduplication."""
        if self._injector is not None:
            deliver, dup_after = self._injector.deliver_verdict(message)
            if dup_after is not None:
                # The duplicate skips the verdict (no fractal re-rolls).
                self.sim.schedule(dup_after, self._arrive, message)
            if not deliver:
                return
        self._arrive(message)

    def _arrive(self, message: Message) -> None:
        if self._transport is not None and message.rel_seq is not None:
            self._transport.receive(message, self._dispatch)
        else:
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        handler = self._tile_handlers[message.dst].get(message.prefix)
        if handler is None:
            raise SimulationError(
                f"no handler for {message.prefix!r} messages at tile "
                f"{message.dst} (message: {message})"
            )
        self._messages_delivered.value += 1
        latency = self.sim.now - message.injected_at
        self._latency.add(latency)
        group_of = self._group_of
        if group_of is not None and group_of[message.src] != group_of[message.dst]:
            self.cross_group_delivered += 1
            if latency < self._lookahead:
                self.lookahead_violations += 1
        if self.probe is not None:
            self.probe.emit(
                "noc_deliver",
                tid=message.src,
                tile=message.dst,
                aux=(message.kind, message.rel_seq),
            )
        handler(message)

    def round_trip_estimate(self, src: TileId, dst: TileId) -> int:
        """Uncontended request+response latency estimate (for docs/tests)."""
        hops = self.topology.hops(src, dst)
        one_way = self.params.injection_latency + hops * (
            self.params.router_latency
            + self.params.link_latency
            + self.params.flits_per_message
            - 1
        )
        return 2 * one_way
