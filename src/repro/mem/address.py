"""Address mapping: cache lines, home tiles, and workload address
allocation.

The LLC (and therefore the coherence directory *and* the MSA slice
responsible for a synchronization address) is distributed by cache-line
address: ``home = line_number % n_tiles``, the standard static
line-interleaved mapping for tiled CMPs.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import ConfigError
from repro.common.types import Address, TileId


class AddressMap:
    """Line/home arithmetic shared by caches, directories, and the MSA."""

    def __init__(self, n_tiles: int, line_size: int = 64):
        if line_size & (line_size - 1):
            raise ConfigError("line_size must be a power of two")
        self.n_tiles = n_tiles
        self.line_size = line_size
        self._line_shift = line_size.bit_length() - 1

    def line_of(self, addr: Address) -> int:
        return addr >> self._line_shift

    def line_base(self, addr: Address) -> Address:
        return (addr >> self._line_shift) << self._line_shift

    def home_of(self, addr: Address) -> TileId:
        """The tile owning the LLC/directory/MSA slice for ``addr``."""
        return self.line_of(addr) % self.n_tiles

    def home_of_line(self, line: int) -> TileId:
        return line % self.n_tiles

    def addr_with_home(self, home: TileId, index: int = 0) -> Address:
        """An address whose home is ``home``; ``index`` selects distinct
        lines with the same home (used by workload allocators)."""
        line = home + index * self.n_tiles
        return line << self._line_shift


class AddressAllocator:
    """Hands out non-overlapping addresses for workload data.

    Synchronization variables are placed one-per-line (no false sharing,
    matching how real benchmarks pad pthread objects), optionally pinned
    to a chosen home tile.  Plain data is allocated line-granular too.
    """

    def __init__(self, amap: AddressMap, base_line: int = 1 << 20):
        self.amap = amap
        self._next_line = base_line
        self._next_home_index = {}

    def line(self) -> Address:
        """A fresh cache-line-aligned address."""
        addr = self._next_line << (self.amap.line_size.bit_length() - 1)
        self._next_line += 1
        return addr

    def sync_var(self, home: Optional[TileId] = None) -> Address:
        """A fresh one-per-line synchronization address.

        With ``home`` given, the address maps to that tile (lets tests
        and workloads control MSA-slice placement and contention).
        """
        if home is None:
            return self.line()
        if not 0 <= home < self.amap.n_tiles:
            raise ConfigError(f"home {home} out of range")
        index = self._next_home_index.get(home, self.amap.n_tiles)
        self._next_home_index[home] = index + 1
        # Keep homed addresses out of the generic allocation range.
        return self.amap.addr_with_home(home, index + (1 << 22))

    def array(self, n_lines: int) -> Iterator[Address]:
        """``n_lines`` consecutive fresh line addresses."""
        for _ in range(n_lines):
            yield self.line()
