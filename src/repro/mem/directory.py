"""LLC slice with an inline MESI directory (one per tile).

The directory is *blocking per line*: while a transaction on a line is
in flight (waiting for invalidation or forward acks), later requests for
that line queue FIFO.  This serializes conflicting accesses through the
home, which is both simple and sufficient -- the effects the paper's
evaluation depends on (handoff latency, invalidation storms on
contended lines, hot-spot queuing at the home tile) all survive.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set

from repro.common.errors import ProtocolError
from repro.common.params import LLCParams
from repro.common.stats import StatSet
from repro.common.types import CoreId, TileId
from repro.noc.message import Message
from repro.noc.network import Network
from repro.sim.kernel import Simulator


@dataclass
class DirEntry:
    """Directory state for one line: I (no copies), S (sharers), or
    M (single owner holding E or M)."""

    sharers: Set[CoreId] = field(default_factory=set)
    owner: Optional[CoreId] = None
    touched: bool = False
    """Whether the LLC slice has ever held this line (cold-miss cost)."""

    @property
    def state(self) -> str:
        if self.owner is not None:
            return "M"
        if self.sharers:
            return "S"
        return "I"


@dataclass
class _Txn:
    """An in-flight directory transaction awaiting remote acks."""

    kind: str
    requestor: CoreId
    needed_acks: int = 0


class DirectorySlice:
    """The coherence home for lines mapping to this tile."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tile: TileId,
        params: LLCParams,
    ):
        self.sim = sim
        self.network = network
        self.tile = tile
        self.params = params
        self.stats = StatSet(f"dir.{tile}")
        self.entries: Dict[int, DirEntry] = {}
        self._busy: Dict[int, _Txn] = {}
        self._queues: Dict[int, Deque[Message]] = {}
        network.register(tile, "coh", self._on_message)

    def entry(self, line: int) -> DirEntry:
        if line not in self.entries:
            self.entries[line] = DirEntry()
        return self.entries[line]

    # ------------------------------------------------------------------
    # Message handling & per-line serialization
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        line = msg.payload["line"]
        if msg.kind in ("coh.inv_ack", "coh.fwd_ack"):
            self._on_ack(line)
            return
        if line in self._busy:
            self._queues.setdefault(line, deque()).append(msg)
            self.stats.counter("queued_requests").inc()
            return
        self._process(msg)

    def _process(self, msg: Message) -> None:
        line = msg.payload["line"]
        core = msg.payload["core"]
        if msg.kind == "coh.gets":
            self._do_gets(line, core)
        elif msg.kind == "coh.getm":
            self._do_getm(line, core)
        elif msg.kind == "coh.putm":
            self._do_putm(line, core)
        else:
            raise ProtocolError(f"directory {self.tile}: unknown {msg}")

    def _unblock(self, line: int) -> None:
        self._busy.pop(line, None)
        queue = self._queues.get(line)
        # Drain queued requests until one blocks the line again (a
        # request that completes synchronously must not strand the rest).
        while queue and line not in self._busy:
            self._process(queue.popleft())

    def _access_latency(self, entry: DirEntry) -> int:
        latency = self.params.slice_latency
        if not entry.touched:
            entry.touched = True
            latency += self.params.memory_latency
            self.stats.counter("cold_misses").inc()
        return latency

    def _reply(self, core: CoreId, kind: str, line: int, delay: int) -> None:
        """Send the data grant after the slice access latency.

        The line stays *busy* until the grant is injected: a later
        transaction could otherwise inject a forward/invalidate to the
        same core ahead of its data (the NoC is FIFO per source-
        destination pair, so injection order is arrival order)."""
        self._busy[line] = _Txn("reply", core)

        def inject():
            self.network.send(
                Message(src=self.tile, dst=core, kind=kind, payload={"line": line})
            )
            self._unblock(line)

        self.sim.schedule(delay, inject)

    def _fwd(self, core: CoreId, kind: str, line: int) -> None:
        self.network.send(
            Message(src=self.tile, dst=core, kind=kind, payload={"line": line})
        )

    # ------------------------------------------------------------------
    # Request state machines
    # ------------------------------------------------------------------
    def _do_gets(self, line: int, core: CoreId) -> None:
        entry = self.entry(line)
        self.stats.counter("gets").inc()
        delay = self._access_latency(entry)
        if entry.owner is None:
            if entry.sharers:
                entry.sharers.add(core)
                self._reply(core, "coh_l1.data_s", line, delay)
            else:
                # No copies: grant Exclusive (the E in MESI).
                entry.owner = core
                self._reply(core, "coh_l1.data_e", line, delay)
            return
        # Owned: fetch from owner, downgrade to shared.
        owner = entry.owner
        self._busy[line] = _Txn("gets", core, needed_acks=1)
        self._fwd(owner, "coh_l1.fwd_gets", line)

    def _do_getm(self, line: int, core: CoreId) -> None:
        entry = self.entry(line)
        self.stats.counter("getm").inc()
        delay = self._access_latency(entry)
        if entry.owner is None and not entry.sharers:
            entry.owner = core
            self._reply(core, "coh_l1.data_e", line, delay)
            return
        if entry.owner is not None:
            if entry.owner == core:
                raise ProtocolError(
                    f"dir {self.tile}: GetM from current owner {core} line {line}"
                )
            self._busy[line] = _Txn("getm", core, needed_acks=1)
            self._fwd(entry.owner, "coh_l1.fwd_getm", line)
            return
        # Shared: invalidate every other sharer, then grant.
        targets = [s for s in entry.sharers if s != core]
        if not targets:
            # Requestor is the only sharer: silent upgrade.
            entry.sharers.clear()
            entry.owner = core
            self._reply(core, "coh_l1.data_e", line, delay)
            return
        self._busy[line] = _Txn("getm", core, needed_acks=len(targets))
        self.stats.counter("invalidations_sent").inc(len(targets))
        for sharer in targets:
            self._fwd(sharer, "coh_l1.inv", line)

    def _do_putm(self, line: int, core: CoreId) -> None:
        entry = self.entry(line)
        if entry.owner == core:
            entry.owner = None
            self.stats.counter("writebacks").inc()
        # Stale PutM (ownership already moved on): ignore silently.

    def _on_ack(self, line: int) -> None:
        txn = self._busy.get(line)
        if txn is None:
            raise ProtocolError(f"dir {self.tile}: stray ack for line {line}")
        txn.needed_acks -= 1
        if txn.needed_acks > 0:
            return
        entry = self.entry(line)
        if txn.kind == "gets":
            old_owner = entry.owner
            entry.owner = None
            entry.sharers = {txn.requestor}
            if old_owner is not None:
                entry.sharers.add(old_owner)
            self._reply(
                txn.requestor, "coh_l1.data_s", line, self.params.slice_latency
            )
        else:  # getm
            entry.sharers.clear()
            entry.owner = txn.requestor
            self._reply(
                txn.requestor, "coh_l1.data_e", line, self.params.slice_latency
            )
