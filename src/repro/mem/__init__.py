"""Coherent memory hierarchy: private L1s and a distributed shared LLC
whose slices are the coherence homes (directory-based MESI).

Data values live in a single global backing store (word granularity);
the coherence protocol moves *permissions*, and a memory operation's
value takes effect at the operation's completion time.  Because MESI
serializes conflicting accesses, this is observationally equivalent to
moving data and far cheaper to simulate (see DESIGN.md).
"""

from repro.mem.address import AddressMap, AddressAllocator
from repro.mem.memsys import MemorySystem, MemoryFabric

__all__ = ["AddressMap", "AddressAllocator", "MemorySystem", "MemoryFabric"]
