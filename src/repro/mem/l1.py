"""Private L1 data cache with MESI states.

The cache serves its core's loads/stores/atomics and responds to
directory-initiated invalidations and forwards.  Values live in the
machine-wide backing store (see :mod:`repro.mem`); a memory operation
reads/writes that store at its completion instant, after the protocol
has granted sufficient permission, which preserves linearizability.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.common.params import CacheParams
from repro.common.stats import StatSet
from repro.common.types import CacheState, CoreId
from repro.noc.message import Message
from repro.noc.network import Network
from repro.sim.kernel import Future, Simulator


class _Op:
    """One in-flight memory operation from the core."""

    __slots__ = ("kind", "addr", "future", "value", "rmw_fn", "issued_at")

    def __init__(self, kind, addr, future, value=None, rmw_fn=None):
        self.kind = kind  # "load" | "store" | "rmw"
        self.addr = addr
        self.future = future
        self.value = value  # store value
        self.rmw_fn = rmw_fn
        self.issued_at = 0


class _Mshr:
    """Miss-status holding register: one per in-flight line."""

    __slots__ = ("line", "want_write", "ops")

    def __init__(self, line, want_write):
        self.line = line
        self.want_write = want_write
        self.ops: Deque[_Op] = deque()


_INVALID = CacheState.INVALID
_SHARED = CacheState.SHARED
_EXCLUSIVE = CacheState.EXCLUSIVE
_MODIFIED = CacheState.MODIFIED


class L1Cache:
    """One core's private L1 (MESI, set-associative, LRU)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        core_id: CoreId,
        params: CacheParams,
        backing_store: Dict[int, int],
        home_of_line: Callable[[int], int],
    ):
        self.sim = sim
        self.network = network
        self.core_id = core_id
        self.params = params
        self.backing_store = backing_store
        self.home_of_line = home_of_line
        self.stats = StatSet(f"l1.{core_id}")
        # set index -> OrderedDict[line -> CacheState]; most recent last.
        self._sets: Dict[int, "OrderedDict[int, CacheState]"] = {}
        self._mshrs: Dict[int, _Mshr] = {}
        self._set_mask = params.n_sets - 1
        self._line_shift = params.line_size.bit_length() - 1
        self._hit_latency = params.hit_latency
        # Every access touches two of these; bind them once (see
        # common/stats.py on hot-path counter binding).
        self._op_counts = {
            kind: self.stats.counter(f"{kind}s")
            for kind in ("load", "store", "rmw")
        }
        self._op_latency = {
            kind: self.stats.histogram(f"{kind}_latency")
            for kind in ("load", "store", "rmw")
        }
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._hit_replays = self.stats.counter("hit_replays")
        self._invalidations = self.stats.counter("invalidations")
        self._evictions = self.stats.counter("evictions")
        network.register(core_id, "coh_l1", self._on_message)

    # ------------------------------------------------------------------
    # Core-facing API
    # ------------------------------------------------------------------
    def load(self, addr: int) -> Future:
        return self._submit(_Op("load", addr, self.sim.future()))

    def store(self, addr: int, value: int) -> Future:
        return self._submit(_Op("store", addr, self.sim.future(), value=value))

    def rmw(self, addr: int, fn: Callable[[int], int]) -> Future:
        """Atomic read-modify-write; the future resolves to the *old*
        value.  Requires write permission, like real atomics."""
        return self._submit(_Op("rmw", addr, self.sim.future(), rmw_fn=fn))

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def _set_of(self, line: int) -> "OrderedDict[int, CacheState]":
        index = line & self._set_mask
        bucket = self._sets.get(index)
        if bucket is None:
            bucket = self._sets[index] = OrderedDict()
        return bucket

    def state_of(self, line: int) -> CacheState:
        return self._set_of(line).get(line, CacheState.INVALID)

    def _touch(self, line: int) -> None:
        bucket = self._set_of(line)
        if line in bucket:
            bucket.move_to_end(line)

    def _set_state(self, line: int, state: CacheState) -> None:
        bucket = self._set_of(line)
        if state is CacheState.INVALID:
            bucket.pop(line, None)
        else:
            bucket[line] = state
            bucket.move_to_end(line)

    def _sufficient(self, state: CacheState, op: _Op) -> bool:
        if op.kind == "load":
            return state.can_read
        return state.can_write

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------
    def _submit(self, op: _Op) -> Future:
        op.issued_at = self.sim.now
        self._op_counts[op.kind].value += 1
        self._start(op)
        return op.future

    def _start(self, op: _Op) -> None:
        line = op.addr >> self._line_shift
        # _set_of inlined: this and _complete_if_valid bracket every
        # access, so the helper call was two frames per operation.
        sets = self._sets
        index = line & self._set_mask
        bucket = sets.get(index)
        if bucket is None:
            bucket = sets[index] = OrderedDict()
        state = bucket.get(line, _INVALID)
        if (
            state is not _INVALID
            if op.kind == "load"
            else (state is _MODIFIED or state is _EXCLUSIVE)
        ):
            # Hit: the line is necessarily present in the bucket.
            self._hits.value += 1
            bucket.move_to_end(line)
            self.sim.schedule(
                self._hit_latency, self._complete_if_valid, (op, line)
            )
            return
        self._miss(op, line)

    def _complete_if_valid(self, op_line) -> None:
        """Permission may have been revoked during the hit latency
        (a racing invalidation); re-check and retry if so."""
        op, line = op_line
        sets = self._sets
        index = line & self._set_mask
        bucket = sets.get(index)
        if bucket is None:
            bucket = sets[index] = OrderedDict()
        state = bucket.get(line, _INVALID)
        kind = op.kind
        if (
            state is _INVALID
            if kind == "load"
            else not (state is _MODIFIED or state is _EXCLUSIVE)
        ):
            self._hit_replays.value += 1
            self._start(op)
            return
        if kind != "load" and state is _EXCLUSIVE:
            bucket[line] = _MODIFIED
            bucket.move_to_end(line)
        self._perform(op)

    def _perform(self, op: _Op) -> None:
        """Apply the operation to the backing store and resolve it."""
        kind = op.kind
        self._op_latency[kind].add(self.sim.now - op.issued_at)
        if kind == "load":
            op.future.complete(self.backing_store.get(op.addr, 0))
        elif kind == "store":
            self.backing_store[op.addr] = op.value
            op.future.complete(None)
        else:  # rmw
            old = self.backing_store.get(op.addr, 0)
            self.backing_store[op.addr] = op.rmw_fn(old)
            op.future.complete(old)

    def _miss(self, op: _Op, line: int) -> None:
        self._misses.value += 1
        want_write = op.kind != "load"
        mshr = self._mshrs.get(line)
        if mshr is not None:
            # Line transaction already in flight; piggyback.  If this op
            # needs more permission than requested, it will re-issue an
            # upgrade after the fill (see _fill).
            mshr.ops.append(op)
            return
        mshr = _Mshr(line=line, want_write=want_write)
        mshr.ops.append(op)
        self._mshrs[line] = mshr
        kind = "coh.getm" if want_write else "coh.gets"
        self._send_home(line, kind)

    def _send_home(self, line: int, kind: str) -> None:
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of_line(line),
                kind=kind,
                payload={"line": line, "core": self.core_id},
            )
        )

    # ------------------------------------------------------------------
    # Directory-facing message handling
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        line = msg.payload["line"]
        if msg.kind == "coh_l1.data_s":
            self._fill(line, _SHARED)
        elif msg.kind == "coh_l1.data_e":
            self._fill(line, _EXCLUSIVE)
        elif msg.kind == "coh_l1.inv":
            self._set_state(line, _INVALID)
            self._invalidations.value += 1
            self._ack_home(line, "coh.inv_ack")
        elif msg.kind == "coh_l1.fwd_gets":
            # Downgrade to S; dirty data is already in the backing store.
            if self.state_of(line) is not _INVALID:
                self._set_state(line, _SHARED)
            self._ack_home(line, "coh.fwd_ack")
        elif msg.kind == "coh_l1.fwd_getm":
            self._set_state(line, _INVALID)
            self._invalidations.value += 1
            self._ack_home(line, "coh.fwd_ack")
        else:
            raise ValueError(f"L1 {self.core_id}: unknown message {msg}")

    def _ack_home(self, line: int, kind: str) -> None:
        self.network.send(
            Message(
                src=self.core_id,
                dst=self.home_of_line(line),
                kind=kind,
                payload={"line": line, "core": self.core_id},
            )
        )

    def _fill(self, line: int, state: CacheState) -> None:
        self._evict_for(line)
        self._set_state(line, state)
        mshr = self._mshrs.pop(line, None)
        if mshr is None:
            return
        # Ops the fill satisfies are performed *atomically at fill time*:
        # the requestor must get to use the line it fetched before a
        # forwarded invalidation can steal it, or two cores contending
        # for the same line livelock (each steals the other's line
        # inside its fill-to-use window).  The miss path already charged
        # the access latency.  Ops needing more permission (store after
        # an S fill) re-enter the miss path and issue an upgrade.
        for op in mshr.ops:
            current = self.state_of(line)
            if self._sufficient(current, op):
                if op.kind != "load" and current is _EXCLUSIVE:
                    self._set_state(line, _MODIFIED)
                self._perform(op)
            else:
                self._start(op)

    def _evict_for(self, line: int) -> None:
        """Make room in the target set, writing back M/E victims."""
        bucket = self._set_of(line)
        if line in bucket or len(bucket) < self.params.associativity:
            return
        victim, vstate = next(iter(bucket.items()))
        del bucket[victim]
        self._evictions.value += 1
        if vstate is _MODIFIED or vstate is _EXCLUSIVE:
            self._send_home(victim, "coh.putm")
