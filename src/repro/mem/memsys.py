"""Memory-system assembly and the per-core facade.

:class:`MemoryFabric` builds one directory slice per tile and one L1 per
core over a shared :class:`~repro.noc.network.Network`;
:class:`MemorySystem` is the handle a core/thread uses to issue memory
operations.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.params import MachineParams
from repro.common.types import CoreId
from repro.mem.address import AddressMap
from repro.mem.directory import DirectorySlice
from repro.mem.l1 import L1Cache
from repro.noc.network import Network
from repro.sim.kernel import Future, Simulator


class MemorySystem:
    """One core's view of memory."""

    def __init__(self, l1: L1Cache):
        self._l1 = l1
        self.core_id = l1.core_id

    def load(self, addr: int) -> Future:
        return self._l1.load(addr)

    def store(self, addr: int, value: int) -> Future:
        return self._l1.store(addr, value)

    def rmw(self, addr: int, fn: Callable[[int], int]) -> Future:
        """Atomic read-modify-write; resolves to the old value."""
        return self._l1.rmw(addr, fn)

    def fetch_add(self, addr: int, delta: int = 1) -> Future:
        return self._l1.rmw(addr, lambda v: v + delta)

    def test_and_set(self, addr: int) -> Future:
        """Resolves to the old value (0 means we won the lock word)."""
        return self._l1.rmw(addr, lambda v: 1)

    def compare_and_swap(self, addr: int, expect: int, new: int) -> Future:
        """Resolves to the old value; the swap applied iff old == expect."""
        return self._l1.rmw(addr, lambda v: new if v == expect else v)


class MemoryFabric:
    """All caches, directories, and the backing store of one machine."""

    def __init__(self, sim: Simulator, network: Network, params: MachineParams):
        self.sim = sim
        self.network = network
        self.params = params
        self.amap = AddressMap(params.n_cores, params.l1.line_size)
        self.backing_store: Dict[int, int] = {}
        self.directories: List[DirectorySlice] = [
            DirectorySlice(sim, network, tile, params.llc)
            for tile in range(params.n_cores)
        ]
        self.l1s: List[L1Cache] = [
            L1Cache(
                sim,
                network,
                core,
                params.l1,
                self.backing_store,
                self.amap.home_of_line,
            )
            for core in range(params.n_cores)
        ]
        # The facade is stateless per core; threads fetch one per memory
        # operation, so hand out a single cached instance per core.
        self._memory_systems: List[MemorySystem] = [
            MemorySystem(l1) for l1 in self.l1s
        ]

    def memory_system(self, core: CoreId) -> MemorySystem:
        return self._memory_systems[core]

    def stat_sets(self):
        """Yield ``(prefix, StatSet, labels)`` for every stats-bearing
        memory component (the observability registry's ingest shape)."""
        for tile, directory in enumerate(self.directories):
            yield "dir.", directory.stats, {"tile": tile}
        for core, l1 in enumerate(self.l1s):
            yield "l1.", l1.stats, {"core": core}

    def peek(self, addr: int) -> int:
        """Read the backing store without any simulated traffic
        (debug/verification only)."""
        return self.backing_store.get(addr, 0)

    def poke(self, addr: int, value: int) -> None:
        """Write the backing store directly (workload initialization)."""
        self.backing_store[addr] = value

    def check_invariants(self) -> None:
        """MESI safety: at most one owner per line, owner excludes
        sharers at other cores, directory sharers are a superset of the
        caches actually holding the line.  Raises on violation."""
        from repro.common.errors import ProtocolError
        from repro.common.types import CacheState

        holders: Dict[int, List] = {}
        for l1 in self.l1s:
            for bucket in l1._sets.values():
                for line, state in bucket.items():
                    holders.setdefault(line, []).append((l1.core_id, state))
        for line, who in holders.items():
            writers = [c for c, s in who if s.can_write]
            if len(writers) > 1:
                raise ProtocolError(f"line {line}: multiple writers {writers}")
            if writers and len(who) > 1:
                raise ProtocolError(
                    f"line {line}: writer {writers[0]} coexists with {who}"
                )
