"""Regression gate: compare two benchmark documents.

Two independent checks, in severity order:

1. **Determinism** (hard failure, no threshold): points present in both
   documents must report identical simulated ``cycles`` and ``events``.
   An optimization that changes either has changed the machine model,
   invalidating every number the repro reports.
2. **Throughput**: a point regresses when its events/sec falls more
   than ``threshold`` below the baseline, after normalizing the
   baseline by the ratio of the two hosts' calibration scores (so a
   baseline taken on a fast workstation doesn't fail CI on a slow
   runner, and vice versa).

Points that appear in only one document are reported but never fail
the gate (benchmark suites are allowed to grow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

DEFAULT_THRESHOLD = 0.15


@dataclass
class CompareResult:
    """Outcome of comparing a new benchmark document to a baseline."""

    threshold: float
    host_ratio: float
    """new_calibration / old_calibration; >1 means the new host is
    faster, and the baseline expectation is scaled up accordingly."""

    regressions: List[str] = field(default_factory=list)
    determinism_breaks: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    unmatched: List[str] = field(default_factory=list)
    lines: List[str] = field(default_factory=list)
    mode_mismatch: str = ""
    """Non-empty when the two documents were recorded under different
    simulation-kernel modes; names both documents and their modes (e.g.
    ``old.json is 'legacy', new.json is 'sharded'``).  The compare is
    refused outright, because wall-clock numbers from different kernels
    are not a regression signal for each other."""

    @property
    def ok(self) -> bool:
        return (
            not self.regressions
            and not self.determinism_breaks
            and not self.mode_mismatch
        )

    def describe(self) -> str:
        out = list(self.lines)
        if self.mode_mismatch:
            out.append(
                f"REFUSED: scheduler mode mismatch ({self.mode_mismatch}) "
                f"-- re-record one document under the other's "
                f"REPRO_SIM_SHARDING mode to compare throughput"
            )
            return "\n".join(out)
        if self.determinism_breaks:
            out.append(
                f"DETERMINISM BROKEN on {len(self.determinism_breaks)} "
                f"point(s) -- simulated results changed"
            )
        if self.regressions:
            out.append(
                f"FAIL: {len(self.regressions)} point(s) regressed more "
                f"than {self.threshold:.0%}"
            )
        if self.ok:
            out.append(
                f"ok: no events/sec regression beyond {self.threshold:.0%} "
                f"(host ratio {self.host_ratio:.2f})"
            )
        return "\n".join(out)


def compare(
    new: Dict, old: Dict, threshold: float = DEFAULT_THRESHOLD
) -> CompareResult:
    """Gate ``new`` against baseline ``old``; see module docstring."""
    old_cal = old.get("calibration_kops") or 0.0
    new_cal = new.get("calibration_kops") or 0.0
    host_ratio = (new_cal / old_cal) if old_cal and new_cal else 1.0
    result = CompareResult(threshold=threshold, host_ratio=host_ratio)

    # Scheduler-mode gate: refuse when BOTH documents are stamped and
    # the stamps differ.  Unstamped (pre-sharding) baselines compare
    # normally, so historical documents keep working as baselines.
    old_mode = old.get("scheduler_mode")
    new_mode = new.get("scheduler_mode")
    if old_mode and new_mode and old_mode != new_mode:
        # Name both documents, not just the modes: the operator's next
        # step is re-recording one specific file.
        old_name = old.get("source_path") or old.get("label") or "baseline"
        new_name = new.get("source_path") or new.get("label") or "new"
        result.mode_mismatch = (
            f"{old_name} is {old_mode!r}, {new_name} is {new_mode!r}"
        )
        return result

    old_by_key = {p["key"]: p for p in old.get("points", ())}
    new_by_key = {p["key"]: p for p in new.get("points", ())}
    for key in sorted(set(old_by_key) | set(new_by_key)):
        if key not in old_by_key or key not in new_by_key:
            result.unmatched.append(key)
            result.lines.append(f"  {key:<44} (only in one document)")
            continue
        o, n = old_by_key[key], new_by_key[key]
        if (o["cycles"], o["events"]) != (n["cycles"], n["events"]):
            result.determinism_breaks.append(key)
            result.lines.append(
                f"  {key:<44} DETERMINISM: cycles {o['cycles']}->"
                f"{n['cycles']}, events {o['events']}->{n['events']}"
            )
            continue
        expected = o["events_per_sec"] * host_ratio
        ratio = n["events_per_sec"] / expected if expected else 1.0
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSION"
            result.regressions.append(key)
        elif ratio > 1.0 + threshold:
            verdict = "improved"
            result.improvements.append(key)
        result.lines.append(
            f"  {key:<44} {ratio:>6.2f}x vs host-adjusted baseline "
            f"({verdict})"
        )
    return result
