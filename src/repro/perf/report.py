"""Benchmark document I/O and the human-readable table."""

from __future__ import annotations

import json
from typing import Dict, Optional

SCHEMA = "repro.perf/1"


def write_doc(doc: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_doc(path: str) -> Dict:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    # Remember where this document came from so downstream errors
    # (e.g. compare()'s scheduler-mode refusal) can name the file.
    doc["source_path"] = str(path)
    return doc


def _fmt_rate(eps: float) -> str:
    if eps >= 1e6:
        return f"{eps / 1e6:.2f}M"
    if eps >= 1e3:
        return f"{eps / 1e3:.0f}k"
    return f"{eps:.0f}"


def render_table(doc: Dict, baseline: Optional[Dict] = None) -> str:
    """The human table; with ``baseline``, adds a speedup column
    (events/sec ratio, not host-normalized -- use compare() for gating)."""
    base_by_key = {
        p["key"]: p for p in (baseline or {}).get("points", ())
    }
    header = f"{'point':<44} {'events':>10} {'wall':>8} {'ev/s':>8}"
    if base_by_key:
        header += f" {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for p in doc["points"]:
        line = (
            f"{p['key']:<44} {p['events']:>10,} {p['wall_s']:>7.3f}s "
            f"{_fmt_rate(p['events_per_sec']):>8}"
        )
        old = base_by_key.get(p["key"])
        if base_by_key:
            if old and old.get("events_per_sec"):
                ratio = p["events_per_sec"] / old["events_per_sec"]
                line += f" {ratio:>7.2f}x"
            else:
                line += f" {'-':>8}"
        lines.append(line)
    rss = max(
        (p.get("peak_rss_kb") or 0) for p in doc["points"]
    ) if doc["points"] else 0
    lines.append(
        f"calibration {doc.get('calibration_kops', 0):,.0f} kops/s; "
        f"peak RSS {rss / 1024:.0f} MiB"
    )
    return "\n".join(lines)
