"""Measured performance: microbenchmarks, reports, regression gates.

The simulator's *results* are cycle counts and are bit-for-bit
deterministic; its *speed* (host events/sec) is what this subsystem
measures.  The two are kept rigorously separate: every benchmark record
carries both the perf metrics (wall time, events/sec, peak RSS) and the
determinism fingerprint (simulated cycles, events processed), and
:func:`repro.perf.compare.compare` hard-fails when the fingerprints of
two benchmark documents disagree -- a perf "win" that changes simulated
behaviour is a bug, not a win.

Entry points::

    python -m repro perf                          # smoke suite + table
    python -m repro perf --suite headline --out BENCH_PR4.json
    python -m repro perf --compare benchmarks/BENCH_BASELINE.json
    python -m repro perf --profile 25             # cProfile top-25

or from code::

    from repro import api
    doc = api.bench(suite="smoke", repeat=3)

See docs/PERF.md for the metric definitions, the JSON schema, and the
determinism contract future optimizations must honour.
"""

from repro.perf.bench import (
    SUITES,
    BenchPoint,
    calibrate,
    measure_point,
    run_suite,
)
from repro.perf.compare import CompareResult, compare
from repro.perf.report import load_doc, render_table, write_doc

__all__ = [
    "BenchPoint",
    "SUITES",
    "calibrate",
    "measure_point",
    "run_suite",
    "compare",
    "CompareResult",
    "load_doc",
    "render_table",
    "write_doc",
]
