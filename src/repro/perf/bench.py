"""Microbenchmark driver: events/sec, wall time, peak RSS per point.

A *point* is one (config, workload, cores, scale) simulation.  Each
point is run ``repeat`` times on freshly built machines; wall time is
the best repeat (least scheduler noise), while the simulated cycle and
event counts must be identical across repeats -- a free determinism
check on every benchmark run.

Host-speed normalization: absolute events/sec numbers are only
comparable on the same machine, so every document also records a
*calibration* score (a fixed pure-Python workload, see
:func:`calibrate`).  :func:`repro.perf.compare.compare` uses the ratio
of calibration scores to translate a baseline taken on one host into
an expectation on another.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.configs import build_machine
from repro.harness.jobs import _instantiate, resolve_factory
from repro.harness.runner import run_workload

DEFAULT_SEED = 2015
DEFAULT_REPEAT = 3


@dataclass(frozen=True)
class BenchPoint:
    """One benchmarkable (config, workload, cores, scale) simulation."""

    config: str
    workload: str
    cores: int = 16
    scale: float = 1.0

    @property
    def key(self) -> str:
        return f"{self.config}/{self.workload}/c{self.cores}/s{self.scale:g}"

    @classmethod
    def parse(cls, spec: str) -> "BenchPoint":
        """Parse ``config:workload[:cores[:scale]]`` CLI specs."""
        parts = spec.split(":")
        if not 2 <= len(parts) <= 4:
            raise ValueError(
                f"bad point spec {spec!r}; want config:workload[:cores[:scale]]"
            )
        cores = int(parts[2]) if len(parts) > 2 else 16
        scale = float(parts[3]) if len(parts) > 3 else 1.0
        return cls(parts[0], parts[1], cores, scale)


#: The benchmark suites.  ``smoke`` is the CI gate (seconds); ``headline``
#: is the set the >=2x tentpole target is measured on (tens of seconds).
SUITES: Dict[str, Sequence[BenchPoint]] = {
    "smoke": (
        BenchPoint("msa-omu-2", "streamcluster", 16, 1.0),
        BenchPoint("pthread", "streamcluster", 16, 1.0),
        BenchPoint("msa-omu-2", "fluidanimate", 16, 1.0),
    ),
    "headline": (
        BenchPoint("msa-omu-2", "streamcluster", 64, 8.0),
        BenchPoint("msa-omu-2", "fluidanimate", 64, 2.0),
        BenchPoint("pthread", "streamcluster", 64, 4.0),
        BenchPoint("mcs-tour", "streamcluster", 64, 4.0),
        BenchPoint("msa-omu-2", "canneal", 64, 2.0),
        BenchPoint("ideal", "streamcluster", 64, 8.0),
        # The scaling point: event density per cycle grows with the
        # mesh, which is exactly where the sharded kernel's batched
        # drains pay off (see docs/PERF.md).
        BenchPoint("msa-omu-2", "streamcluster", 256, 8.0),
    ),
}


def calibrate(iters: int = 2_000_000) -> float:
    """Host-speed score in kops/sec: a fixed pure-Python loop whose cost
    tracks interpreter dispatch speed (what the simulator spends its
    time on), *not* this repo's code -- so the score is independent of
    the optimizations being measured."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(iters):
            acc += i & 7
        best = min(best, time.perf_counter() - t0)
    assert acc >= 0
    return iters / best / 1000.0


def _peak_rss_kb() -> Optional[int]:
    """Process high-water RSS in KiB (monotonic over the process life;
    meaningful as a ceiling, not a per-point delta)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes
        rss //= 1024
    return int(rss)


def measure_point(
    point: BenchPoint,
    repeat: int = DEFAULT_REPEAT,
    seed: int = DEFAULT_SEED,
    profile: int = 0,
) -> Dict:
    """Run one point ``repeat`` times; return its benchmark record.

    With ``profile`` > 0, one extra profiled run prints the top-N
    functions by self time (the profiled run is never timed).
    """
    factory = resolve_factory(point.workload)
    walls: List[float] = []
    fingerprint = None
    for _ in range(max(1, repeat)):
        machine = build_machine(point.config, n_cores=point.cores, seed=seed)
        workload = _instantiate(factory, point.cores, point.scale)
        t0 = time.perf_counter()
        result = run_workload(machine, workload, check=False)
        wall = time.perf_counter() - t0
        walls.append(wall)
        this = (result.cycles, machine.sim.events_processed)
        if fingerprint is None:
            fingerprint = this
        elif this != fingerprint:
            raise AssertionError(
                f"{point.key}: nondeterministic repeat -- "
                f"{this} != {fingerprint}"
            )
    if profile:
        machine = build_machine(point.config, n_cores=point.cores, seed=seed)
        workload = _instantiate(factory, point.cores, point.scale)
        prof = cProfile.Profile()
        prof.enable()
        run_workload(machine, workload, check=False)
        prof.disable()
        print(f"\n--- profile: {point.key} (top {profile} by self time) ---")
        pstats.Stats(prof).sort_stats("tottime").print_stats(profile)
    cycles, events = fingerprint
    best = min(walls)
    info = machine.sharding_info()
    if info.get("lookahead_violations"):
        raise AssertionError(
            f"{point.key}: {info['lookahead_violations']} cross-group "
            f"deliveries beat the conservative lookahead -- the horizon "
            f"derivation is wrong for this configuration"
        )
    return {
        "key": point.key,
        "config": point.config,
        "workload": point.workload,
        "cores": point.cores,
        "scale": point.scale,
        "seed": seed,
        "repeats": len(walls),
        "cycles": cycles,
        "events": events,
        "wall_s": round(best, 6),
        "wall_all_s": [round(w, 6) for w in walls],
        "events_per_sec": round(events / best, 1) if best > 0 else 0.0,
        "peak_rss_kb": _peak_rss_kb(),
        # Scheduler provenance: which kernel produced these numbers.
        # compare() refuses to gate documents taken under different
        # modes (wall-clock numbers from different kernels are not a
        # regression signal for each other).
        "scheduler": {
            "mode": info["mode"],
            "n_groups": info.get("n_groups", 1),
            "lookahead": info.get("lookahead", 0),
            "batch_density": info.get("batch_density", 0.0),
            "cross_group_delivered": info.get("cross_group_delivered", 0),
            "topology": f"mesh-{point.cores}",
        },
    }


def run_suite(
    points: Sequence[BenchPoint],
    repeat: int = DEFAULT_REPEAT,
    seed: int = DEFAULT_SEED,
    label: str = "",
    profile: int = 0,
    progress: bool = False,
) -> Dict:
    """Measure every point; return the benchmark document (JSON-ready)."""
    import platform

    records = []
    for point in points:
        if progress:
            print(f"bench: {point.key} ...", file=sys.stderr, flush=True)
        records.append(
            measure_point(point, repeat=repeat, seed=seed, profile=profile)
        )
    modes = {r["scheduler"]["mode"] for r in records}
    return {
        "schema": "repro.perf/1",
        "label": label,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_kops": round(calibrate(), 1),
        # Document-level scheduler mode ("mixed" when points disagree,
        # which only happens with hand-built suites): the compare gate
        # refuses to compare documents taken under different modes.
        "scheduler_mode": modes.pop() if len(modes) == 1 else "mixed",
        "points": records,
    }
