"""Parameter-sweep utilities and CSV export.

Experiments beyond the paper's fixed grids (sensitivity studies, new
configurations) share the same pattern: run a cartesian grid of
(config, workload, cores, knobs), collect :class:`RunResult` rows, and
export them.  :func:`sweep` runs such a grid; :func:`to_csv` writes the
rows in a flat, spreadsheet-friendly form.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.harness.configs import build_machine
from repro.harness.runner import RunResult, run_workload


@dataclass
class SweepPoint:
    """One grid point and its result."""

    config: str
    workload: str
    n_cores: int
    scale: float
    result: RunResult
    extras: Dict[str, float] = field(default_factory=dict)


def sweep(
    configs: Sequence[str],
    workload_factories: Dict[str, Callable],
    cores: Sequence[int] = (16,),
    scale: float = 1.0,
    seed: int = 2015,
    machine_hook: Optional[Callable] = None,
) -> List[SweepPoint]:
    """Run every (config, workload, cores) combination.

    ``workload_factories`` maps name -> factory(n_threads, scale).
    ``machine_hook(machine)`` runs after machine construction (for
    enabling tracing, poking parameters, ...).
    """
    points: List[SweepPoint] = []
    for n in cores:
        for name, factory in workload_factories.items():
            for config in configs:
                machine = build_machine(config, n_cores=n, seed=seed)
                if machine_hook is not None:
                    machine_hook(machine)
                result = run_workload(machine, factory(n, scale), config=config)
                points.append(
                    SweepPoint(
                        config=config,
                        workload=name,
                        n_cores=n,
                        scale=scale,
                        result=result,
                    )
                )
    return points


def add_speedups(points: List[SweepPoint], baseline_config: str) -> None:
    """Annotate each point with speedup over the same (workload, cores)
    point of ``baseline_config``."""
    baselines = {
        (p.workload, p.n_cores): p.result.cycles
        for p in points
        if p.config == baseline_config
    }
    for p in points:
        base = baselines.get((p.workload, p.n_cores))
        if base:
            p.extras["speedup"] = base / p.result.cycles


CSV_COLUMNS = (
    "config",
    "workload",
    "n_cores",
    "scale",
    "cycles",
    "msa_coverage",
    "speedup",
)


def to_csv(points: Iterable[SweepPoint], path: Optional[str] = None) -> str:
    """Serialize sweep points to CSV; returns the text (and writes to
    ``path`` when given)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for p in points:
        coverage = p.result.msa_coverage
        writer.writerow(
            [
                p.config,
                p.workload,
                p.n_cores,
                p.scale,
                p.result.cycles,
                f"{coverage:.4f}" if coverage is not None else "",
                f"{p.extras['speedup']:.4f}" if "speedup" in p.extras else "",
            ]
        )
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text


def from_csv(text: str) -> List[Dict[str, str]]:
    """Parse a sweep CSV back into row dicts (round-trip helper)."""
    reader = csv.DictReader(io.StringIO(text))
    return list(reader)
