"""Parameter-sweep utilities and CSV export.

Experiments beyond the paper's fixed grids (sensitivity studies, new
configurations) share the same pattern: run a cartesian grid of
(config, workload, cores, knobs), collect :class:`RunResult` rows, and
export them.  :func:`sweep` runs such a grid -- through the parallel
:mod:`repro.harness.jobs` engine, so grids fan out across worker
processes and repeat runs are served from the result cache;
:func:`to_csv` writes the rows in a flat, spreadsheet-friendly form.
"""

from __future__ import annotations

import csv
import io
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.common.errors import ConfigError, SimulationError
from repro.harness.configs import build_machine
from repro.harness.jobs import Engine, JobSpec
from repro.harness.runner import RunResult, run_workload


@dataclass
class SweepPoint:
    """One grid point and its result."""

    config: str
    workload: str
    n_cores: int
    scale: float
    result: RunResult
    extras: Dict[str, float] = field(default_factory=dict)


def sweep(
    configs: Sequence[str],
    workload_factories: Dict[str, Callable],
    cores: Sequence[int] = (16,),
    scale: float = 1.0,
    seed: int = 2015,
    machine_hook: Optional[Callable] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    manifest=None,
    progress=False,
    engine: Optional[Engine] = None,
    checkers: Sequence[str] = (),
    params: Optional[Dict] = None,
    fault_plan=None,
) -> List[SweepPoint]:
    """Run every (config, workload, cores) combination.

    ``workload_factories`` maps name -> factory(n_threads, scale).
    ``workers``/``cache_dir``/``manifest``/``progress`` configure the
    :class:`repro.harness.jobs.Engine` the grid runs on (or pass a
    pre-built ``engine``); per-point results are deterministic, so the
    parallel path returns bit-identical results to the serial one.

    ``params`` applies :class:`MachineParams` overrides to every point
    of the grid -- top-level fields or dotted scalar paths like
    ``"msa.entries_per_tile"`` (see ``MachineParams.with_overrides``);
    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) runs the whole
    grid under fault injection.  Both are part of each point's cache
    key, so overridden grids never collide with plain ones.

    ``machine_hook(machine)`` runs after machine construction (for
    enabling tracing, poking parameters, ...).  Hooks see the live
    machine, which cannot cross a process boundary or a result cache,
    so a hooked sweep always runs serially in-process and uncached.
    """
    if machine_hook is not None:
        if params or fault_plan is not None:
            raise ConfigError(
                "machine_hook sweeps run through the legacy in-process "
                "path, which ignores params/fault_plan; apply overrides "
                "inside the hook instead"
            )
        return _sweep_hooked(
            configs, workload_factories, cores, scale, seed, machine_hook,
            checkers,
        )
    specs = []
    for n in cores:
        for name, factory in workload_factories.items():
            for config in configs:
                specs.append(
                    JobSpec(
                        config=config,
                        workload=name,
                        cores=n,
                        scale=scale,
                        seed=seed,
                        params=dict(params) if params else {},
                        factory=factory,
                        checkers=tuple(checkers),
                        fault_plan=fault_plan,
                    )
                )
    if engine is None:
        engine = Engine(
            workers=workers,
            cache_dir=cache_dir,
            manifest=manifest,
            progress=progress,
        )
    points: List[SweepPoint] = []
    failures: List[str] = []
    for job in engine.run(specs):
        if not job.ok:
            failures.append(f"{job.spec.describe()}: {job.error}")
            continue
        points.append(
            SweepPoint(
                config=job.spec.config,
                workload=job.spec.workload,
                n_cores=job.spec.cores,
                scale=job.spec.scale,
                result=job.result,
            )
        )
    if failures:
        raise SimulationError(
            "sweep points failed after retries: " + "; ".join(failures)
        )
    return points


def _sweep_hooked(
    configs, workload_factories, cores, scale, seed, machine_hook,
    checkers=(),
) -> List[SweepPoint]:
    """Legacy in-process path for sweeps with a machine hook."""
    points: List[SweepPoint] = []
    for n in cores:
        for name, factory in workload_factories.items():
            for config in configs:
                machine = build_machine(config, n_cores=n, seed=seed)
                machine_hook(machine)
                result = run_workload(
                    machine, factory(n, scale), config=config,
                    checkers=tuple(checkers),
                )
                points.append(
                    SweepPoint(
                        config=config,
                        workload=name,
                        n_cores=n,
                        scale=scale,
                        result=result,
                    )
                )
    return points


def add_speedups(points: List[SweepPoint], baseline_config: str) -> None:
    """Annotate each point with speedup over the same (workload, cores)
    point of ``baseline_config``."""
    baselines = {
        (p.workload, p.n_cores): p.result.cycles
        for p in points
        if p.config == baseline_config
    }
    for p in points:
        base = baselines.get((p.workload, p.n_cores))
        if base is None:
            continue
        if base == 0 or p.result.cycles == 0:
            warnings.warn(
                f"speedup undefined for ({p.workload}, {p.config}, "
                f"{p.n_cores} cores): "
                + (
                    f"baseline {baseline_config!r} ran for 0 cycles"
                    if base == 0
                    else "point ran for 0 cycles"
                ),
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        p.extras["speedup"] = base / p.result.cycles


#: workload_metrics key -> CSV extras column for request-latency SLOs.
REQUEST_METRIC_COLUMNS = {
    "traffic.p50": "p50",
    "traffic.p99": "p99",
    "traffic.p999": "p999",
    "traffic.goodput_rpk": "goodput_rpk",
    "traffic.offered_rpk": "offered_rpk",
    "traffic.shed": "shed",
    "traffic.timeout": "timeout",
}


def add_request_metrics(points: List[SweepPoint]) -> None:
    """Copy request-latency SLO metrics into CSV extras columns.

    Open-loop traffic points (:mod:`repro.traffic`) report sojourn
    percentiles and goodput in ``RunResult.workload_metrics``; lifting
    them into ``extras`` makes load-sweep CSVs directly plottable
    (offered load vs p99) without digging through result JSON.  Points
    without traffic metrics are left untouched, so this is safe to call
    on any sweep.
    """
    for p in points:
        metrics = p.result.workload_metrics or {}
        for key, column in REQUEST_METRIC_COLUMNS.items():
            if key in metrics:
                p.extras[column] = metrics[key]


BASE_COLUMNS = (
    "config",
    "workload",
    "n_cores",
    "scale",
    "cycles",
    "msa_coverage",
)

#: Legacy alias (pre-dates dynamic extras columns).
CSV_COLUMNS = BASE_COLUMNS + ("speedup",)


def _format_extra(value) -> str:
    """One extras cell: floats to 4 places, missing values empty, and
    everything else (ints, bools, strings from annotators) verbatim --
    a sparse or mixed-type extras column must not crash the export."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def to_csv(points: Iterable[SweepPoint], path: Optional[str] = None) -> str:
    """Serialize sweep points to CSV; returns the text (and writes to
    ``path`` when given).

    Columns are :data:`BASE_COLUMNS` followed by *every* extras key seen
    across the points (sorted), so annotations beyond ``speedup`` --
    sensitivity knobs, derived metrics -- survive the round trip.
    """
    points = list(points)
    extra_keys = sorted({k for p in points for k in p.extras})
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(BASE_COLUMNS) + extra_keys)
    for p in points:
        coverage = p.result.msa_coverage
        row = [
            p.config,
            p.workload,
            p.n_cores,
            p.scale,
            p.result.cycles,
            f"{coverage:.4f}" if coverage is not None else "",
        ]
        for key in extra_keys:
            row.append(_format_extra(p.extras.get(key)))
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text


def from_csv(text: str) -> List[Dict[str, str]]:
    """Parse a sweep CSV back into row dicts (round-trip helper)."""
    reader = csv.DictReader(io.StringIO(text))
    return list(reader)
