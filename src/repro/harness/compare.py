"""Compare two experiment sweeps (e.g., before/after a model change).

Loads the CSV form produced by :mod:`repro.harness.sweep` and reports
per-point cycle deltas, flagging regressions beyond a threshold::

    from repro.harness.compare import compare_csv, render_comparison
    report = compare_csv(old_text, new_text)
    print(render_comparison(report))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.harness.report import render_table
from repro.harness.sweep import from_csv

Key = Tuple[str, str, int]  # (config, workload, n_cores)


@dataclass
class Delta:
    key: Key
    old_cycles: int
    new_cycles: int

    @property
    def ratio(self) -> float:
        return self.new_cycles / self.old_cycles if self.old_cycles else 0.0

    @property
    def percent(self) -> float:
        return 100.0 * (self.ratio - 1.0)


@dataclass
class Comparison:
    deltas: List[Delta]
    only_old: List[Key]
    only_new: List[Key]

    def regressions(self, threshold_pct: float = 5.0) -> List[Delta]:
        return [d for d in self.deltas if d.percent > threshold_pct]

    def improvements(self, threshold_pct: float = 5.0) -> List[Delta]:
        return [d for d in self.deltas if d.percent < -threshold_pct]


def _index(rows) -> Dict[Key, int]:
    out: Dict[Key, int] = {}
    for row in rows:
        key = (row["config"], row["workload"], int(row["n_cores"]))
        out[key] = int(row["cycles"])
    return out


def compare_csv(old_text: str, new_text: str) -> Comparison:
    old = _index(from_csv(old_text))
    new = _index(from_csv(new_text))
    deltas = [
        Delta(key, old[key], new[key]) for key in sorted(old.keys() & new.keys())
    ]
    return Comparison(
        deltas=deltas,
        only_old=sorted(old.keys() - new.keys()),
        only_new=sorted(new.keys() - old.keys()),
    )


def render_comparison(
    comparison: Comparison, threshold_pct: float = 5.0
) -> str:
    rows = []
    for d in comparison.deltas:
        flag = ""
        if d.percent > threshold_pct:
            flag = "REGRESSION"
        elif d.percent < -threshold_pct:
            flag = "improved"
        config, workload, n_cores = d.key
        rows.append(
            [
                config,
                workload,
                n_cores,
                d.old_cycles,
                d.new_cycles,
                f"{d.percent:+.1f}%",
                flag,
            ]
        )
    out = render_table(
        ["config", "workload", "cores", "old", "new", "delta", ""],
        rows,
        title="sweep comparison",
    )
    extra = []
    if comparison.only_old:
        extra.append(f"removed points: {len(comparison.only_old)}")
    if comparison.only_new:
        extra.append(f"added points: {len(comparison.only_new)}")
    if extra:
        out += "\n" + "; ".join(extra)
    return out
