"""ASCII chart rendering for experiment output.

The paper's figures are bar charts (Figure 5 on a log scale); the
experiment drivers print tables for precision and these charts for
shape-at-a-glance.  Pure text, no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

BAR_CHARS = "#"
MAX_WIDTH = 50


def hbar_chart(
    rows: Sequence[Tuple[str, float]],
    title: str = "",
    log_scale: bool = False,
    width: int = MAX_WIDTH,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Horizontal bar chart.

    ``rows`` are (label, value) pairs; with ``log_scale`` bar lengths
    follow log10 (the paper's Figure 5 convention).  ``baseline`` draws
    a ``|`` marker at that value (e.g. speedup == 1.0).
    """
    if not rows:
        return title
    values = [v for _, v in rows]
    vmax = max(values)
    vmin = min(values)
    label_width = max(len(label) for label, _ in rows)

    def scaled(value: float) -> int:
        if value <= 0:
            return 0
        if log_scale:
            lo = math.log10(max(min(vmin, value), 1e-9))
            hi = math.log10(max(vmax, 1e-9))
            if hi <= lo:
                return width
            return max(1, round(width * (math.log10(value) - lo + 0.3) / (hi - lo + 0.3)))
        return max(1, round(width * value / vmax)) if vmax > 0 else 0

    lines = []
    if title:
        lines.append(title)
    marker_at = scaled(baseline) if baseline is not None else None
    for label, value in rows:
        bar_len = scaled(value)
        bar = BAR_CHARS * bar_len
        if marker_at is not None and marker_at <= width:
            padded = list(bar.ljust(max(bar_len, marker_at + 1)))
            padded[marker_at] = "|"
            bar = "".join(padded)
        shown = f"{value:,.0f}" if value >= 100 else f"{value:.2f}"
        lines.append(f"{label.rjust(label_width)}  {bar} {shown}{unit}")
    if log_scale:
        lines.append(f"{'':{label_width}}  (log scale)")
    return "\n".join(lines)


def grouped_chart(
    groups: Dict[str, Sequence[Tuple[str, float]]],
    title: str = "",
    log_scale: bool = False,
    width: int = MAX_WIDTH,
    baseline: Optional[float] = None,
) -> str:
    """Multiple named bar groups (one per app/probe) sharing a scale."""
    all_rows: List[Tuple[str, float]] = [
        row for rows in groups.values() for row in rows
    ]
    if not all_rows:
        return title
    lines = []
    if title:
        lines.append(title)
    for group_name, rows in groups.items():
        lines.append(f"-- {group_name}")
        chart = hbar_chart(
            list(rows), log_scale=log_scale, width=width, baseline=baseline
        )
        lines.append(chart)
    return "\n".join(lines)
