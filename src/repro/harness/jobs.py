"""Parallel experiment engine: fan grid points out across worker
processes, with a content-addressed result cache and resumable sweeps.

The paper's evaluation is an embarrassingly parallel grid -- kernels x
configurations x core counts -- and every figure driver used to walk it
one point at a time in one process.  This module is the execution
substrate they now share:

* :class:`JobSpec` names one grid point (config, workload, cores, scale,
  seed, parameter overrides).  Specs are pure data: a worker process
  rebuilds the machine and workload from the spec alone and re-seeds
  from ``spec.seed``, so a point's :class:`RunResult` is bit-for-bit
  identical whether it ran serially, in a pool, or on a different day.
* :class:`ResultCache` stores finished results on disk keyed by a hash
  of the spec *plus the fully resolved* :class:`MachineParams`, so
  re-running a figure after an unrelated edit is free while any changed
  machine knob (including library defaults) misses cleanly.  Entries
  carry a sha256 of their own payload: a torn write *or any byte flip*
  reads back as a cache miss, never a crash and never a wrong result.
* :class:`SweepManifest` records done/failed points in an append-only
  JSONL ledger (one fsync-friendly line per completion); a killed sweep
  resumes from the manifest -- a truncated trailing line from a
  mid-append kill is repaired in place -- and only runs what is missing.
* :class:`Engine` orchestrates.  With a cache directory it layers a
  durable :class:`repro.resilience.store.JobStore` next to the cache
  and every execution path (serial or a supervised worker pool) claims
  points through expiring leases: workers heartbeat while simulating,
  dead workers' points are reclaimed and retried elsewhere with seeded
  exponential backoff, and a point that keeps failing is quarantined
  with its traceback instead of starving the sweep.  Without a cache it
  falls back to the original in-memory pool.

Environment defaults come from :mod:`repro.common.config`:
``REPRO_WORKERS`` (worker count when ``workers`` is not given; unset
means serial) and ``REPRO_CACHE_DIR`` (cache location when
``cache_dir`` is not given; unset means no cache).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
import tempfile
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common import config as repro_config
from repro.common.errors import ConfigError
from repro.common.schema import JOBSPEC_SCHEMA, check_schema
from repro.harness.configs import machine_params
from repro.harness.report import ProgressReporter
from repro.harness.runner import RunResult

#: Bump to invalidate every existing cache entry (schema changes).
#: v3: checksummed entries ({"payload fields"..., "v", "sha256"}).
CACHE_VERSION = 3

DEFAULT_MAX_EVENTS = 50_000_000


# ---------------------------------------------------------------------------
# Job specification
# ---------------------------------------------------------------------------
@dataclass
class JobSpec:
    """One grid point, as pure (picklable, hashable-by-content) data.

    ``workload`` is a registry name (:data:`repro.workloads.kernels.KERNELS`
    or :data:`repro.workloads.microbench.MICROBENCHES`) unless an explicit
    ``factory`` rides along; ``params`` are keyword overrides applied to
    the resolved :class:`MachineParams` (e.g. ``{"n_cores": 16}`` is
    spelled ``cores=16`` instead, but NoC/cache sub-params go here).
    """

    config: str
    workload: str
    cores: int = 16
    scale: float = 1.0
    seed: int = 2015
    params: Dict[str, Any] = field(default_factory=dict)
    max_events: Optional[int] = DEFAULT_MAX_EVENTS
    check: bool = True
    checkers: Tuple[str, ...] = ()
    """Invariant monitors to attach (:data:`repro.verify.MONITORS`
    names); empty disables checking.  Part of the cache key: a checked
    run records its :class:`CheckReport` in the cached result."""

    fault_plan: Any = None
    factory: Optional[Callable] = field(default=None, repr=False, compare=False)
    """Explicit workload factory; optional.  Not part of the cache key
    beyond its dotted name -- prefer registry names for cacheable runs."""

    def describe(self) -> str:
        return f"{self.workload}/{self.config}@{self.cores}"

    def to_wire(self) -> Dict[str, Any]:
        """Pure-data wire form (HTTP submission to ``repro serve``).

        Carries a :data:`~repro.common.schema.JOBSPEC_SCHEMA` stamp and
        only the fields a remote engine can rebuild the point from;
        explicit factories and fault plans are process-local objects and
        are refused rather than lossily encoded.
        """
        if self.fault_plan is not None:
            raise ConfigError(
                "fault_plan does not cross the wire; submit fault "
                "experiments locally or encode the plan as params"
            )
        if self.factory is not None:
            raise ConfigError(
                "explicit workload factories do not cross the wire; "
                "use a registry workload name instead"
            )
        return {
            "schema": JOBSPEC_SCHEMA,
            "config": self.config,
            "workload": self.workload,
            "cores": self.cores,
            "scale": self.scale,
            "seed": self.seed,
            "params": dict(self.params),
            "max_events": self.max_events,
            "check": self.check,
            "checkers": list(self.checkers),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_wire`.  The schema stamp is checked
        first (unknown majors raise
        :class:`~repro.common.errors.SchemaError`); malformed fields
        raise :class:`ConfigError` naming the offender."""
        if not isinstance(data, dict):
            raise ConfigError(f"job spec payload must be an object, got "
                              f"{type(data).__name__}")
        check_schema(data.get("schema"), JOBSPEC_SCHEMA, what="job spec")
        config = data.get("config")
        workload = data.get("workload")
        if not isinstance(config, str) or not isinstance(workload, str):
            raise ConfigError(
                "job spec needs string 'config' and 'workload' fields"
            )
        params = data.get("params") or {}
        checkers = data.get("checkers") or ()
        if not isinstance(params, dict):
            raise ConfigError("job spec 'params' must be an object")
        if not all(isinstance(c, str) for c in checkers):
            raise ConfigError("job spec 'checkers' must be monitor names")
        try:
            max_events = data.get("max_events", DEFAULT_MAX_EVENTS)
            return cls(
                config=config,
                workload=workload,
                cores=int(data.get("cores", 16)),
                scale=float(data.get("scale", 1.0)),
                seed=int(data.get("seed", 2015)),
                params=dict(params),
                max_events=None if max_events is None else int(max_events),
                check=bool(data.get("check", True)),
                checkers=tuple(checkers),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed job spec field: {exc}") from None

    def resolved_params(self):
        """The final (MachineParams, library) this spec will run with.

        ``params`` entries may be top-level :class:`MachineParams`
        fields (dataclass values) or dotted scalar paths like
        ``"msa.entries_per_tile"`` -- the dotted form is pure JSON, so
        such specs cross the service wire and cache cleanly (this is
        what :mod:`repro.dse` design points use).
        """
        params, library = machine_params(
            self.config, n_cores=self.cores, seed=self.seed
        )
        if self.params:
            params = params.with_overrides(self.params)
        return params, library

    def key(self) -> str:
        """Content-addressed cache key.

        Hashes the spec fields *and* the fully resolved machine
        parameters, so a change to any default (in code) or any override
        (in the spec) invalidates exactly the affected points.
        """
        params, library = self.resolved_params()
        payload = {
            "v": CACHE_VERSION,
            "config": self.config,
            "workload": self.workload,
            "factory": _factory_fingerprint(self.factory),
            "cores": self.cores,
            "scale": self.scale,
            "seed": self.seed,
            "max_events": self.max_events,
            "check": self.check,
            "checkers": list(self.checkers),
            "library": library,
            "machine": params.to_dict(),
            "fault_plan": (
                asdict(self.fault_plan) if self.fault_plan is not None else None
            ),
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()


def _factory_fingerprint(factory: Optional[Callable]) -> Optional[str]:
    if factory is None:
        return None
    module = getattr(factory, "__module__", "?")
    qualname = getattr(factory, "__qualname__", repr(factory))
    return f"{module}.{qualname}"


def resolve_factory(name: str) -> Callable:
    """Look a workload name up in the kernel, microbench, and traffic
    registries."""
    from repro.workloads.kernels import KERNELS
    from repro.workloads import microbench
    from repro.traffic.workload import TRAFFIC

    if name in KERNELS:
        return KERNELS[name]
    if name in microbench.MICROBENCHES:
        return microbench.MICROBENCHES[name]
    if name in TRAFFIC:
        return TRAFFIC[name]
    raise ConfigError(
        f"unknown workload {name!r}; expected one of "
        f"{sorted(KERNELS) + sorted(microbench.MICROBENCHES) + sorted(TRAFFIC)}"
    )


def _instantiate(factory: Callable, cores: int, scale: float):
    """Call a workload factory, passing ``scale`` only if it declares a
    parameter of that name (kernels do, the latency microbenches take
    ``iters``/``episodes`` knobs instead)."""
    try:
        sig = inspect.signature(factory)
        takes_scale = "scale" in sig.parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in sig.parameters.values()
        )
    except (TypeError, ValueError):
        takes_scale = True
    return factory(cores, scale=scale) if takes_scale else factory(cores)


def execute_spec(spec: JobSpec, watchdog=None) -> RunResult:
    """Run one grid point to completion in *this* process.

    This is the worker entry point: everything is rebuilt from the spec
    (machine, RNG streams, workload), so no state leaks between points
    and parallel results match serial ones bit for bit.

    ``watchdog`` optionally supervises the run (a
    :class:`repro.resilience.watchdog.Watchdog`); the drained event
    order -- and therefore the result -- is identical either way.
    """
    from repro.harness.runner import run_workload
    from repro.machine import Machine

    params, library = spec.resolved_params()
    machine = Machine(params, library=library, fault_plan=spec.fault_plan)
    factory = spec.factory if spec.factory is not None else resolve_factory(
        spec.workload
    )
    workload = _instantiate(factory, spec.cores, spec.scale)
    return run_workload(
        machine,
        workload,
        max_events=spec.max_events,
        check=spec.check,
        config=spec.config,
        checkers=spec.checkers,
        watchdog=watchdog,
    )


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------
def entry_checksum(data: Dict[str, Any]) -> str:
    """sha256 over an entry's canonical payload (everything except the
    ``sha256`` field itself, compact-serialized with sorted keys).  A
    byte flip anywhere in the stored payload -- even one that leaves
    the JSON parseable -- changes this digest."""
    body = {k: v for k, v in data.items() if k != "sha256"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Content-addressed on-disk cache of serialized :class:`RunResult`.

    Layout: ``<root>/<key[:2]>/<key>.json`` holding the spec summary
    (for humans), the result, the cache version, and a sha256 of the
    whole payload.  Writes are atomic (temp file + rename) so a killed
    sweep never leaves a torn entry behind; reads verify the checksum
    and the key, so *any* corruption -- truncation, byte flips, a file
    renamed to the wrong key -- is a cache miss (counted in
    :attr:`corrupt`), never an exception and never a wrong result.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        """Entries rejected by checksum/decode validation (each also
        counts as a miss)."""

        self.put_hook: Optional[Callable[[], None]] = None
        """Test/chaos seam: called before every write; may raise (e.g.
        a simulated ``ENOSPC``) to fail the put."""

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        path = self.path(key)
        try:
            data = json.loads(path.read_text())
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self.misses += 1
            self.corrupt += 1
            return None
        try:
            if (
                not isinstance(data, dict)
                or data.get("v") != CACHE_VERSION
                or data.get("key") != key
                or entry_checksum(data) != data.get("sha256")
            ):
                raise ValueError("corrupt or stale cache entry")
            result = RunResult.from_dict(data["result"])
        except Exception:
            # Corrupt means miss, never crash: byte flips can rename
            # required keys or retype values, so *anything* the decode
            # raises lands here.
            self.misses += 1
            self.corrupt += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, spec: JobSpec, result: RunResult) -> None:
        if self.put_hook is not None:
            self.put_hook()
        path = self.path(key)
        payload = {
            "key": key,
            "v": CACHE_VERSION,
            "spec": {
                "config": spec.config,
                "workload": spec.workload,
                "cores": spec.cores,
                "scale": spec.scale,
                "seed": spec.seed,
            },
            "result": result.to_dict(),
        }
        payload["sha256"] = entry_checksum(payload)
        _atomic_write_json(path, payload)

    def entries(self):
        """Iterate every healthy cache entry as ``(spec_summary,
        RunResult)`` pairs, in deterministic (key-sorted) order.

        The spec summary is the human-readable dict stored by
        :meth:`put` (config/workload/cores/scale/seed).  This is the
        read path for report-from-cache (``python -m repro report``):
        it never simulates, it only deserializes what finished sweeps
        left behind.  Torn, corrupt (checksum-mismatched), stale, or
        foreign files are skipped -- ``python -m repro fsck`` reports
        and evicts them.
        """
        for path in sorted(self.root.glob("*/*.json")):
            try:
                data = json.loads(path.read_text())
                if (
                    data.get("v") != CACHE_VERSION
                    or data.get("key") != path.stem
                    or entry_checksum(data) != data.get("sha256")
                ):
                    continue
                spec = data["spec"]
                result = RunResult.from_dict(data["result"])
            except Exception:
                continue
            yield spec, result


def _atomic_write_json(path: Path, payload) -> None:
    _atomic_write_text(path, json.dumps(payload, sort_keys=True))


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# Sweep manifest (resume support)
# ---------------------------------------------------------------------------
def repair_manifest_tail(path: Path, write: bool = True) -> int:
    """Drop unparseable lines from a JSONL manifest (the torn trailing
    line a mid-append kill leaves behind).  Returns how many lines were
    dropped; with ``write``, the file is rewritten in place (atomic)
    without them and a warning is emitted.  Missing files are fine."""
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return 0
    good, dropped = [], 0
    for line in lines:
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            if not isinstance(entry, dict) or "key" not in entry:
                raise ValueError("not a manifest record")
        except ValueError:
            dropped += 1
            continue
        good.append(line)
    if dropped and write:
        warnings.warn(
            f"sweep manifest {path} had {dropped} torn/unparseable "
            "line(s) (likely a kill mid-append); repaired in place -- "
            "the affected points will simply re-run",
            RuntimeWarning,
            stacklevel=2,
        )
        _atomic_write_text(path, "".join(line + "\n" for line in good))
    return dropped


class SweepManifest:
    """Done/failed ledger for a sweep: one JSON line appended per
    completion.

    Append-only JSONL keeps the durability write O(1) per point (the
    old format rewrote the whole document every completion) and makes
    the failure mode of a kill-mid-write benign: at most the last line
    is torn, and loading repairs the file in place (with a warning)
    instead of throwing the whole ledger away.  Later lines for the
    same key supersede earlier ones, so retries and resumed sweeps
    just append.

    Restarting the same sweep with the same manifest path skips every
    point recorded ``done`` whose cached result is still readable and
    re-runs the rest (pending *and* failed), so a crashed or killed
    sweep loses at most the in-flight points.  Legacy whole-JSON
    manifests (pre-v3) load transparently and are upgraded on the next
    :meth:`save`.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.entries: Dict[str, Dict[str, Any]] = {}
        self._load()

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        stripped = text.lstrip()
        if stripped.startswith("{") and '"points"' in stripped:
            # Legacy single-document format.
            try:
                self.entries = json.loads(text).get("points", {})
                return
            except ValueError:
                pass  # torn legacy file: fall through to line parsing
        repair_manifest_tail(self.path, write=True)
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                key = entry.pop("key")
            except (ValueError, KeyError, AttributeError, TypeError):
                continue
            if isinstance(entry, dict) and "status" in entry:
                self.entries[key] = entry

    def status(self, key: str) -> Optional[str]:
        entry = self.entries.get(key)
        return entry["status"] if entry else None

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.entries.values():
            out[entry["status"]] = out.get(entry["status"], 0) + 1
        return out

    def record(
        self,
        key: str,
        spec: JobSpec,
        status: str,
        attempts: int,
        error: Optional[str] = None,
    ) -> None:
        entry = {
            "spec": spec.describe(),
            "status": status,
            "attempts": attempts,
            "error": error,
        }
        self.entries[key] = entry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as f:
            f.write(json.dumps({"key": key, **entry}, sort_keys=True) + "\n")

    def save(self) -> None:
        """Compact the ledger: atomically rewrite one line per key (the
        engine calls this once per run; appends stay O(1))."""
        body = "".join(
            json.dumps({"key": key, **entry}, sort_keys=True) + "\n"
            for key, entry in sorted(self.entries.items())
        )
        _atomic_write_text(self.path, body)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------
@dataclass
class EngineStats:
    """What one :meth:`Engine.run` did with its grid."""

    total: int = 0
    cache_hits: int = 0
    resumed: int = 0
    executed: int = 0
    retried: int = 0
    failed: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def describe(self) -> str:
        return (
            f"{self.total} points: {self.cache_hits} cached "
            f"({self.resumed} via manifest), {self.executed} ran, "
            f"{self.retried} retried, {self.failed} failed"
        )


@dataclass
class JobResult:
    """Outcome of one grid point (result *or* error, never silently lost)."""

    spec: JobSpec
    key: str
    result: Optional[RunResult] = None
    cached: bool = False
    resumed: bool = False
    attempts: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result is not None


class Engine:
    """Run a batch of :class:`JobSpec` with caching, pooling, retries.

    ``workers``: process count; ``None`` reads ``REPRO_WORKERS``, and a
    value <= 1 runs in-process.  ``cache_dir``: result-cache root;
    ``None`` reads ``REPRO_CACHE_DIR``, empty means no caching.
    ``manifest``: path of a :class:`SweepManifest` for resumable runs.
    ``retries``: extra attempts for a crashed/errored point (default 1).
    ``progress``: ``True`` for stderr progress lines, or a
    :class:`ProgressReporter`-compatible object.

    With a cache directory, execution runs through the durable
    :class:`repro.resilience.store.JobStore` living at
    ``<cache_dir>/jobs.sqlite3``: points are claimed via expiring
    leases (``lease_s``), failed attempts back off with deterministic
    seeded jitter (``seed``), a point failing ``retries + 1`` times is
    quarantined with its traceback, and ``point_timeout_s`` arms a
    per-point :class:`repro.resilience.watchdog.Watchdog`.  Several
    engines -- across processes or hosts sharing the cache directory --
    can run the same grid concurrently and split the work.  ``chaos``
    (a :class:`repro.resilience.supervise.ChaosPlan`) is the harness
    chaos seam; leave it ``None`` outside ``repro chaos-harness``.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir=None,
        manifest=None,
        retries: int = 1,
        progress=False,
        lease_s: float = 30.0,
        point_timeout_s: Optional[float] = None,
        seed: int = 0,
        chaos=None,
    ):
        workers = repro_config.workers(workers)
        self.workers = max(1, workers if workers is not None else 1)
        cache_dir = repro_config.cache_dir(cache_dir)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.manifest = SweepManifest(manifest) if manifest else None
        self.retries = retries
        self.progress = progress
        self.lease_s = lease_s
        self.point_timeout_s = point_timeout_s
        self.seed = seed
        self.chaos = chaos
        self.stats = EngineStats()
        self.pool_stats: Dict[str, int] = {}
        self.store = None
        if self.cache is not None:
            try:
                from repro.resilience.store import (
                    JobStore,
                    default_store_path,
                )

                self.store = JobStore(
                    default_store_path(self.cache.root),
                    lease_s=lease_s,
                    quarantine_after=retries + 1,
                )
            except Exception:
                # A read-only cache mount (or a hostile sqlite build)
                # must not take caching down with it; the legacy
                # in-memory paths still work.
                self.store = None

    # -- public API ----------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Run every spec; returns one :class:`JobResult` per spec, in
        input order.  Failures are reported in the results (and the
        manifest), not raised -- callers that need all points decide
        what a hole means."""
        stats = self.stats = EngineStats(total=len(specs))
        results: List[Optional[JobResult]] = [None] * len(specs)
        reporter = self._reporter(len(specs))

        pending: List[Tuple[int, JobSpec, str]] = []
        for index, spec in enumerate(specs):
            key = spec.key()
            job = self._from_cache(spec, key)
            if job is not None:
                stats.cache_hits += 1
                if job.resumed:
                    stats.resumed += 1
                results[index] = job
                self._report(reporter, job)
            else:
                pending.append((index, spec, key))

        if pending:
            if self.store is not None:
                self._run_supervised(pending, results, reporter)
            elif self.workers > 1 and len(pending) > 1:
                self._run_parallel(pending, results, reporter)
            else:
                self._run_serial(pending, results, reporter)
        if self.manifest is not None and pending:
            self.manifest.save()  # compact the append-only ledger
        return [job for job in results if job is not None]

    def resilience_counters(self) -> Dict[str, int]:
        """Durability/supervision counters for :mod:`repro.obs` export:
        job-store lifetime transitions plus cache hit/miss/corrupt
        totals (empty when the engine runs without a cache)."""
        out: Dict[str, int] = {}
        if self.store is not None:
            out.update(self.store.counters())
        if self.cache is not None:
            out["cache_hits"] = self.cache.hits
            out["cache_misses"] = self.cache.misses
            out["cache_corrupt"] = self.cache.corrupt
        for name, value in self.pool_stats.items():
            out[f"pool_{name}"] = value
        return out

    # -- cache/manifest plumbing ---------------------------------------
    def _from_cache(self, spec: JobSpec, key: str) -> Optional[JobResult]:
        if self.cache is None:
            return None
        result = self.cache.get(key)
        if result is None:
            return None
        resumed = (
            self.manifest is not None and self.manifest.status(key) == "done"
        )
        return JobResult(
            spec=spec, key=key, result=result, cached=True, resumed=resumed
        )

    def _complete(
        self,
        index: int,
        spec: JobSpec,
        key: str,
        result: Optional[RunResult],
        attempts: int,
        error: Optional[str],
        results: List[Optional[JobResult]],
        reporter,
    ) -> None:
        job = JobResult(
            spec=spec, key=key, result=result, attempts=attempts, error=error
        )
        if result is not None:
            self.stats.executed += 1
            if self.cache is not None:
                self.cache.put(key, spec, result)
        else:
            self.stats.failed += 1
        if self.manifest is not None:
            self.manifest.record(
                key,
                spec,
                "done" if result is not None else "failed",
                attempts,
                error,
            )
        results[index] = job
        self._report(reporter, job)

    # -- execution backends --------------------------------------------
    def _run_serial(self, pending, results, reporter) -> None:
        for index, spec, key in pending:
            result, attempts, error = self._attempt_serial(spec)
            self._complete(
                index, spec, key, result, attempts, error, results, reporter
            )

    def _attempt_serial(self, spec: JobSpec):
        error = None
        for attempt in range(1, self.retries + 2):
            try:
                return execute_spec(spec), attempt, None
            except Exception as exc:  # SimulationError, workload bugs, ...
                error = f"{type(exc).__name__}: {exc}"
                if attempt <= self.retries:
                    self.stats.retried += 1
        return None, self.retries + 1, error

    # -- supervised (durable-store) backend ----------------------------
    def _run_supervised(self, pending, results, reporter) -> None:
        """Execute through the job store: enqueue every point, claim by
        lease (in-process, or via a supervised worker pool), then
        collect outcomes from store + cache.  Crash-safe at every step:
        a worker dying mid-point just stops heartbeating and the point
        is reclaimed; a torn cache entry re-runs in the parent."""
        from repro.resilience.supervise import WorkerLoop, WorkerPool

        store = self.store
        specs_by_key: Dict[str, JobSpec] = {}
        keys: List[str] = []
        picklable: Dict[str, bool] = {}
        for _index, spec, key in pending:
            specs_by_key[key] = spec
            keys.append(key)
            try:
                blob = pickle.dumps(spec)
            except Exception:
                blob = None
            picklable[key] = blob is not None
            store.enqueue(key, spec.describe(), blob)
        before = store.counters()
        recorded = set()

        def on_terminal(key, row):
            if row is None or not row.terminal or key in recorded:
                return
            recorded.add(key)
            spec = specs_by_key[key]
            if self.manifest is not None:
                self.manifest.record(
                    key,
                    spec,
                    "done" if row.status == "done" else "failed",
                    row.attempts,
                    row.error,
                )
            if reporter is not None:
                reporter.update(
                    spec.describe(), failed=row.status != "done"
                )

        def in_process_loop(loop_keys):
            return WorkerLoop(
                store,
                self.cache,
                keys=loop_keys,
                specs_by_key=specs_by_key,
                seed=self.seed,
                point_timeout_s=self.point_timeout_s,
                on_complete=on_terminal,
            )

        remote = [k for k in keys if picklable[k]]
        local = [k for k in keys if not picklable[k]]
        if self.workers > 1 and len(remote) > 1:
            if local:
                in_process_loop(local).drain()
            pool = WorkerPool(
                store,
                self.cache.root,
                workers=self.workers,
                lease_s=self.lease_s,
                quarantine_after=self.retries + 1,
                seed=self.seed,
                point_timeout_s=self.point_timeout_s,
                chaos=self.chaos,
                on_terminal=on_terminal,
            )
            pool.run(remote)
            self.pool_stats = {
                "kills": pool.kills,
                "restarts": pool.restarts,
                "corruptions": pool.corruptions,
            }
            if store.open_jobs(keys):
                # Restart budget exhausted with work left: the parent
                # finishes the remainder itself.  Points are never lost.
                in_process_loop(keys).drain()
        else:
            in_process_loop(keys).drain()

        after = store.counters()
        self.stats.retried += (
            (after["retries"] - before["retries"])
            + (after["leases_expired"] - before["leases_expired"])
            + (after["leases_released"] - before["leases_released"])
        )
        self._collect_supervised(pending, results, on_terminal)

    def _collect_supervised(self, pending, results, on_terminal) -> None:
        """Turn store rows + cache entries into ordered JobResults.  A
        row marked done whose cache entry is unreadable (corruption
        after completion) deterministically re-runs here, in-parent."""
        store = self.store
        for index, spec, key in pending:
            row = store.get(key)
            attempts = row.attempts if row is not None else 0
            error = row.error if row is not None else None
            result = self.cache.get(key)
            if result is None and (row is None or row.status == "done"):
                try:
                    result = execute_spec(spec)
                    self.cache.put(key, spec, result)
                    store.mark_done(key)
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
            if result is not None:
                self.stats.executed += 1
                error = None
            else:
                self.stats.failed += 1
            on_terminal(key, store.get(key))
            results[index] = JobResult(
                spec=spec,
                key=key,
                result=result,
                attempts=attempts,
                error=error,
            )

    def _run_parallel(self, pending, results, reporter) -> None:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        # Specs that cannot cross a process boundary (closure/lambda
        # factories) run in the parent instead of poisoning the pool.
        local, remote = [], []
        for item in pending:
            try:
                pickle.dumps(item[1])
                remote.append(item)
            except Exception:
                local.append(item)

        leftovers = list(local)
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {
                    pool.submit(execute_spec, spec): (index, spec, key, 1)
                    for index, spec, key in remote
                }
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for fut in done:
                        index, spec, key, attempt = futures.pop(fut)
                        exc = fut.exception()
                        if exc is None:
                            self._complete(
                                index, spec, key, fut.result(), attempt,
                                None, results, reporter,
                            )
                        elif isinstance(exc, BrokenProcessPool):
                            raise exc
                        elif attempt <= self.retries:
                            self.stats.retried += 1
                            futures[pool.submit(execute_spec, spec)] = (
                                index, spec, key, attempt + 1,
                            )
                        else:
                            self._complete(
                                index, spec, key, None, attempt,
                                f"{type(exc).__name__}: {exc}",
                                results, reporter,
                            )
        except BrokenProcessPool:
            # A worker died hard (OOM, signal).  Finish what the pool
            # did not, one retry each, in-process -- points must be
            # reported, never lost.
            leftovers += [
                item for item in remote
                if results[item[0]] is None
            ]
        self._run_serial(
            [item for item in leftovers if results[item[0]] is None],
            results,
            reporter,
        )

    # -- progress -------------------------------------------------------
    def _reporter(self, total: int):
        if self.progress is True:
            return ProgressReporter(total)
        if self.progress:
            return self.progress
        return None

    def _report(self, reporter, job: JobResult) -> None:
        if reporter is not None:
            reporter.update(
                job.spec.describe(), cached=job.cached, failed=not job.ok
            )


def run_jobs(
    specs: Sequence[JobSpec],
    workers: Optional[int] = None,
    cache_dir=None,
    manifest=None,
    retries: int = 1,
    progress=False,
) -> List[JobResult]:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine(
        workers=workers,
        cache_dir=cache_dir,
        manifest=manifest,
        retries=retries,
        progress=progress,
    ).run(specs)
