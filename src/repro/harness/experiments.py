"""Experiment drivers: one function per paper table/figure.

Each driver runs the required (config, workload, core-count) grid,
returns structured results, and can print the same rows/series the
paper reports.  Run standalone::

    python -m repro.harness.experiments fig6 --cores 16 --scale 0.5
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.stats import geomean
from repro.harness.configs import build_machine
from repro.harness.report import render_table
from repro.harness.runner import RunResult, run_workload
from repro.workloads import microbench
from repro.workloads.kernels import FIGURE_APPS, KERNELS

DEFAULT_CORES = (16, 64)

FIG5_CONFIGS = ("pthread", "msa0", "msa-omu-2", "mcs-tour", "spinlock")
FIG6_CONFIGS = ("msa0", "mcs-tour", "msa-omu-1", "msa-omu-2", "msa-inf", "ideal")
FIG9_CONFIGS = ("msa-omu-2", "msa-lockonly-2", "msa-barrieronly-2")


def _run(config: str, workload, n_cores: int, seed: int = 2015) -> RunResult:
    machine = build_machine(config, n_cores=n_cores, seed=seed)
    return run_workload(machine, workload, config=config)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1(print_out: bool = True):
    from repro.harness.related_work import table1_rows

    rows = table1_rows()
    if print_out:
        print(
            render_table(
                (
                    "Work",
                    "Synchronization Primitives",
                    "Notification",
                    "Resource overhead",
                    "Dedicated Network",
                    "Resource Overflow",
                ),
                rows,
                title="Table 1: Summary of hardware synchronization approaches",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 5: raw synchronization latency
# ---------------------------------------------------------------------------
def fig5(
    cores: Sequence[int] = DEFAULT_CORES,
    configs: Sequence[str] = FIG5_CONFIGS,
    print_out: bool = True,
) -> Dict:
    """Raw latency (cycles) per probe, config, and core count."""
    results: Dict[str, Dict] = {}
    for probe, factory in microbench.MICROBENCHES.items():
        metric = microbench.METRIC_KEYS[probe]
        results[probe] = {}
        for n in cores:
            for config in configs:
                run = _run(config, factory(n), n)
                results[probe][(config, n)] = run.workload_metrics[metric]
    if print_out:
        from repro.harness.charts import hbar_chart

        for probe in results:
            rows = []
            for config in configs:
                rows.append(
                    [config] + [f"{results[probe][(config, n)]:.0f}" for n in cores]
                )
            print(
                render_table(
                    ["config"] + [f"{n}-core" for n in cores],
                    rows,
                    title=f"\nFigure 5 - {probe} (cycles)",
                )
            )
            n = cores[-1]
            print(
                hbar_chart(
                    [(c, results[probe][(c, n)]) for c in configs],
                    title=f"{probe} @ {n} cores:",
                    log_scale=True,
                )
            )
    return results


# ---------------------------------------------------------------------------
# Figure 6: application speedup over the pthread baseline
# ---------------------------------------------------------------------------
@dataclass
class SpeedupGrid:
    apps: List[str]
    cores: List[int]
    configs: List[str]
    speedups: Dict = field(default_factory=dict)  # (app, config, n) -> float
    coverage: Dict = field(default_factory=dict)

    def geomeans(self) -> Dict:
        out = {}
        for config in self.configs:
            for n in self.cores:
                out[(config, n)] = geomean(
                    self.speedups[(app, config, n)] for app in self.apps
                )
        return out


def fig6(
    cores: Sequence[int] = DEFAULT_CORES,
    configs: Sequence[str] = FIG6_CONFIGS,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    print_out: bool = True,
) -> SpeedupGrid:
    apps = list(apps or KERNELS.keys())
    grid = SpeedupGrid(apps=apps, cores=list(cores), configs=list(configs))
    for app in apps:
        factory = KERNELS[app]
        for n in cores:
            baseline = _run("pthread", factory(n, scale), n)
            for config in configs:
                run = _run(config, factory(n, scale), n)
                grid.speedups[(app, config, n)] = run.speedup_over(baseline)
                grid.coverage[(app, config, n)] = run.msa_coverage
    if print_out:
        shown = [a for a in apps if a in FIGURE_APPS] or apps
        for n in cores:
            rows = []
            for app in shown:
                rows.append(
                    [app]
                    + [f"{grid.speedups[(app, c, n)]:.2f}" for c in configs]
                )
            gm = grid.geomeans()
            rows.append(
                ["GeoMean(all)"] + [f"{gm[(c, n)]:.2f}" for c in configs]
            )
            print(
                render_table(
                    ["app"] + list(configs),
                    rows,
                    title=f"\nFigure 6 - speedup over pthread, {n} cores",
                )
            )
        from repro.harness.charts import hbar_chart

        n = grid.cores[-1]
        gm = grid.geomeans()
        print(
            hbar_chart(
                [(c, gm[(c, n)]) for c in configs],
                title=f"\nsuite geomean speedup @ {n} cores (| marks 1.0x):",
                baseline=1.0,
            )
        )
    return grid


# ---------------------------------------------------------------------------
# Figure 7: coverage with and without the OMU
# ---------------------------------------------------------------------------
def fig7(
    cores: Sequence[int] = DEFAULT_CORES,
    entries: Sequence[int] = (1, 2),
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    print_out: bool = True,
) -> Dict:
    """Percentage of sync operations serviced by the MSA, averaged over
    the suite, with the OMU vs the never-deallocate baseline."""
    apps = list(apps or KERNELS.keys())
    results: Dict = {}
    for n in cores:
        for e in entries:
            for with_omu in (False, True):
                config = f"msa-omu-{e}" if with_omu else f"msa-{e}-no-omu"
                covs = []
                for app in apps:
                    run = _run(config, KERNELS[app](n, scale), n)
                    if run.msa_coverage is not None:
                        covs.append(run.msa_coverage)
                results[(e, n, with_omu)] = 100.0 * sum(covs) / len(covs)
    if print_out:
        rows = []
        for e in entries:
            for n in cores:
                rows.append(
                    [
                        f"MSA-{e}",
                        f"{n}-core",
                        f"{results[(e, n, False)]:.1f}",
                        f"{results[(e, n, True)]:.1f}",
                    ]
                )
        print(
            render_table(
                ["MSA", "cores", "Without OMU (%)", "With OMU (%)"],
                rows,
                title="\nFigure 7 - coverage of synchronization operations",
            )
        )
    return results


# ---------------------------------------------------------------------------
# Figure 8: HWSync-bit optimization on fluidanimate
# ---------------------------------------------------------------------------
def fig8(
    cores: Sequence[int] = DEFAULT_CORES, scale: float = 1.0, print_out: bool = True
) -> Dict:
    factory = KERNELS["fluidanimate"]
    results: Dict = {}
    for n in cores:
        baseline = _run("pthread", factory(n, scale), n)
        for config, label in (
            ("msa-omu-2", "with_opt"),
            ("msa-omu-2-noopt", "without_opt"),
        ):
            run = _run(config, factory(n, scale), n)
            results[(label, n)] = run.speedup_over(baseline)
    if print_out:
        rows = [
            [f"{n}-core", f"{results[('with_opt', n)]:.3f}",
             f"{results[('without_opt', n)]:.3f}"]
            for n in cores
        ]
        print(
            render_table(
                ["cores", "With Optimization", "Without Optimization"],
                rows,
                title="\nFigure 8 - HWSync-bit effect on fluidanimate (speedup)",
            )
        )
    return results


# ---------------------------------------------------------------------------
# Figure 9: lock-only / barrier-only MSA support
# ---------------------------------------------------------------------------
def fig9(
    n_cores: int = 64,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    print_out: bool = True,
) -> Dict:
    apps = list(apps or KERNELS.keys())
    results: Dict = {}
    for app in apps:
        factory = KERNELS[app]
        baseline = _run("pthread", factory(n_cores, scale), n_cores)
        for config in FIG9_CONFIGS:
            run = _run(config, factory(n_cores, scale), n_cores)
            results[(app, config)] = run.speedup_over(baseline)
    for config in FIG9_CONFIGS:
        results[("GeoMean", config)] = geomean(
            results[(app, config)] for app in apps
        )
    if print_out:
        shown = [a for a in apps if a in FIGURE_APPS] or apps
        rows = [
            [app] + [f"{results[(app, c)]:.2f}" for c in FIG9_CONFIGS]
            for app in shown + ["GeoMean"]
        ]
        print(
            render_table(
                ["app"] + list(FIG9_CONFIGS),
                rows,
                title=f"\nFigure 9 - type-restricted MSA, {n_cores} cores (speedup)",
            )
        )
    return results


# ---------------------------------------------------------------------------
# Chaos resilience: lock/barrier workloads under NoC message loss
# ---------------------------------------------------------------------------
def chaos(
    n_cores: int = 16,
    drop_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    apps: Sequence[str] = ("streamcluster", "fluidanimate"),
    scale: float = 0.5,
    config: str = "msa-omu-2",
    print_out: bool = True,
) -> Dict:
    """Sweep NoC drop probability over sync-heavy kernels and report the
    cost of recovery: completion, slowdown over the fault-free run,
    coverage, and the retry/retransmission work the fault plane did.
    Every run must complete correctly -- the workloads' own validation
    hooks run at each point."""
    from repro.faults import drop_plan

    results: Dict = {}
    for app in apps:
        factory = KERNELS[app]
        for rate in drop_rates:
            plan = drop_plan(rate, seed=1) if rate else None
            machine = build_machine(config, n_cores=n_cores, fault_plan=plan)
            run = run_workload(machine, factory(n_cores, scale), config=config)
            fc = machine.fault_counters() if plan is not None else {}
            results[(app, rate)] = {
                "cycles": run.cycles,
                "coverage": run.msa_coverage,
                "msgs_dropped": fc.get("msgs_dropped", 0),
                "retransmits": fc.get("retransmits", 0),
                "retries": fc.get("retries", 0),
                "timeouts": fc.get("timeouts", 0),
                "degraded_tiles": fc.get("degraded_tiles", 0),
            }
    if print_out:
        for app in apps:
            base = results[(app, drop_rates[0])]["cycles"]
            rows = []
            for rate in drop_rates:
                r = results[(app, rate)]
                cov = r["coverage"]
                rows.append(
                    [
                        f"{100 * rate:.0f}%",
                        f"{r['cycles']:,}",
                        f"{r['cycles'] / base:.2f}x",
                        f"{100 * cov:.1f}%" if cov is not None else "-",
                        str(r["msgs_dropped"]),
                        str(r["retransmits"]),
                        str(r["retries"]),
                        str(r["timeouts"]),
                    ]
                )
            print(
                render_table(
                    [
                        "drop",
                        "cycles",
                        "slowdown",
                        "coverage",
                        "dropped",
                        "retransmits",
                        "retries",
                        "timeouts",
                    ],
                    rows,
                    title=f"\nChaos resilience - {app} on {config}, "
                    f"{n_cores} cores",
                )
            )
    return results


# ---------------------------------------------------------------------------
# Headline numbers (abstract / section 6 summary)
# ---------------------------------------------------------------------------
def headline(n_cores: int = 64, scale: float = 1.0, print_out: bool = True) -> Dict:
    """The paper's summary claims: coverage of MSA-2 with OMU, mean
    speedup over pthreads, distance from ideal."""
    apps = list(KERNELS.keys())
    speedups, coverages, vs_ideal = [], [], []
    best = ("", 0.0)
    for app in apps:
        factory = KERNELS[app]
        base = _run("pthread", factory(n_cores, scale), n_cores)
        msa = _run("msa-omu-2", factory(n_cores, scale), n_cores)
        ideal = _run("ideal", factory(n_cores, scale), n_cores)
        s = msa.speedup_over(base)
        speedups.append(s)
        if s > best[1]:
            best = (app, s)
        if msa.msa_coverage is not None:
            coverages.append(msa.msa_coverage)
        vs_ideal.append(ideal.cycles / msa.cycles)
    out = {
        "mean_speedup": geomean(speedups),
        "max_speedup": best[1],
        "max_speedup_app": best[0],
        "mean_coverage_pct": 100.0 * sum(coverages) / len(coverages),
        "mean_fraction_of_ideal": geomean(vs_ideal),
    }
    if print_out:
        print("\nHeadline numbers (paper: 1.43x mean, 7.59x max in "
              "streamcluster, 93% coverage, within 3% of ideal)")
        print(f"  mean speedup over pthread : {out['mean_speedup']:.2f}x")
        print(f"  max speedup               : {out['max_speedup']:.2f}x "
              f"({out['max_speedup_app']})")
        print(f"  MSA-2 coverage            : {out['mean_coverage_pct']:.1f}%")
        print(f"  performance vs ideal      : {100*out['mean_fraction_of_ideal']:.1f}%")
    return out


EXPERIMENTS = {
    "table1": lambda args: table1(),
    "fig5": lambda args: fig5(cores=args.cores),
    "fig6": lambda args: fig6(cores=args.cores, scale=args.scale),
    "fig7": lambda args: fig7(cores=args.cores, scale=args.scale),
    "fig8": lambda args: fig8(cores=args.cores, scale=args.scale),
    "fig9": lambda args: fig9(n_cores=max(args.cores), scale=args.scale),
    "headline": lambda args: headline(n_cores=max(args.cores), scale=args.scale),
    "chaos": lambda args: chaos(n_cores=min(args.cores), scale=args.scale),
}


def export_fig6_csv(grid: SpeedupGrid, path: str) -> None:
    """Write a Figure-6 speedup grid as flat CSV rows."""
    import csv

    with open(path, "w", newline="") as f:
        writer = csv.writer(f, lineterminator="\n")
        writer.writerow(["app", "config", "n_cores", "speedup", "coverage"])
        for (app, config, n), speedup in sorted(grid.speedups.items()):
            coverage = grid.coverage.get((app, config, n))
            writer.writerow(
                [
                    app,
                    config,
                    n,
                    f"{speedup:.4f}",
                    f"{coverage:.4f}" if coverage is not None else "",
                ]
            )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument(
        "--cores", type=int, nargs="+", default=list(DEFAULT_CORES)
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--csv",
        default=None,
        help="for fig6: also write the speedup grid to this CSV path",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = EXPERIMENTS[name](args)
        if name == "fig6" and args.csv:
            export_fig6_csv(result, args.csv)
            print(f"\nwrote {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
