"""Experiment drivers: one function per paper table/figure.

Each driver expresses its (config, workload, core-count) grid as
:class:`repro.harness.jobs.JobSpec` points and runs them through the
parallel experiment engine -- so every figure fans out across worker
processes, is served from the result cache on repeat runs, and can be
resumed from a manifest.  ``workers``/``cache_dir``/``progress`` on
each driver (or the ``REPRO_WORKERS``/``REPRO_CACHE_DIR`` environment
variables) configure the engine.

Run standalone through the package CLI::

    python -m repro fig6 --cores 16 --scale 0.5 --workers 4

(``python -m repro.harness.experiments`` still works and forwards to
the same CLI.)
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.stats import geomean
from repro.harness.jobs import Engine, JobSpec
from repro.harness.report import render_table
from repro.harness.runner import RunResult
from repro.workloads import microbench
from repro.workloads.kernels import FIGURE_APPS, KERNELS

DEFAULT_CORES = (16, 64)

FIG5_CONFIGS = ("pthread", "msa0", "msa-omu-2", "mcs-tour", "spinlock")
FIG6_CONFIGS = ("msa0", "mcs-tour", "msa-omu-1", "msa-omu-2", "msa-inf", "ideal")
FIG9_CONFIGS = ("msa-omu-2", "msa-lockonly-2", "msa-barrieronly-2")


def _run(config: str, workload_name: str, n_cores: int, seed: int = 2015) -> RunResult:
    """Run one registry workload in-process (no pool, no cache)."""
    from repro.harness.jobs import execute_spec

    return execute_spec(
        JobSpec(config=config, workload=workload_name, cores=n_cores, seed=seed)
    )


def _grid(
    specs: Sequence[JobSpec],
    workers: Optional[int] = None,
    cache_dir=None,
    progress=False,
    manifest=None,
) -> Dict[Tuple[str, str, int], RunResult]:
    """Run a driver's grid through the engine; results are keyed by
    (config, workload, cores).  Duplicate grid points collapse to one
    run.  A point that still fails after its retry aborts the driver --
    a figure with silent holes would be worse than no figure."""
    unique: Dict[Tuple[str, str, int], JobSpec] = {}
    for spec in specs:
        unique.setdefault((spec.config, spec.workload, spec.cores), spec)
    engine = Engine(
        workers=workers, cache_dir=cache_dir, progress=progress, manifest=manifest
    )
    out: Dict[Tuple[str, str, int], RunResult] = {}
    failures = []
    for job in engine.run(list(unique.values())):
        if job.ok:
            out[(job.spec.config, job.spec.workload, job.spec.cores)] = job.result
        else:
            failures.append(f"{job.spec.describe()}: {job.error}")
    if failures:
        raise SimulationError(
            "grid points failed after retries: " + "; ".join(failures)
        )
    return out


def _dedupe(configs: Sequence[str]) -> List[str]:
    return list(dict.fromkeys(configs))


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1(print_out: bool = True):
    from repro.harness.related_work import table1_rows

    rows = table1_rows()
    if print_out:
        print(
            render_table(
                (
                    "Work",
                    "Synchronization Primitives",
                    "Notification",
                    "Resource overhead",
                    "Dedicated Network",
                    "Resource Overflow",
                ),
                rows,
                title="Table 1: Summary of hardware synchronization approaches",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 5: raw synchronization latency
# ---------------------------------------------------------------------------
def fig5(
    cores: Sequence[int] = DEFAULT_CORES,
    configs: Sequence[str] = FIG5_CONFIGS,
    print_out: bool = True,
    workers: Optional[int] = None,
    cache_dir=None,
    progress=False,
) -> Dict:
    """Raw latency (cycles) per probe, config, and core count."""
    probes = list(microbench.MICROBENCHES)
    runs = _grid(
        [
            JobSpec(config=config, workload=probe, cores=n)
            for probe in probes
            for n in cores
            for config in configs
        ],
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
    )
    results: Dict[str, Dict] = {}
    for probe in probes:
        metric = microbench.METRIC_KEYS[probe]
        results[probe] = {
            (config, n): runs[(config, probe, n)].workload_metrics[metric]
            for n in cores
            for config in configs
        }
    if print_out:
        from repro.harness.charts import hbar_chart

        for probe in results:
            rows = []
            for config in configs:
                rows.append(
                    [config] + [f"{results[probe][(config, n)]:.0f}" for n in cores]
                )
            print(
                render_table(
                    ["config"] + [f"{n}-core" for n in cores],
                    rows,
                    title=f"\nFigure 5 - {probe} (cycles)",
                )
            )
            n = cores[-1]
            print(
                hbar_chart(
                    [(c, results[probe][(c, n)]) for c in configs],
                    title=f"{probe} @ {n} cores:",
                    log_scale=True,
                )
            )
    return results


# ---------------------------------------------------------------------------
# Figure 6: application speedup over the pthread baseline
# ---------------------------------------------------------------------------
@dataclass
class SpeedupGrid:
    apps: List[str]
    cores: List[int]
    configs: List[str]
    speedups: Dict = field(default_factory=dict)  # (app, config, n) -> float
    coverage: Dict = field(default_factory=dict)

    def geomeans(self) -> Dict:
        out = {}
        for config in self.configs:
            for n in self.cores:
                out[(config, n)] = geomean(
                    self.speedups[(app, config, n)] for app in self.apps
                )
        return out


def fig6(
    cores: Sequence[int] = DEFAULT_CORES,
    configs: Sequence[str] = FIG6_CONFIGS,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    print_out: bool = True,
    workers: Optional[int] = None,
    cache_dir=None,
    progress=False,
) -> SpeedupGrid:
    apps = list(apps or KERNELS.keys())
    grid = SpeedupGrid(apps=apps, cores=list(cores), configs=list(configs))
    all_configs = _dedupe(["pthread"] + list(configs))
    runs = _grid(
        [
            JobSpec(config=config, workload=app, cores=n, scale=scale)
            for app in apps
            for n in cores
            for config in all_configs
        ],
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
    )
    for app in apps:
        for n in cores:
            baseline = runs[("pthread", app, n)]
            for config in configs:
                run = runs[(config, app, n)]
                grid.speedups[(app, config, n)] = run.speedup_over(baseline)
                grid.coverage[(app, config, n)] = run.msa_coverage
    if print_out:
        shown = [a for a in apps if a in FIGURE_APPS] or apps
        for n in cores:
            rows = []
            for app in shown:
                rows.append(
                    [app]
                    + [f"{grid.speedups[(app, c, n)]:.2f}" for c in configs]
                )
            gm = grid.geomeans()
            rows.append(
                ["GeoMean(all)"] + [f"{gm[(c, n)]:.2f}" for c in configs]
            )
            print(
                render_table(
                    ["app"] + list(configs),
                    rows,
                    title=f"\nFigure 6 - speedup over pthread, {n} cores",
                )
            )
        from repro.harness.charts import hbar_chart

        n = grid.cores[-1]
        gm = grid.geomeans()
        print(
            hbar_chart(
                [(c, gm[(c, n)]) for c in configs],
                title=f"\nsuite geomean speedup @ {n} cores (| marks 1.0x):",
                baseline=1.0,
            )
        )
    return grid


# ---------------------------------------------------------------------------
# Figure 7: coverage with and without the OMU
# ---------------------------------------------------------------------------
def fig7(
    cores: Sequence[int] = DEFAULT_CORES,
    entries: Sequence[int] = (1, 2),
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    print_out: bool = True,
    workers: Optional[int] = None,
    cache_dir=None,
    progress=False,
) -> Dict:
    """Percentage of sync operations serviced by the MSA, averaged over
    the suite, with the OMU vs the never-deallocate baseline."""
    apps = list(apps or KERNELS.keys())
    cells = [
        (e, n, with_omu)
        for n in cores
        for e in entries
        for with_omu in (False, True)
    ]
    config_of = {
        (e, n, with_omu): f"msa-omu-{e}" if with_omu else f"msa-{e}-no-omu"
        for (e, n, with_omu) in cells
    }
    runs = _grid(
        [
            JobSpec(config=config_of[cell], workload=app, cores=cell[1], scale=scale)
            for cell in cells
            for app in apps
        ],
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
    )
    results: Dict = {}
    for cell in cells:
        e, n, with_omu = cell
        covs = [
            runs[(config_of[cell], app, n)].msa_coverage
            for app in apps
            if runs[(config_of[cell], app, n)].msa_coverage is not None
        ]
        results[cell] = 100.0 * sum(covs) / len(covs)
    if print_out:
        rows = []
        for e in entries:
            for n in cores:
                rows.append(
                    [
                        f"MSA-{e}",
                        f"{n}-core",
                        f"{results[(e, n, False)]:.1f}",
                        f"{results[(e, n, True)]:.1f}",
                    ]
                )
        print(
            render_table(
                ["MSA", "cores", "Without OMU (%)", "With OMU (%)"],
                rows,
                title="\nFigure 7 - coverage of synchronization operations",
            )
        )
    return results


# ---------------------------------------------------------------------------
# Figure 8: HWSync-bit optimization on fluidanimate
# ---------------------------------------------------------------------------
def fig8(
    cores: Sequence[int] = DEFAULT_CORES,
    scale: float = 1.0,
    print_out: bool = True,
    workers: Optional[int] = None,
    cache_dir=None,
    progress=False,
) -> Dict:
    configs = ("pthread", "msa-omu-2", "msa-omu-2-noopt")
    runs = _grid(
        [
            JobSpec(config=c, workload="fluidanimate", cores=n, scale=scale)
            for n in cores
            for c in configs
        ],
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
    )
    results: Dict = {}
    for n in cores:
        baseline = runs[("pthread", "fluidanimate", n)]
        for config, label in (
            ("msa-omu-2", "with_opt"),
            ("msa-omu-2-noopt", "without_opt"),
        ):
            results[(label, n)] = runs[(config, "fluidanimate", n)].speedup_over(
                baseline
            )
    if print_out:
        rows = [
            [f"{n}-core", f"{results[('with_opt', n)]:.3f}",
             f"{results[('without_opt', n)]:.3f}"]
            for n in cores
        ]
        print(
            render_table(
                ["cores", "With Optimization", "Without Optimization"],
                rows,
                title="\nFigure 8 - HWSync-bit effect on fluidanimate (speedup)",
            )
        )
    return results


# ---------------------------------------------------------------------------
# Figure 9: lock-only / barrier-only MSA support
# ---------------------------------------------------------------------------
def fig9(
    n_cores: int = 64,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    print_out: bool = True,
    workers: Optional[int] = None,
    cache_dir=None,
    progress=False,
) -> Dict:
    apps = list(apps or KERNELS.keys())
    runs = _grid(
        [
            JobSpec(config=config, workload=app, cores=n_cores, scale=scale)
            for app in apps
            for config in _dedupe(["pthread"] + list(FIG9_CONFIGS))
        ],
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
    )
    results: Dict = {}
    for app in apps:
        baseline = runs[("pthread", app, n_cores)]
        for config in FIG9_CONFIGS:
            results[(app, config)] = runs[(config, app, n_cores)].speedup_over(
                baseline
            )
    for config in FIG9_CONFIGS:
        results[("GeoMean", config)] = geomean(
            results[(app, config)] for app in apps
        )
    if print_out:
        shown = [a for a in apps if a in FIGURE_APPS] or apps
        rows = [
            [app] + [f"{results[(app, c)]:.2f}" for c in FIG9_CONFIGS]
            for app in shown + ["GeoMean"]
        ]
        print(
            render_table(
                ["app"] + list(FIG9_CONFIGS),
                rows,
                title=f"\nFigure 9 - type-restricted MSA, {n_cores} cores (speedup)",
            )
        )
    return results


# ---------------------------------------------------------------------------
# Chaos resilience: lock/barrier workloads under NoC message loss
# ---------------------------------------------------------------------------
def chaos(
    n_cores: int = 16,
    drop_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    apps: Sequence[str] = ("streamcluster", "fluidanimate"),
    scale: float = 0.5,
    config: str = "msa-omu-2",
    print_out: bool = True,
    workers: Optional[int] = None,
    cache_dir=None,
    progress=False,
    checkers: Sequence[str] = (),
) -> Dict:
    """Sweep NoC drop probability over sync-heavy kernels and report the
    cost of recovery: completion, slowdown over the fault-free run,
    coverage, and the retry/retransmission work the fault plane did.
    Every run must complete correctly -- the workloads' own validation
    hooks run at each point.

    ``checkers`` attaches :mod:`repro.verify` invariant monitors to
    every point (``python -m repro chaos --check``): injected faults
    must be fully masked by the recovery machinery, so a checked chaos
    sweep demands *zero* violations even at 20% drop rates."""
    from repro.faults import drop_plan

    grid = [(app, rate) for app in apps for rate in drop_rates]
    specs = [
        JobSpec(
            config=config,
            workload=app,
            cores=n_cores,
            scale=scale,
            fault_plan=drop_plan(rate, seed=1) if rate else None,
            checkers=tuple(checkers),
        )
        for app, rate in grid
    ]
    engine = Engine(workers=workers, cache_dir=cache_dir, progress=progress)
    results: Dict = {}
    failures = []
    for (app, rate), job in zip(grid, engine.run(specs)):
        if not job.ok:
            failures.append(f"{job.spec.describe()}@drop={rate}: {job.error}")
            continue
        run = job.result
        fc = run.fault_counters
        results[(app, rate)] = {
            "cycles": run.cycles,
            "coverage": run.msa_coverage,
            "msgs_dropped": fc.get("msgs_dropped", 0),
            "retransmits": fc.get("retransmits", 0),
            "retries": fc.get("retries", 0),
            "timeouts": fc.get("timeouts", 0),
            "degraded_tiles": fc.get("degraded_tiles", 0),
            "violations": (
                len(run.check_report.get("violations", []))
                if run.check_report is not None
                else None
            ),
        }
    if failures:
        raise SimulationError(
            "chaos points failed after retries: " + "; ".join(failures)
        )
    if print_out:
        for app in apps:
            base = results[(app, drop_rates[0])]["cycles"]
            rows = []
            for rate in drop_rates:
                r = results[(app, rate)]
                cov = r["coverage"]
                rows.append(
                    [
                        f"{100 * rate:.0f}%",
                        f"{r['cycles']:,}",
                        f"{r['cycles'] / base:.2f}x",
                        f"{100 * cov:.1f}%" if cov is not None else "-",
                        str(r["msgs_dropped"]),
                        str(r["retransmits"]),
                        str(r["retries"]),
                        str(r["timeouts"]),
                    ]
                )
            print(
                render_table(
                    [
                        "drop",
                        "cycles",
                        "slowdown",
                        "coverage",
                        "dropped",
                        "retransmits",
                        "retries",
                        "timeouts",
                    ],
                    rows,
                    title=f"\nChaos resilience - {app} on {config}, "
                    f"{n_cores} cores",
                )
            )
    return results


# ---------------------------------------------------------------------------
# Headline numbers (abstract / section 6 summary)
# ---------------------------------------------------------------------------
def headline(
    n_cores: int = 64,
    scale: float = 1.0,
    print_out: bool = True,
    workers: Optional[int] = None,
    cache_dir=None,
    progress=False,
) -> Dict:
    """The paper's summary claims: coverage of MSA-2 with OMU, mean
    speedup over pthreads, distance from ideal."""
    apps = list(KERNELS.keys())
    runs = _grid(
        [
            JobSpec(config=config, workload=app, cores=n_cores, scale=scale)
            for app in apps
            for config in ("pthread", "msa-omu-2", "ideal")
        ],
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
    )
    speedups, coverages, vs_ideal = [], [], []
    best = ("", 0.0)
    for app in apps:
        base = runs[("pthread", app, n_cores)]
        msa = runs[("msa-omu-2", app, n_cores)]
        ideal = runs[("ideal", app, n_cores)]
        s = msa.speedup_over(base)
        speedups.append(s)
        if s > best[1]:
            best = (app, s)
        if msa.msa_coverage is not None:
            coverages.append(msa.msa_coverage)
        vs_ideal.append(ideal.cycles / msa.cycles)
    out = {
        "mean_speedup": geomean(speedups),
        "max_speedup": best[1],
        "max_speedup_app": best[0],
        "mean_coverage_pct": 100.0 * sum(coverages) / len(coverages),
        "mean_fraction_of_ideal": geomean(vs_ideal),
    }
    if print_out:
        print("\nHeadline numbers (paper: 1.43x mean, 7.59x max in "
              "streamcluster, 93% coverage, within 3% of ideal)")
        print(f"  mean speedup over pthread : {out['mean_speedup']:.2f}x")
        print(f"  max speedup               : {out['max_speedup']:.2f}x "
              f"({out['max_speedup_app']})")
        print(f"  MSA-2 coverage            : {out['mean_coverage_pct']:.1f}%")
        print(f"  performance vs ideal      : {100*out['mean_fraction_of_ideal']:.1f}%")
    return out


def export_fig6_csv(grid: SpeedupGrid, path: str) -> None:
    """Write a Figure-6 speedup grid as flat CSV rows."""
    import csv

    with open(path, "w", newline="") as f:
        writer = csv.writer(f, lineterminator="\n")
        writer.writerow(["app", "config", "n_cores", "speedup", "coverage"])
        for (app, config, n), speedup in sorted(grid.speedups.items()):
            coverage = grid.coverage.get((app, config, n))
            writer.writerow(
                [
                    app,
                    config,
                    n,
                    f"{speedup:.4f}",
                    f"{coverage:.4f}" if coverage is not None else "",
                ]
            )


def main(argv: Optional[List[str]] = None) -> int:
    """Deprecated alias: the CLI lives in :mod:`repro.__main__`.

    Kept so old ``python -m repro.harness.experiments`` invocations and
    scripts importing :func:`main` keep working, but new code should
    call ``python -m repro`` / :func:`repro.__main__.main` directly.
    """
    import warnings

    warnings.warn(
        "repro.harness.experiments.main is deprecated; use "
        "`python -m repro` (repro.__main__.main) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.__main__ import main as cli_main

    return cli_main(argv)


if __name__ == "__main__":
    sys.exit(main())
