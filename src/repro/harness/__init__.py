"""Experiment harness: machine configurations matching the paper's
evaluation (section 6), the workload runner, the parallel experiment
engine (:mod:`repro.harness.jobs`), and the drivers that regenerate
every figure and table.
"""

from repro.harness.configs import build_machine, machine_params, CONFIG_NAMES
from repro.harness.jobs import Engine, EngineStats, JobResult, JobSpec, run_jobs
from repro.harness.runner import run_workload, RunResult

__all__ = [
    "build_machine",
    "machine_params",
    "CONFIG_NAMES",
    "run_workload",
    "RunResult",
    "Engine",
    "EngineStats",
    "JobResult",
    "JobSpec",
    "run_jobs",
]
