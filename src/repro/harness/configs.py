"""Named machine configurations from the paper's evaluation.

==================  =====================================================
name                meaning (paper section 6)
==================  =====================================================
pthread             software baseline: futex mutex/barrier/condvar
spinlock            TTAS spinlock library (Figure 5)
mcs-tour            MCS lock + tournament barrier (advanced software)
msa0                MSA-0: sync ISA present, always FAILs locally
msa-omu-N           N-entry MSA per tile + 4-counter OMU (N in 1,2,4...)
msa-omu-N-noopt     same, HWSync-bit optimization disabled (Figure 8)
msa-omu-N-bloom     same, counting-Bloom OMU variant (extension)
msa-N-no-omu        N-entry MSA, OMU disabled: entries never reclaimed
                    (the "Without OMU" bars of Figure 7)
msa-lockonly-N      MSA accepts only locks (Figure 9)
msa-barrieronly-N   MSA accepts only barriers (Figure 9)
msa-inf             unbounded MSA entries (no overflow possible)
ideal               zero-latency oracle synchronization
==================  =====================================================
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Tuple

from repro.common.errors import ConfigError
from repro.common.params import MachineParams, MSAParams, OMUParams
from repro.machine import Machine

CONFIG_NAMES = (
    "pthread",
    "spinlock",
    "mcs-tour",
    "msa0",
    "msa-omu-1",
    "msa-omu-2",
    "msa-omu-4",
    "msa-omu-2-noopt",
    "msa-omu-2-bloom",
    "msa-1-no-omu",
    "msa-2-no-omu",
    "msa-lockonly-2",
    "msa-barrieronly-2",
    "msa-inf",
    "ideal",
)

_MSA_OMU = re.compile(r"^msa-omu-(\d+)(-noopt)?(-bloom)?$")
_MSA_NO_OMU = re.compile(r"^msa-(\d+)-no-omu$")
_MSA_ONLY = re.compile(r"^msa-(lockonly|barrieronly)-(\d+)$")


def machine_params(config: str, n_cores: int = 16, seed: int = 2015) -> Tuple[MachineParams, str]:
    """Resolve a configuration name to (MachineParams, library name)."""
    base = MachineParams(n_cores=n_cores, seed=seed)

    if config in ("pthread", "spinlock", "mcs-tour", "ticket"):
        return base.with_(msa=None), {"pthread": "pthread"}.get(config, config)
    if config == "msa0":
        return base.with_(msa=None), "hybrid"
    if config == "ideal":
        return base.with_(msa=None, ideal_sync=True), "hybrid"
    if config == "msa-inf":
        return base.with_(msa=MSAParams(entries_per_tile=None)), "hybrid"

    match = _MSA_OMU.match(config)
    if match:
        entries = int(match.group(1))
        msa = MSAParams(
            entries_per_tile=entries, hwsync_opt=match.group(2) is None
        )
        omu = OMUParams(use_bloom=match.group(3) is not None)
        return base.with_(msa=msa, omu=omu), "hybrid"

    match = _MSA_NO_OMU.match(config)
    if match:
        msa = MSAParams(entries_per_tile=int(match.group(1)))
        return base.with_(msa=msa, omu=OMUParams(enabled=False)), "hybrid"

    match = _MSA_ONLY.match(config)
    if match:
        only, entries = match.group(1), int(match.group(2))
        msa = MSAParams(
            entries_per_tile=entries,
            lock_support=only == "lockonly",
            barrier_support=only == "barrieronly",
            condvar_support=False,
        )
        return base.with_(msa=msa), "hybrid"

    raise ConfigError(f"unknown configuration {config!r}; see CONFIG_NAMES")


def build_machine(
    config: str,
    n_cores: int = 16,
    seed: int = 2015,
    fault_plan=None,
    sim_mode=None,
    **overrides,
) -> Machine:
    """Build a ready-to-use machine for a named configuration.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) arms the fault
    injector, reliable transport, and degradation plane; it requires an
    MSA-bearing configuration.  ``sim_mode`` overrides the simulation
    kernel selection (``"legacy"``/``"sharded"``/``"auto"``; default:
    the ``REPRO_SIM_SHARDING`` knob).  Extra keyword arguments replace
    top-level :class:`MachineParams` fields after the configuration is
    resolved (e.g. ``core=CoreParams(hw_threads=2)``)."""
    params, library = machine_params(config, n_cores=n_cores, seed=seed)
    if overrides:
        params = params.with_(**overrides)
    return Machine(
        params, library=library, fault_plan=fault_plan, sim_mode=sim_mode
    )
