"""Plain-text table rendering and progress reporting for experiment
outputs."""

from __future__ import annotations

import sys
import time
from typing import Iterable, List, Optional, Sequence, TextIO


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Monospace table with per-column width fitting."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


class ProgressReporter:
    """Per-point progress lines with throughput and ETA for grid runs.

    The experiment engine calls :meth:`update` once per finished grid
    point.  Cache hits are excluded from the throughput estimate (they
    complete in microseconds and would make the ETA wildly optimistic
    while real points are still simulating).
    """

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        label: str = "sweep",
        clock=time.monotonic,
    ):
        self.total = total
        self.stream = sys.stderr if stream is None else stream
        self.label = label
        self._clock = clock
        self._start = clock()
        self.done = 0
        self._executed = 0

    def update(
        self, description: str, cached: bool = False, failed: bool = False
    ) -> str:
        """Record one finished point; returns (and prints) the line."""
        self.done += 1
        if not cached:
            self._executed += 1
        elapsed = self._clock() - self._start
        remaining = self.total - self.done
        if self._executed and remaining > 0:
            eta = f"eta {_hms(elapsed / self._executed * remaining)}"
        elif remaining > 0:
            eta = "eta ?"
        else:
            eta = f"done in {_hms(elapsed)}"
        tag = "FAIL" if failed else ("cached" if cached else "ran")
        line = (
            f"[{self.label} {self.done}/{self.total}] "
            f"{description}: {tag} ({eta})"
        )
        if self.stream is not None:
            print(line, file=self.stream, flush=True)
        return line


def _hms(seconds: float) -> str:
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"
