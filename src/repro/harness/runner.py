"""Workload runner: spawn a workload's threads on a machine, run to
completion, collect the metrics the experiments report."""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, Optional

from repro.common.schema import RESULT_SCHEMA, check_schema
from repro.machine import Machine
from repro.workloads.base import Workload, WorkloadEnv


@dataclass
class RunResult:
    """Everything an experiment needs from one simulation run."""

    config: str
    workload: str
    n_cores: int
    cycles: int
    msa_coverage: Optional[float]
    msa_counters: Dict[str, int] = field(default_factory=dict)
    sync_unit_counters: Dict[str, int] = field(default_factory=dict)
    noc_counters: Dict[str, int] = field(default_factory=dict)
    workload_metrics: Dict[str, float] = field(default_factory=dict)
    fault_counters: Dict[str, int] = field(default_factory=dict)
    """Injector/transport/recovery counters; empty unless the machine
    was built with a :class:`repro.faults.FaultPlan`."""

    check_report: Optional[Dict] = None
    """Serialized :class:`repro.verify.CheckReport` when the run was
    checked (``checkers=...``); ``None`` on unchecked runs.  Rehydrate
    with ``CheckReport.from_dict(result.check_report)``."""

    def speedup_over(self, baseline: "RunResult") -> float:
        """Application speedup relative to a baseline run."""
        return baseline.cycles / self.cycles if self.cycles else 0.0

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-ready; a ``schema`` stamp followed by
        the fields in field order)."""
        out = {"schema": RESULT_SCHEMA}
        out.update({f.name: getattr(self, f.name) for f in fields(self)})
        return out

    def to_json(self) -> str:
        """Serialize to JSON.  Serialization is canonical: two equal
        results (same run replayed) produce byte-identical text, which
        the experiment engine's result cache relies on."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        """Inverse of :meth:`to_dict`.

        The ``schema`` stamp is validated first: a payload written by
        an incompatible major version raises
        :class:`~repro.common.errors.SchemaError` instead of silently
        mis-parsing (stamps are absent from pre-versioning payloads,
        which still load).  Unknown keys are otherwise ignored so old
        caches survive additive schema changes.
        """
        check_schema(data.get("schema"), RESULT_SCHEMA, what="result")
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        """Human-readable run summary: headline metrics plus the MSA,
        instruction, and NoC activity that explains them."""
        lines = [
            f"run: {self.workload} on {self.config} "
            f"({self.n_cores} cores)",
            f"  cycles               : {self.cycles:,}",
        ]
        if self.msa_coverage is not None:
            lines.append(
                f"  MSA coverage         : {100 * self.msa_coverage:.1f}%"
            )
        issued = {
            k.split(".", 1)[1]: v
            for k, v in self.sync_unit_counters.items()
            if k.startswith("issued.") and v
        }
        if issued:
            ops = ", ".join(f"{k}={v}" for k, v in sorted(issued.items()))
            lines.append(f"  sync instructions    : {ops}")
        for key, label in (
            ("silent_lock_hits", "silent LOCK fast path"),
            ("silent_unlock_hits", "silent UNLOCK fast path"),
        ):
            value = self.sync_unit_counters.get(key, 0)
            if value:
                lines.append(f"  {label:<21}: {value}")
        for key, label in (
            ("entries_allocated", "MSA entries allocated"),
            ("omu_steered_sw", "OMU-steered to software"),
            ("revokes_sent", "HWSync revokes"),
            ("ops_aborted", "operations ABORTed"),
        ):
            value = self.msa_counters.get(key, 0)
            if value:
                lines.append(f"  {label:<21}: {value}")
        sent = self.noc_counters.get("messages_sent", 0)
        if sent:
            lines.append(f"  NoC messages         : {sent:,}")
        if self.check_report is not None:
            lines.append(
                f"  checkers             : "
                f"{'ok' if self.check_report.get('ok') else 'VIOLATIONS'} "
                f"({len(self.check_report.get('violations', []))} violations, "
                f"{len(self.check_report.get('races', []))} race reports)"
            )
        for key, value in sorted(self.workload_metrics.items()):
            lines.append(f"  {key:<21}: {value:,.1f}")
        return "\n".join(lines)


def run_workload(
    machine: Machine,
    workload: Workload,
    max_events: Optional[int] = 50_000_000,
    check: bool = True,
    config: str = "",
    checkers=(),
    raise_violations: bool = True,
    watchdog=None,
) -> RunResult:
    """Run ``workload`` on ``machine`` to completion.

    With ``check`` (default), the workload's validation hook and the
    machine's protocol invariants are verified after the run.

    ``watchdog`` (a :class:`repro.resilience.watchdog.Watchdog`) hands
    the event-loop drain to an escalating budget enforcer -- warn,
    snapshot, then abort with a triage dump on wall-clock or event
    overrun.  The watchdog owns budget enforcement when present (give
    it ``max_events``; the plain ``max_events`` argument is ignored),
    and drains events in the exact order an unwatched run would, so
    results are bit-identical.

    ``checkers`` attaches a :mod:`repro.verify` suite before spawning
    threads: ``True`` for every monitor, or a sequence of monitor names
    (see :data:`repro.verify.MONITORS`).  The finalized report rides on
    ``RunResult.check_report``; violations raise
    :class:`~repro.common.errors.InvariantViolation` unless
    ``raise_violations`` is false.  If the run itself dies (deadlock,
    event-budget exhaustion), the suite is still finalized and the
    report is attached to the propagating exception, so the invariant
    evidence that explains a hang is never lost.
    """
    suite = None
    if checkers is True or checkers:
        if machine.checker_suite is not None:
            suite = machine.checker_suite
        else:
            suite = machine.attach_checkers(monitors=checkers)
    env = WorkloadEnv(machine)
    workload.setup(env)
    for index, body in enumerate(workload.thread_bodies(env)):
        machine.scheduler.spawn(body, name=f"{workload.name}.{index}")
    if workload.controller is not None:
        machine.sim.process(
            workload.controller(env), name=f"{workload.name}.controller"
        )
    try:
        if watchdog is not None:
            cycles = watchdog.run(machine)
        else:
            cycles = machine.run(max_events=max_events)
    except Exception as exc:
        if suite is not None:
            exc.check_report = suite.finalize(raise_on_violation=False)
        raise
    if check:
        machine.check_invariants()
        workload.validate(env)
    check_report = None
    if suite is not None:
        report = suite.finalize(raise_on_violation=raise_violations)
        check_report = report.to_dict()
    return RunResult(
        config=config or machine.library_name,
        workload=workload.name,
        n_cores=machine.params.n_cores,
        cycles=cycles,
        msa_coverage=machine.msa_coverage(),
        msa_counters=machine.msa_counters(),
        sync_unit_counters=machine.sync_unit_counters(),
        noc_counters=dict(machine.network.stats.counters),
        workload_metrics=dict(env.metrics),
        fault_counters=(
            machine.fault_counters() if machine.fault_plan is not None else {}
        ),
        check_report=check_report,
    )
