"""Table 1: taxonomy of prior hardware synchronization approaches.

The paper's Table 1 is qualitative; we regenerate it from a structured
registry so the comparison dimensions (primitives, notification style,
resource overhead, dedicated network, overflow handling) are queryable
by tests and printed by the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SyncScheme:
    name: str
    citation: str
    primitives: Tuple[str, ...]
    notification: str  # "direct" | "indirect"
    resource_overhead: str  # big-O of added hardware state
    dedicated_network: bool
    overflow: str  # "SW" | "HW" | "HW/SW" | "Stall" | "None" | "N/A"


RELATED_WORK = (
    SyncScheme("Lock Table", "[9]", ("lock",), "indirect", "O(N_lock)", False, "SW"),
    SyncScheme("AMO", "[25]", ("lock", "barrier"), "indirect", "0", False, "N/A"),
    SyncScheme(
        "Tagged Memory", "[13]", ("lock", "barrier"), "indirect", "O(N_mem)", False, "N/A"
    ),
    SyncScheme("QOLB", "[12]", ("lock",), "direct", "O(N_core)", False, "SW"),
    SyncScheme("SSB", "[26]", ("lock",), "indirect", "O(N_activeLock)", False, "SW"),
    SyncScheme("LCU", "[23]", ("lock",), "direct", "O(N_core)", False, "HW/SW"),
    SyncScheme(
        "barrierFilter", "[21]", ("barrier",), "indirect", "O(N_barrier)", False, "Stall"
    ),
    SyncScheme("Lock Cache", "[4]", ("lock",), "direct", "O(N_lock*N_core)", True, "Stall"),
    SyncScheme("GLocks", "[2]", ("lock",), "direct", "O(N_lock)", True, "None"),
    SyncScheme(
        "bitwiseAND/NOR", "[7]", ("barrier",), "direct", "O(N_barrier)", True, "None"
    ),
    SyncScheme("GBarrier", "[1]", ("barrier",), "direct", "O(N_barrier)", True, "None"),
    SyncScheme("TLSync", "[17]", ("barrier",), "direct", "O(N_barrier)", True, "None"),
    SyncScheme(
        "MSA/OMU (this work)",
        "MiSAR",
        ("lock", "barrier", "condvar"),
        "direct",
        "O(N_core)",
        False,
        "HW",
    ),
)


def table1_rows():
    """Rows in the paper's column order."""
    rows = []
    for s in RELATED_WORK:
        rows.append(
            (
                s.name,
                ", ".join(p.capitalize() for p in s.primitives),
                s.notification.capitalize(),
                s.resource_overhead,
                "Yes" if s.dedicated_network else "No",
                s.overflow,
            )
        )
    return rows


def supports_all_three(scheme: SyncScheme) -> bool:
    return {"lock", "barrier", "condvar"} <= set(scheme.primitives)
