"""Raw synchronization-latency microbenchmarks (paper Figure 5).

Five probes, each reporting a cycles-per-operation metric:

* ``lock_acquire``  -- no contention: disjoint locks per thread, time
  from entering to exiting ``lock()``.
* ``lock_handoff``  -- high contention: all threads on one lock, time
  from a thread entering ``unlock()`` to the released ``lock()``
  exiting (measured as steady-state serialized throughput).
* ``barrier_handoff`` -- time from the last arrival entering
  ``barrier()`` to the last thread exiting.
* ``cond_signal``   -- time from entering ``cond_signal()`` to the
  released ``cond_wait()`` exiting.
* ``cond_broadcast`` -- same, to the *last* released waiter's exit.
"""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv

WARMUP_ITERS = 3


def lock_acquire(n_threads: int, iters: int = 20) -> Workload:
    """No-contention lock acquire latency: each thread has a private
    lock homed away from it (worst-case round trip for hardware)."""

    def make(env: WorkloadEnv):
        n = env.n_cores
        locks = [
            env.allocator.sync_var(home=(i + n // 2) % n)
            for i in range(n_threads)
        ]
        samples = env.shared.setdefault("samples", [])

        def mkbody(i):
            def body(th):
                lock = locks[i]
                for k in range(iters + WARMUP_ITERS):
                    t0 = th.sim.now
                    yield from th.lock(lock)
                    if k >= WARMUP_ITERS:
                        samples.append(th.sim.now - t0)
                    yield from th.unlock(lock)
                    yield from th.compute(150)
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env):
        samples = env.shared["samples"]
        env.expect(len(samples) == n_threads * iters, "missing samples")
        env.record("lock_acquire_cycles", sum(samples) / len(samples))

    return Workload(
        name="micro.lock_acquire",
        n_threads=n_threads,
        make_threads=make,
        validate_fn=validate,
        tags=("micro",),
    )


def lock_handoff(n_threads: int, iters: int = 8) -> Workload:
    """High-contention handoff: all threads hammer one lock with empty
    critical sections; steady-state cycles per handoff."""

    def make(env: WorkloadEnv):
        lock = env.allocator.sync_var()
        env.shared["window"] = {}
        window = env.shared["window"]
        total_acquires = n_threads * iters

        def body(th):
            for _ in range(iters):
                yield from th.lock(lock)
                window.setdefault("start", th.sim.now)
                window["end"] = th.sim.now
                window["count"] = window.get("count", 0) + 1
                yield from th.unlock(lock)

        return [body] * n_threads

    def validate(env):
        window = env.shared["window"]
        env.expect(window["count"] == n_threads * iters, "missing acquires")
        span = window["end"] - window["start"]
        env.record("lock_handoff_cycles", span / max(1, window["count"] - 1))

    return Workload(
        name="micro.lock_handoff",
        n_threads=n_threads,
        make_threads=make,
        validate_fn=validate,
        tags=("micro",),
    )


def barrier_handoff(n_threads: int, episodes: int = 10) -> Workload:
    """Barrier release latency: last arrival to last exit, averaged
    over episodes (staggered arrivals so the last arriver is known)."""

    def make(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        state = env.shared.setdefault("episodes", [])
        arrivals = {}
        exits = {}

        def mkbody(i):
            def body(th):
                for ep in range(episodes + 1):
                    yield from th.compute(20 * i + 5)
                    arrivals.setdefault(ep, []).append(th.sim.now)
                    yield from th.barrier(barrier, n_threads)
                    exits.setdefault(ep, []).append(th.sim.now)
            return body

        env.shared["arrivals"] = arrivals
        env.shared["exits"] = exits
        return [mkbody(i) for i in range(n_threads)]

    def validate(env):
        arrivals, exits = env.shared["arrivals"], env.shared["exits"]
        samples = []
        for ep in range(1, episodes + 1):  # skip warmup episode 0
            env.expect(len(exits[ep]) == n_threads, f"episode {ep} short")
            samples.append(max(exits[ep]) - max(arrivals[ep]))
        env.record("barrier_handoff_cycles", sum(samples) / len(samples))

    return Workload(
        name="micro.barrier_handoff",
        n_threads=n_threads,
        make_threads=make,
        validate_fn=validate,
        tags=("micro",),
    )


def cond_signal_latency(n_threads: int = 2, iters: int = 10) -> Workload:
    """Signal-to-wakeup latency with a single waiter."""

    def make(env: WorkloadEnv):
        lock = env.allocator.sync_var()
        cond = env.allocator.sync_var()
        seq = env.allocator.line()
        samples = env.shared.setdefault("samples", [])
        signal_times = env.shared.setdefault("signal_times", [])

        def waiter(th):
            for k in range(iters):
                yield from th.lock(lock)
                while True:
                    v = yield from th.load(seq)
                    if v > k:
                        break
                    yield from th.cond_wait(cond, lock)
                if signal_times:
                    samples.append(th.sim.now - signal_times[-1])
                yield from th.unlock(lock)

        def signaler(th):
            for k in range(iters):
                yield from th.compute(800)
                yield from th.lock(lock)
                yield from th.store(seq, k + 1)
                signal_times.append(th.sim.now)
                yield from th.cond_signal(cond)
                yield from th.unlock(lock)

        return [waiter, signaler]

    def validate(env):
        samples = env.shared["samples"]
        env.expect(len(samples) >= iters - 1, "missing wakeups")
        env.record("cond_signal_cycles", sum(samples) / len(samples))

    return Workload(
        name="micro.cond_signal",
        n_threads=2,
        make_threads=make,
        validate_fn=validate,
        tags=("micro",),
    )


def cond_broadcast_latency(n_threads: int, iters: int = 8) -> Workload:
    """Broadcast-to-last-wakeup latency with n-1 waiters.

    Rounds are quiesced: the broadcaster waits for an armed-waiter count
    (maintained outside the measured path) before broadcasting, so every
    round measures exactly (n-1) sleeping waiters rather than a chaotic
    mix of re-arriving threads.
    """

    def make(env: WorkloadEnv):
        lock = env.allocator.sync_var()
        cond = env.allocator.sync_var()
        seq = env.allocator.line()
        armed = env.allocator.line()
        bcast_times = env.shared.setdefault("bcast_times", [])
        exit_times = env.shared.setdefault("exit_times", {})

        def waiter(th):
            for k in range(iters):
                yield from th.lock(lock)
                yield from th.fetch_add(armed, 1)
                while True:
                    v = yield from th.load(seq)
                    if v > k:
                        break
                    yield from th.cond_wait(cond, lock)
                yield from th.unlock(lock)
                exit_times.setdefault(k, []).append(th.sim.now)

        def broadcaster(th):
            for k in range(iters):
                # Quiesce: every waiter has re-armed for round k.  (The
                # waiter may re-check the predicate between arming and
                # sleeping; the spin margin below absorbs that window.)
                yield from th.spin_until(
                    armed, lambda v, want=(k + 1) * (n_threads - 1): v >= want
                )
                yield from th.compute(1200)
                yield from th.lock(lock)
                yield from th.store(seq, k + 1)
                bcast_times.append(th.sim.now)
                yield from th.cond_broadcast(cond)
                yield from th.unlock(lock)

        return [waiter] * (n_threads - 1) + [broadcaster]

    def validate(env):
        bcast_times = env.shared["bcast_times"]
        exit_times = env.shared["exit_times"]
        samples = []
        for k in range(WARMUP_ITERS, iters):  # skip cold rounds
            env.expect(
                len(exit_times[k]) == n_threads - 1, f"round {k} lost waiters"
            )
            samples.append(max(exit_times[k]) - bcast_times[k])
        env.record("cond_broadcast_cycles", sum(samples) / len(samples))

    return Workload(
        name="micro.cond_broadcast",
        n_threads=n_threads,
        make_threads=make,
        validate_fn=validate,
        tags=("micro",),
    )


MICROBENCHES = {
    "LockAcquire": lock_acquire,
    "LockHandoff": lock_handoff,
    "BarrierHandoff": barrier_handoff,
    "CondSignal": lambda n: cond_signal_latency(),
    "CondBroadcast": cond_broadcast_latency,
}

METRIC_KEYS = {
    "LockAcquire": "lock_acquire_cycles",
    "LockHandoff": "lock_handoff_cycles",
    "BarrierHandoff": "barrier_handoff_cycles",
    "CondSignal": "cond_signal_cycles",
    "CondBroadcast": "cond_broadcast_cycles",
}
