"""Workload framework.

A :class:`Workload` owns a setup hook (allocate synchronization
variables and data), a factory producing one generator body per thread,
an optional controller process (for scenarios that drive scheduler
events such as suspensions), and a validation hook that checks
functional correctness after the run (critical-section counts, barrier
episode integrity, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.common.errors import WorkloadError
from repro.machine import Machine
from repro.sim.rng import DeterministicRng


class WorkloadEnv:
    """Per-run context handed to every workload hook."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.allocator = machine.allocator
        self.rng = DeterministicRng(machine.params.seed, "workload")
        self.shared: Dict = {}
        """Workload-private shared state (addresses, Python-side
        verification mirrors, ...)."""

        self.metrics: Dict[str, float] = {}
        """Metrics the workload wants reported (latency samples etc.)."""

    @property
    def n_cores(self) -> int:
        return self.machine.params.n_cores

    def record(self, name: str, value: float) -> None:
        self.metrics[name] = value

    def expect(self, condition: bool, message: str) -> None:
        if not condition:
            raise WorkloadError(message)


ThreadBody = Callable[["ThreadCtx"], Generator]


@dataclass
class Workload:
    name: str
    n_threads: int
    make_threads: Callable[[WorkloadEnv], List[ThreadBody]]
    setup_fn: Optional[Callable[[WorkloadEnv], None]] = None
    validate_fn: Optional[Callable[[WorkloadEnv], None]] = None
    controller: Optional[Callable[[WorkloadEnv], Generator]] = None
    tags: tuple = field(default_factory=tuple)

    def setup(self, env: WorkloadEnv) -> None:
        capacity = env.n_cores * env.machine.params.core.hw_threads
        if self.n_threads > capacity:
            raise WorkloadError(
                f"{self.name} needs {self.n_threads} threads but the "
                f"machine has {capacity} hardware thread contexts"
            )
        if self.setup_fn is not None:
            self.setup_fn(env)

    def thread_bodies(self, env: WorkloadEnv) -> List[ThreadBody]:
        bodies = self.make_threads(env)
        if len(bodies) != self.n_threads:
            raise WorkloadError(
                f"{self.name}: expected {self.n_threads} bodies, got {len(bodies)}"
            )
        return bodies

    def validate(self, env: WorkloadEnv) -> None:
        if self.validate_fn is not None:
            self.validate_fn(env)
