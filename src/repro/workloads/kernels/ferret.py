"""ferret analog: a four-stage similarity-search pipeline over bounded
queues, PARSEC ferret's synchronization structure.  Like dedup but
deeper, with ranking as the heavy stage."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv
from repro.workloads.kernels.common import BoundedQueue


def make(n_threads: int, scale: float = 1.0) -> Workload:
    if n_threads < 5:
        raise ValueError("ferret needs at least 5 threads (4 stages + source)")
    queries = max(8, int(n_threads * 2 * scale))
    stage_compute = (200, 600, 1100, 400)  # segment, extract, rank, out

    def make_threads(env: WorkloadEnv):
        queues = [BoundedQueue(env, capacity=3) for _ in range(3)]
        ranked = env.shared.setdefault("ranked", [0])
        live = [env.allocator.line() for _ in range(2)]

        n_rest = n_threads - 2  # source + sink
        n_extract = max(1, n_rest // 3)
        n_rank = max(1, n_rest - n_extract)
        env.machine.memory.poke(live[0], n_extract)
        env.machine.memory.poke(live[1], n_rank)

        def source(th):
            for _ in range(queries):
                yield from th.compute(stage_compute[0])
                yield from queues[0].put(th)
            yield from queues[0].close(th)

        def extractor(th):
            while True:
                got = yield from queues[0].get(th)
                if not got:
                    break
                yield from th.compute(stage_compute[1])
                yield from queues[1].put(th)
            remaining = yield from th.fetch_add(live[0], -1)
            if remaining == 1:
                yield from queues[1].close(th)

        def ranker(th):
            while True:
                got = yield from queues[1].get(th)
                if not got:
                    break
                yield from th.compute(stage_compute[2])
                yield from queues[2].put(th)
            remaining = yield from th.fetch_add(live[1], -1)
            if remaining == 1:
                yield from queues[2].close(th)

        def sink(th):
            while True:
                got = yield from queues[2].get(th)
                if not got:
                    break
                yield from th.compute(stage_compute[3])
                ranked[0] += 1

        return (
            [source]
            + [extractor] * n_extract
            + [ranker] * n_rank
            + [sink]
        )

    def validate(env: WorkloadEnv):
        env.expect(
            env.shared["ranked"][0] == queries,
            f"ranked {env.shared['ranked'][0]} of {queries}",
        )

    return Workload(
        name="ferret",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "condvar", "pipeline"),
    )
