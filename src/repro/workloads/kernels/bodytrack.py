"""bodytrack analog: a persistent thread pool dispatched per frame
through a condition variable, with a barrier-equivalent join -- PARSEC
bodytrack's worker-pool synchronization (condvar broadcast to start a
phase, atomic work counter, barrier to finish)."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    frames = max(2, int(4 * scale))
    particles_per_frame = n_threads * 3
    particle_compute = 600

    def make_threads(env: WorkloadEnv):
        pool_lock = env.allocator.sync_var()
        pool_cond = env.allocator.sync_var()
        frame_no = env.allocator.line()
        work = env.allocator.line()
        join_barrier = env.allocator.sync_var()
        processed = env.shared.setdefault("processed", [0])

        def worker(th):
            for frame in range(frames):
                # Wait for the frame to be dispatched.
                yield from th.lock(pool_lock)
                while True:
                    current = yield from th.load(frame_no)
                    if current > frame:
                        break
                    yield from th.cond_wait(pool_cond, pool_lock)
                yield from th.unlock(pool_lock)
                # Pull particle-evaluation work until the frame drains.
                while True:
                    remaining = yield from th.fetch_add(work, -1)
                    if remaining <= 0:
                        break
                    processed[0] += 1
                    yield from th.compute(particle_compute)
                yield from th.barrier(join_barrier, n_threads)

        def dispatcher(th):
            for frame in range(frames):
                yield from th.compute(300)  # model update
                yield from th.store(work, particles_per_frame)
                yield from th.lock(pool_lock)
                yield from th.store(frame_no, frame + 1)
                yield from th.cond_broadcast(pool_cond)
                yield from th.unlock(pool_lock)
                # The dispatcher joins the workers for the frame.
                while True:
                    remaining = yield from th.fetch_add(work, -1)
                    if remaining <= 0:
                        break
                    processed[0] += 1
                    yield from th.compute(particle_compute)
                yield from th.barrier(join_barrier, n_threads)

        return [worker] * (n_threads - 1) + [dispatcher]

    def validate(env: WorkloadEnv):
        expected = frames * particles_per_frame
        env.expect(
            env.shared["processed"][0] == expected,
            f"processed {env.shared['processed'][0]} != {expected}",
        )

    return Workload(
        name="bodytrack",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "condvar", "mixed"),
    )
