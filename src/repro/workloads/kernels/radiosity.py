"""radiosity analog: per-thread task queues with work stealing.

Splash-2 radiosity uses distributed task queues, each guarded by its
own lock; idle threads sweep other queues looking for work, so lock
operations are frequent, spread over many addresses, and mostly
low-contention -- the access pattern that stresses MSA entry turnover
and the OMU (and where empty-queue search costs make even lock-op
*count* sensitive to the implementation, the paper's MSA-0 observation).
"""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv
from repro.workloads.kernels.common import SharedCounterQueue


def make(n_threads: int, scale: float = 1.0) -> Workload:
    tasks_per_thread = max(4, int(14 * scale))
    task_compute = 420
    # Imbalanced seeding forces stealing sweeps.
    heavy_share = 3

    def make_threads(env: WorkloadEnv):
        queues = []
        for i in range(n_threads):
            seeded = tasks_per_thread * (heavy_share if i % 4 == 0 else 1)
            queues.append(SharedCounterQueue(env, seeded))
        total = sum(q.initial for q in queues)
        env.shared["total"] = total
        executed = env.shared.setdefault("executed", [0])
        # Radiosity guards every patch with its own lock; the program's
        # lock *address footprint* is far larger than any accelerator's
        # entry count (the paper reports thousands), which is exactly
        # what the OMU's entry recycling exists for (Figure 7).
        n_patches = 6 * n_threads
        patch_locks = [env.allocator.sync_var() for _ in range(n_patches)]
        patches = [env.allocator.line() for _ in range(n_patches)]

        def mkbody(i):
            def body(th):
                k = 0
                while True:
                    got = yield from queues[i].try_pop(th)
                    if not got:
                        # Probe a few victims (rotating start), like
                        # real task stealers; a full confirmation sweep
                        # runs only before giving up.  Task counts are
                        # monotone (no re-seeding), so an all-empty
                        # sweep is a sound termination witness.
                        probes = min(8, n_threads - 1)
                        for offset in range(probes):
                            victim = (i + k + offset + 1) % n_threads
                            if victim == i:
                                continue
                            got = yield from queues[victim].try_pop(th)
                            if got:
                                break
                    if not got:
                        for victim in range(n_threads):
                            if victim == i:
                                continue
                            got = yield from queues[victim].try_pop(th)
                            if got:
                                break
                    if not got:
                        return  # every queue empty: done
                    executed[0] += 1
                    yield from th.compute(task_compute)
                    # Update the task's patches: mostly patches in this
                    # thread's own region (temporal locality the HWSync
                    # bit exploits), with an occasional remote patch.
                    targets = [i * 6 + k % 6]
                    if k % 4 == 0:
                        targets.append((i * 7 + k * 3) % n_patches)
                    for p in targets:
                        yield from th.lock(patch_locks[p])
                        v = yield from th.load(patches[p])
                        yield from th.store(patches[p], v + 1)
                        yield from th.unlock(patch_locks[p])
                    k += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(
            env.shared["executed"][0] == env.shared["total"],
            f"executed {env.shared['executed'][0]} != {env.shared['total']}",
        )

    return Workload(
        name="radiosity",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "lock-heavy"),
    )
