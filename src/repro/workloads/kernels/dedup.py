"""dedup analog: a three-stage compression pipeline connected by
bounded queues (lock + two condition variables each) -- PARSEC dedup's
dominant synchronization.  Condvar-heavy, modest lock contention."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv
from repro.workloads.kernels.common import BoundedQueue


def make(n_threads: int, scale: float = 1.0) -> Workload:
    if n_threads < 4:
        raise ValueError("dedup needs at least 4 threads (3 stages + source)")
    chunks = max(8, int(n_threads * 3 * scale))
    stage_compute = (300, 900, 500)  # fragment, compress, write

    def make_threads(env: WorkloadEnv):
        q_frag = BoundedQueue(env, capacity=4)
        q_comp = BoundedQueue(env, capacity=4)
        written = env.shared.setdefault("written", [0])
        live_compressors = env.allocator.line()

        # Worker split: 1 fragmenter (source), remaining threads split
        # between compressors and writers (compress is the heavy stage).
        n_rest = n_threads - 1
        n_compress = max(1, (2 * n_rest) // 3)
        n_write = max(1, n_rest - n_compress)
        env.machine.memory.poke(live_compressors, n_compress)

        def fragmenter(th):
            for _ in range(chunks):
                yield from th.compute(stage_compute[0])
                yield from q_frag.put(th)
            yield from q_frag.close(th)

        def compressor(th):
            while True:
                got = yield from q_frag.get(th)
                if not got:
                    break
                yield from th.compute(stage_compute[1])
                yield from q_comp.put(th)
            # Only the last compressor to finish closes the downstream
            # queue, so no chunk can be stranded behind the close.
            remaining = yield from th.fetch_add(live_compressors, -1)
            if remaining == 1:
                yield from q_comp.close(th)

        def writer(th):
            while True:
                got = yield from q_comp.get(th)
                if not got:
                    break
                yield from th.compute(stage_compute[2])
                written[0] += 1

        return (
            [fragmenter]
            + [compressor] * n_compress
            + [writer] * n_write
        )

    def validate(env: WorkloadEnv):
        env.expect(
            env.shared["written"][0] == chunks,
            f"wrote {env.shared['written'][0]} of {chunks}",
        )

    return Workload(
        name="dedup",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "condvar", "pipeline"),
    )
