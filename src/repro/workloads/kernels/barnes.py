"""barnes analog: N-body tree code -- long force-computation phases with
only a handful of barrier episodes and a tree-build lock burst.  Low
synchronization density, so every configuration performs about the
same (pulls the suite geomean down, like the paper's 26-app average)."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    timesteps = max(1, int(3 * scale))
    force_compute = 9000

    def make_threads(env: WorkloadEnv):
        build_locks = 2 * n_threads
        barrier = env.allocator.sync_var()
        locks = [env.allocator.sync_var() for _ in range(build_locks)]
        nodes = [env.allocator.line() for _ in range(build_locks)]
        done = env.shared.setdefault("done", [0])

        def mkbody(i):
            def body(th):
                for step in range(timesteps):
                    # Tree build: short burst of insertions.
                    for k in range(3):
                        c = (i + k) % build_locks
                        yield from th.lock(locks[c])
                        v = yield from th.load(nodes[c])
                        yield from th.store(nodes[c], v + 1)
                        yield from th.unlock(locks[c])
                    yield from th.barrier(barrier, n_threads)
                    # Dominant force phase: pure compute.
                    yield from th.compute(force_compute)
                    yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")

    return Workload(
        name="barnes",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "low-sync"),
    )
