"""cholesky analog: sparse-factorization task queue with dependency
counters -- a central task lock of moderate contention plus per-column
locks, little barrier use."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv
from repro.workloads.kernels.common import SharedCounterQueue


def make(n_threads: int, scale: float = 1.0) -> Workload:
    supernodes = max(n_threads * 2, int(n_threads * 5 * scale))
    factor_compute = 700

    def make_threads(env: WorkloadEnv):
        queue = SharedCounterQueue(env, supernodes)
        # One lock per matrix column: the lock address footprint scales
        # with the problem, far past the accelerator's entry count.
        column_locks = 4 * n_threads
        locks = [env.allocator.sync_var() for _ in range(column_locks)]
        columns = [env.allocator.line() for _ in range(column_locks)]
        executed = env.shared.setdefault("executed", [0])

        def mkbody(i):
            def body(th):
                k = 0
                while True:
                    got = yield from queue.try_pop(th)
                    if not got:
                        return
                    executed[0] += 1
                    yield from th.compute(factor_compute)
                    # Scatter updates into two target columns.
                    for c in (
                        (i * 5 + k) % column_locks,
                        (i * 5 + k + 7) % column_locks,
                    ):
                        yield from th.lock(locks[c])
                        v = yield from th.load(columns[c])
                        yield from th.store(columns[c], v + 1)
                        yield from th.unlock(locks[c])
                    k += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(
            env.shared["executed"][0] == supernodes,
            f"supernodes {env.shared['executed'][0]} != {supernodes}",
        )

    return Workload(
        name="cholesky",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "lock-heavy"),
    )
