"""swaptions analog: embarrassingly parallel Monte-Carlo pricing --
statically partitioned work, a single final barrier, no locks.  The
canonical near-1.0 data point for any synchronization accelerator."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    swaption_compute = int(120000 * max(scale, 0.2))

    def make_threads(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        results = [env.allocator.line() for _ in range(n_threads)]
        done = env.shared.setdefault("done", [0])

        def mkbody(i):
            def body(th):
                yield from th.compute(swaption_compute)
                yield from th.store(results[i], 1)
                yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")

    return Workload(
        name="swaptions",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "low-sync"),
    )
