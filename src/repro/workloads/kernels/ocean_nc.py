"""ocean (non-contiguous partitions) analog.

Like :mod:`ocean` but each thread's rows interleave across the grid, so
the post-barrier phase touches many *shared* lines whose homes scatter
over the chip.  When a fast barrier releases every thread in the same
cycle, those misses burst into the directories simultaneously -- the
"better is worse" effect the paper observes on 16-core ocean-nc with
Ideal synchronization.
"""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    sweeps = max(3, int(10 * scale))
    rows_per_thread = 6
    interior_compute = 4200

    def make_threads(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        # One row per (thread, sweep-slot), interleaved so adjacent rows
        # belong to different threads and live at different homes.
        grid = [env.allocator.line() for _ in range(n_threads * rows_per_thread)]
        done = env.shared.setdefault("done", [0])

        def mkbody(i):
            my_rows = [grid[i + k * n_threads] for k in range(rows_per_thread)]
            neighbor_rows = [
                grid[(i + 1) % n_threads + k * n_threads]
                for k in range(rows_per_thread)
            ]

            def body(th):
                for sweep in range(sweeps):
                    # Non-contiguous sweep: write own interleaved rows,
                    # read the neighbor's (shared, scattered homes).
                    for row, nrow in zip(my_rows, neighbor_rows):
                        yield from th.load(nrow)
                        yield from th.compute(interior_compute // rows_per_thread)
                        yield from th.store(row, sweep)
                    yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")

    return Workload(
        name="ocean-nc",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "barrier-heavy"),
    )
