"""Synthetic application kernels.

Each kernel reproduces the *synchronization signature* of one of the
Splash-2/PARSEC applications the paper's evaluation highlights: the mix
of primitives, the number of distinct synchronization variables, their
contention level, and thread/data affinity.  DESIGN.md documents the
substitution rationale; headline shapes to reproduce:

* streamcluster -- barrier-dominated, biggest MSA win (paper: 7.59x)
* radiosity / raytrace -- lock-heavy (task stealing / one hot lock)
* fluidanimate -- thousands of low-contention same-thread locks
  (the HWSync-bit showcase, Figure 8)
* ocean / ocean-nc -- barrier-heavy stencil phases
* water-sp, cholesky -- mixed, moderate
* barnes, lu, fmm, volrend -- little synchronization (they pull the
  suite geomean toward the paper's 1.43x average)
* dedup, ferret -- bounded-queue pipelines (condvar-heavy)
* bodytrack -- thread pool dispatched through a condition variable
* canneal, swaptions -- near-zero synchronization (the ~1.0x tail of
  the paper's 26-application suite)
"""

from repro.workloads.kernels import (
    barnes,
    bodytrack,
    canneal,
    cholesky,
    dedup,
    ferret,
    fluidanimate,
    fmm,
    lu,
    ocean,
    ocean_nc,
    radiosity,
    raytrace,
    streamcluster,
    swaptions,
    volrend,
    water_sp,
)

#: name -> factory(n_threads, scale=1.0) -> Workload
KERNELS = {
    "radiosity": radiosity.make,
    "raytrace": raytrace.make,
    "water-sp": water_sp.make,
    "ocean": ocean.make,
    "ocean-nc": ocean_nc.make,
    "cholesky": cholesky.make,
    "fluidanimate": fluidanimate.make,
    "streamcluster": streamcluster.make,
    "barnes": barnes.make,
    "lu": lu.make,
    "fmm": fmm.make,
    "volrend": volrend.make,
    "bodytrack": bodytrack.make,
    "dedup": dedup.make,
    "ferret": ferret.make,
    "canneal": canneal.make,
    "swaptions": swaptions.make,
}

#: The applications shown individually in Figures 6 and 9 (the rest of
#: the suite still contributes to the GeoMean, like the paper's
#: clutter-reduction rule).
FIGURE_APPS = (
    "radiosity",
    "raytrace",
    "water-sp",
    "ocean",
    "ocean-nc",
    "cholesky",
    "fluidanimate",
    "streamcluster",
)

__all__ = ["KERNELS", "FIGURE_APPS"]
