"""water-spatial analog: molecular-dynamics timesteps with barriers
between force/update phases and a modest number of accumulation locks.
Mixed profile: barriers matter, locks are secondary."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    timesteps = max(2, int(6 * scale))
    force_compute = 8000
    update_compute = 3500
    accum_locks = 4

    def make_threads(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        locks = [env.allocator.sync_var() for _ in range(accum_locks)]
        accums = [env.allocator.line() for _ in range(accum_locks)]
        boxes = [env.allocator.line() for _ in range(n_threads)]
        done = env.shared.setdefault("done", [0])

        def mkbody(i):
            def body(th):
                for step in range(timesteps):
                    # Intra-box force computation.
                    yield from th.load(boxes[i])
                    yield from th.compute(force_compute)
                    # Fold per-box energies into global accumulators.
                    g = (i + step) % accum_locks
                    yield from th.lock(locks[g])
                    v = yield from th.load(accums[g])
                    yield from th.store(accums[g], v + 1)
                    yield from th.unlock(locks[g])
                    yield from th.barrier(barrier, n_threads)
                    # Position update phase.
                    yield from th.compute(update_compute)
                    yield from th.store(boxes[i], step)
                    yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")
        total = sum(env.machine.memory.peek(a) for a in env.shared.get("accums", []))

    return Workload(
        name="water-sp",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "mixed"),
    )
