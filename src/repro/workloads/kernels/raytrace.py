"""raytrace analog: ray packets pulled from one hot global work lock.

Splash-2 raytrace's dominant synchronization is a single highly
contended lock protecting the global ray-job queue (plus smaller
per-structure locks).  Handoff latency on that hot lock gates the
application, which is why the MSA's direct-notification handoff gives
raytrace one of the largest speedups at 64 cores.
"""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    total_jobs = max(n_threads * 4, int(n_threads * 8 * scale))
    trace_compute = 260

    def make_threads(env: WorkloadEnv):
        grid_locks = 2 * n_threads
        work_lock = env.allocator.sync_var()
        jobs_addr = env.allocator.line()
        env.machine.memory.poke(jobs_addr, total_jobs)
        locks = [env.allocator.sync_var() for _ in range(grid_locks)]
        grid = [env.allocator.line() for _ in range(grid_locks)]
        executed = env.shared.setdefault("executed", [0])

        def mkbody(i):
            def body(th):
                k = 0
                while True:
                    yield from th.lock(work_lock)
                    n = yield from th.load(jobs_addr)
                    if n > 0:
                        yield from th.store(jobs_addr, n - 1)
                    yield from th.unlock(work_lock)
                    if n <= 0:
                        break
                    executed[0] += 1
                    yield from th.compute(trace_compute)
                    # Occasionally update a shared grid cell under its
                    # own (lightly contended) lock.
                    if (i + k) % 5 == 0:
                        g = (i * 3 + k) % grid_locks
                        yield from th.lock(locks[g])
                        v = yield from th.load(grid[g])
                        yield from th.store(grid[g], v + 1)
                        yield from th.unlock(locks[g])
                    k += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(
            env.shared["executed"][0] == total_jobs,
            f"jobs executed {env.shared['executed'][0]} != {total_jobs}",
        )

    return Workload(
        name="raytrace",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "lock-heavy"),
    )
