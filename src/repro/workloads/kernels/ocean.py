"""ocean (contiguous partitions) analog: red/black Gauss-Seidel sweeps
with a barrier between every sweep and halo reads from neighbor
partitions -- barrier-heavy with real shared-memory traffic."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv
from repro.workloads.kernels.common import stencil_phase


def make(n_threads: int, scale: float = 1.0) -> Workload:
    sweeps = max(3, int(12 * scale))
    interior_compute = 8000
    halo_lines = 3

    def make_threads(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        partitions = [env.allocator.line() for _ in range(n_threads)]
        done = env.shared.setdefault("done", [0])

        def mkbody(i):
            left = partitions[(i - 1) % n_threads]
            right = partitions[(i + 1) % n_threads]

            def body(th):
                for sweep in range(sweeps):
                    # Halo exchange: read neighbor boundary lines.
                    yield from stencil_phase(th, [left, right], halo_lines)
                    # Interior update on the private partition.
                    yield from th.compute(interior_compute)
                    yield from th.store(partitions[i], sweep)
                    yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")

    return Workload(
        name="ocean",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "barrier-heavy"),
    )
