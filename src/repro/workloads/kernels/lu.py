"""lu analog: blocked dense factorization -- one barrier per elimination
step with large block-update compute between.  Low sync density."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    steps = max(2, int(5 * scale))
    block_compute = 6000

    def make_threads(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        blocks = [env.allocator.line() for _ in range(n_threads)]
        pivot_row = env.allocator.line()
        done = env.shared.setdefault("done", [0])

        def mkbody(i):
            def body(th):
                for step in range(steps):
                    # Read the pivot row (shared), update own blocks.
                    yield from th.load(pivot_row)
                    yield from th.compute(block_compute)
                    yield from th.store(blocks[i], step)
                    if i == step % n_threads:
                        yield from th.store(pivot_row, step + 1)
                    yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")

    return Workload(
        name="lu",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "low-sync"),
    )
