"""Shared building blocks for the synthetic kernels."""

from __future__ import annotations

from typing import Generator, List

from repro.workloads.base import WorkloadEnv


class SharedCounterQueue:
    """A task queue modeled as a counted slot protected by a lock, the
    structure radiosity/cholesky-style work stealing revolves around.

    The count lives in simulated memory; executed-task accounting for
    validation is Python-side (no extra simulated traffic).
    """

    def __init__(self, env: WorkloadEnv, initial_tasks: int, home=None):
        self.lock = env.allocator.sync_var(home=home)
        self.count_addr = env.allocator.line()
        env.machine.memory.poke(self.count_addr, initial_tasks)
        self.initial = initial_tasks

    def try_pop(self, th) -> Generator:
        """Returns True and decrements under the lock if non-empty."""
        yield from th.lock(self.lock)
        n = yield from th.load(self.count_addr)
        popped = n > 0
        if popped:
            yield from th.store(self.count_addr, n - 1)
        yield from th.unlock(self.lock)
        return popped

    def push(self, th, amount: int = 1) -> Generator:
        yield from th.lock(self.lock)
        n = yield from th.load(self.count_addr)
        yield from th.store(self.count_addr, n + amount)
        yield from th.unlock(self.lock)
        return None


class BoundedQueue:
    """A bounded producer/consumer queue built on one lock and two
    condition variables (not-empty / not-full) -- the structure PARSEC's
    pipeline applications (dedup, ferret) synchronize on.

    Items are counted, not stored: the kernels only need the
    synchronization behaviour.  A ``closed`` flag supports end-of-stream
    (broadcast so all consumers drain and exit).
    """

    def __init__(self, env: WorkloadEnv, capacity: int):
        self.capacity = capacity
        self.lock = env.allocator.sync_var()
        self.not_empty = env.allocator.sync_var()
        self.not_full = env.allocator.sync_var()
        self.count_addr = env.allocator.line()
        self.closed_addr = env.allocator.line()

    def put(self, th) -> Generator:
        yield from th.lock(self.lock)
        while True:
            n = yield from th.load(self.count_addr)
            if n < self.capacity:
                break
            yield from th.cond_wait(self.not_full, self.lock)
        yield from th.store(self.count_addr, n + 1)
        yield from th.cond_signal(self.not_empty)
        yield from th.unlock(self.lock)
        return None

    def get(self, th) -> Generator:
        """Returns True when an item was taken, False on closed+empty."""
        yield from th.lock(self.lock)
        while True:
            n = yield from th.load(self.count_addr)
            if n > 0:
                break
            closed = yield from th.load(self.closed_addr)
            if closed:
                yield from th.unlock(self.lock)
                return False
            yield from th.cond_wait(self.not_empty, self.lock)
        yield from th.store(self.count_addr, n - 1)
        yield from th.cond_signal(self.not_full)
        yield from th.unlock(self.lock)
        return True

    def close(self, th) -> Generator:
        yield from th.lock(self.lock)
        yield from th.store(self.closed_addr, 1)
        yield from th.cond_broadcast(self.not_empty)
        yield from th.unlock(self.lock)
        return None


def stencil_phase(th, tiles: List[int], reads_per_tile: int) -> Generator:
    """Read a halo of shared lines (stencil-exchange flavor): generates
    the post-barrier coherence-miss burst ocean-style codes exhibit."""
    for base in tiles:
        for k in range(reads_per_tile):
            yield from th.load(base + 64 * k)
    return None


def touch_and_update(th, addr: int, compute: int) -> Generator:
    """Read-modify-write a private line with some compute: the body of
    a typical critical section."""
    value = yield from th.load(addr)
    yield from th.compute(compute)
    yield from th.store(addr, value + 1)
    return None
