"""fmm analog: fast-multipole method -- interaction-list compute with a
few inter-phase barriers and light per-cell locking."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    phases = max(2, int(4 * scale))
    list_compute = 4200

    def make_threads(env: WorkloadEnv):
        cell_locks = 4 * n_threads
        barrier = env.allocator.sync_var()
        locks = [env.allocator.sync_var() for _ in range(cell_locks)]
        cells = [env.allocator.line() for _ in range(cell_locks)]
        done = env.shared.setdefault("done", [0])

        def mkbody(i):
            def body(th):
                for phase in range(phases):
                    yield from th.compute(list_compute)
                    for k in range(2):
                        c = (i * 5 + phase + k) % cell_locks
                        yield from th.lock(locks[c])
                        v = yield from th.load(cells[c])
                        yield from th.store(cells[c], v + 1)
                        yield from th.unlock(locks[c])
                    yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")

    return Workload(
        name="fmm",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "low-sync"),
    )
