"""volrend analog: ray-cast volume rendering -- a work-counter lock of
light contention (coarse tiles) plus a frame barrier, condvar-paced by
a coordinator thread handing out frames (exercises all three
primitives at low intensity)."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    frames = max(1, int(3 * scale))
    tiles_per_frame = n_threads * 3
    tile_compute = 950

    def make_threads(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        work_lock = env.allocator.sync_var()
        tiles_addr = env.allocator.line()
        frame_lock = env.allocator.sync_var()
        frame_cond = env.allocator.sync_var()
        frame_ready = env.allocator.line()
        rendered = env.shared.setdefault("rendered", [0])

        def worker(th):
            for frame in range(frames):
                # Wait for the coordinator to publish the frame.
                yield from th.lock(frame_lock)
                while True:
                    v = yield from th.load(frame_ready)
                    if v > frame:
                        break
                    yield from th.cond_wait(frame_cond, frame_lock)
                yield from th.unlock(frame_lock)
                # Pull tiles until the frame's work runs out.
                while True:
                    yield from th.lock(work_lock)
                    n = yield from th.load(tiles_addr)
                    if n > 0:
                        yield from th.store(tiles_addr, n - 1)
                    yield from th.unlock(work_lock)
                    if n <= 0:
                        break
                    rendered[0] += 1
                    yield from th.compute(tile_compute)
                yield from th.barrier(barrier, n_threads)

        def coordinator(th):
            for frame in range(frames):
                yield from th.compute(400)
                yield from th.lock(work_lock)
                yield from th.store(tiles_addr, tiles_per_frame)
                yield from th.unlock(work_lock)
                yield from th.lock(frame_lock)
                yield from th.store(frame_ready, frame + 1)
                yield from th.cond_broadcast(frame_cond)
                yield from th.unlock(frame_lock)
                yield from th.barrier(barrier, n_threads)

        return [worker] * (n_threads - 1) + [coordinator]

    def validate(env: WorkloadEnv):
        expected = frames * tiles_per_frame
        env.expect(
            env.shared["rendered"][0] == expected,
            f"tiles {env.shared['rendered'][0]} != {expected}",
        )

    return Workload(
        name="volrend",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "mixed", "condvar"),
    )
