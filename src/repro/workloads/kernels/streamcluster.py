"""streamcluster analog: barrier-dominated streaming clustering.

The real PARSEC streamcluster executes thousands of barrier episodes
with short per-phase compute (distance evaluations over a point block)
-- it is the paper's biggest winner (7.59x at 64 cores) because the
pthread barrier's release cost dwarfs the phase compute.
"""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    episodes = max(4, int(24 * scale))
    phase_compute = 1400

    def make_threads(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        centers_lock = env.allocator.sync_var()
        cost_addr = env.allocator.line()
        points = [env.allocator.line() for _ in range(n_threads)]
        done = env.shared.setdefault("done", [0])

        def mkbody(i):
            def body(th):
                for ep in range(episodes):
                    # Distance-evaluation phase over this thread's block.
                    yield from th.load(points[i])
                    yield from th.compute(phase_compute)
                    yield from th.store(points[i], ep)
                    # Occasionally fold a local cost into the global sum
                    # (streamcluster's pgain does this under a lock).
                    if i == ep % n_threads:
                        yield from th.lock(centers_lock)
                        cost = yield from th.load(cost_addr)
                        yield from th.store(cost_addr, cost + 1)
                        yield from th.unlock(centers_lock)
                    yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")

    return Workload(
        name="streamcluster",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "barrier-heavy"),
    )
