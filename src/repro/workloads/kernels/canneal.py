"""canneal analog: lock-free simulated annealing -- atomic swaps of
random netlist elements with almost no blocking synchronization (one
temperature-step barrier).  Near-1.0 speedup under any accelerator."""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    steps = max(1, int(3 * scale))
    swaps_per_step = 10
    eval_compute = 2000

    def make_threads(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        elements = [env.allocator.line() for _ in range(4 * n_threads)]
        done = env.shared.setdefault("done", [0])
        rng = env.rng

        def mkbody(i):
            picks = [
                (
                    rng.randint(0, len(elements) - 1),
                    rng.randint(0, len(elements) - 1),
                )
                for _ in range(steps * swaps_per_step)
            ]

            def body(th):
                k = 0
                for step in range(steps):
                    for _ in range(swaps_per_step):
                        a, b = picks[k]
                        k += 1
                        yield from th.compute(eval_compute)
                        # Atomic swap protocol: CAS-claim both elements.
                        yield from th.fetch_add(elements[a], 1)
                        yield from th.fetch_add(elements[b], 1)
                    yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")

    return Workload(
        name="canneal",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "low-sync"),
    )
