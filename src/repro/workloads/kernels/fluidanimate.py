"""fluidanimate analog: thousands of per-cell locks with thread
affinity.

PARSEC fluidanimate guards each grid cell with its own mutex; a thread
updates mostly its own region, so each lock is taken repeatedly by the
same thread with near-zero contention and an L1-resident lock word.
This is the workload where a naive hardware lock (round trip to the
home tile) *loses* to software, and the HWSync-bit silent re-acquire
wins it back (paper Figure 8).
"""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadEnv


def make(n_threads: int, scale: float = 1.0) -> Workload:
    cells_per_thread = 4
    frames = max(2, int(6 * scale))
    updates_per_frame = 10
    update_compute = 35
    gap_compute = 150
    """Lock-free work between acquires: real fluidanimate holds each
    cell lock for a tiny fraction of the iteration, which keeps the
    per-tile set of *currently held* locks near zero (so barriers can
    still win MSA entries) and gives the HWSync re-arm time to land."""

    def make_threads(env: WorkloadEnv):
        barrier = env.allocator.sync_var()
        cell_locks = [
            [env.allocator.sync_var() for _ in range(cells_per_thread)]
            for _ in range(n_threads)
        ]
        cell_data = [
            [env.allocator.line() for _ in range(cells_per_thread)]
            for _ in range(n_threads)
        ]
        done = env.shared.setdefault("done", [0])

        def mkbody(i):
            def body(th):
                for frame in range(frames):
                    for c in range(cells_per_thread):
                        # Each neighbor interaction of a cell re-takes
                        # the same cell lock back-to-back, so the active
                        # lock set per home tile stays tiny and the
                        # HWSync bit serves the burst.
                        for rep in range(updates_per_frame):
                            yield from th.lock(cell_locks[i][c])
                            v = yield from th.load(cell_data[i][c])
                            yield from th.compute(update_compute)
                            yield from th.store(cell_data[i][c], v + 1)
                            yield from th.unlock(cell_locks[i][c])
                            yield from th.compute(gap_compute)
                    # Boundary interaction: touch one neighbor cell
                    # (the rare contended case).
                    j = (i + 1) % n_threads
                    yield from th.lock(cell_locks[j][0])
                    v = yield from th.load(cell_data[j][0])
                    yield from th.store(cell_data[j][0], v + 1)
                    yield from th.unlock(cell_locks[j][0])
                    yield from th.barrier(barrier, n_threads)
                done[0] += 1
            return body

        return [mkbody(i) for i in range(n_threads)]

    def validate(env: WorkloadEnv):
        env.expect(env.shared["done"][0] == n_threads, "threads lost")

    return Workload(
        name="fluidanimate",
        n_threads=n_threads,
        make_threads=make_threads,
        validate_fn=validate,
        tags=("kernel", "lock-heavy", "hwsync-target"),
    )
