"""Workloads: Figure-5 latency microbenchmarks and the synthetic
application kernels whose synchronization signatures mirror the
Splash-2/PARSEC applications highlighted in the paper's evaluation."""

from repro.workloads.base import Workload, WorkloadEnv

__all__ = ["Workload", "WorkloadEnv"]
